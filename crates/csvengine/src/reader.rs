//! Streaming CSV reader: chunked byte stream → typed rows.

use crate::record::{parse_fields, RecordSplitter};
use crate::schema::Schema;
use crate::value::Value;
use crate::view::FieldBuf;
use bytes::Bytes;
use scoop_common::{ByteStream, Result};

/// How many input bytes to run through the splitter per refill. Feeding the
/// whole stream chunk at once would queue every row of an 8 MB GET before the
/// consumer sees the first one — this bounds the queued `Vec<Value>` working
/// set to what 64 KiB of input produces (under a thousand meter rows), which
/// measured faster than both larger slices (cache-cold drain) and 16 KiB
/// slices (per-refill overhead dominates).
const FEED_CHUNK: usize = 64 * 1024;

/// Iterator of typed rows over a chunked CSV byte stream.
///
/// This is the compute-side ingestion path: Spark workers pull the (possibly
/// storlet-filtered) GET body through one of these to materialize rows for the
/// SQL executor. Rows are typed **inside the fused scanner's callback**,
/// straight off the borrowed record slice while its bytes are still hot in
/// cache: no per-record copy, no intermediate field strings, one pass over
/// the input. The typed values land back-to-back in a flat block;
/// [`Iterator::next`] moves one row's worth out per call, so the only
/// allocations per row are the `Vec<Value>` itself and the spill storage of
/// long `Str` columns.
pub struct CsvReader {
    stream: ByteStream,
    pending: Option<Bytes>,
    pending_off: usize,
    splitter: Option<RecordSplitter>,
    fields: FieldBuf,
    /// Typed values of the queued rows, `schema.len()` per row.
    block: Vec<Value>,
    /// Read cursor into `block`.
    block_pos: usize,
    /// Rows in `block` not yet handed to the consumer.
    rows_queued: usize,
    schema: Schema,
    skip_header: bool,
}

impl CsvReader {
    /// Create a reader. When `has_header` is true the first record of the
    /// stream is dropped.
    pub fn new(stream: ByteStream, schema: Schema, has_header: bool) -> Self {
        CsvReader {
            stream,
            pending: None,
            pending_off: 0,
            splitter: Some(RecordSplitter::new()),
            fields: FieldBuf::default(),
            block: Vec::new(),
            block_pos: 0,
            rows_queued: 0,
            schema,
            skip_header: has_header,
        }
    }

    /// Next bounded slice of input, spanning stream chunks. `None` at EOF.
    fn next_slice(&mut self) -> Result<Option<Bytes>> {
        loop {
            if let Some(chunk) = &self.pending {
                let end = (self.pending_off + FEED_CHUNK).min(chunk.len());
                let slice = chunk.slice(self.pending_off..end);
                self.pending_off = end;
                if end >= chunk.len() {
                    self.pending = None;
                }
                if slice.is_empty() {
                    continue;
                }
                return Ok(Some(slice));
            }
            match self.stream.next() {
                Some(chunk) => {
                    self.pending = Some(chunk?);
                    self.pending_off = 0;
                }
                None => return Ok(None),
            }
        }
    }

    /// Refill the row queue from the next input slice. Out of line: the
    /// per-row [`Iterator::next`] fast path is just a queue pop, and the
    /// whole parse loop (with its large frame) only runs once per slice.
    /// Deliberately NOT `#[cold]` — most cycles are spent inside this
    /// function, and the cold hint makes LLVM deprioritize optimizing it.
    #[inline(never)]
    fn fill_queue(&mut self) -> Result<()> {
        while self.rows_queued == 0 && self.splitter.is_some() {
            let slice = self.next_slice()?;
            self.block.clear();
            self.block_pos = 0;
            let mut rows = 0usize;
            let block = &mut self.block;
            let fields = &mut self.fields;
            let schema = &self.schema;
            let skip_header = &mut self.skip_header;
            let width = schema.len();
            // Typing happens right here in the scanner callback, while the
            // record bytes and comma offsets are still in L1 — fusing the
            // scan and decode passes measured ~25% faster end to end than
            // recording row locations and typing them on pop.
            let mut on_row = |r: &[u8], commas: Option<&[u32]>| {
                if *skip_header {
                    *skip_header = false;
                    return;
                }
                match commas {
                    Some(c) => schema.row_from_commas_into(r, c, block),
                    None => schema.parse_view_into(&fields.parse_bounded(r, width), block),
                }
                rows += 1;
            };
            match slice {
                Some(slice) => {
                    if let Some(sp) = self.splitter.as_mut() {
                        sp.push_rows(&slice, &mut on_row)?;
                    }
                }
                None => {
                    if let Some(sp) = self.splitter.take() {
                        sp.finish(|r| on_row(r, None));
                    }
                }
            }
            self.rows_queued = rows;
        }
        Ok(())
    }
}

impl Iterator for CsvReader {
    type Item = Result<Vec<Value>>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.rows_queued > 0 {
                self.rows_queued -= 1;
                let width = self.schema.len();
                let start = self.block_pos.min(self.block.len());
                let end = (start + width).min(self.block.len());
                self.block_pos = end;
                // Move the values out (leaving NULLs behind in the block);
                // the freshly allocated row reuses the allocator slot the
                // consumer's previous row just vacated.
                let row: Vec<Value> =
                    self.block[start..end].iter_mut().map(std::mem::take).collect();
                return Some(Ok(row));
            }
            self.splitter.as_ref()?;
            if let Err(e) = self.fill_queue() {
                return Some(Err(e));
            }
        }
    }
}

/// Read the header record of a CSV buffer (the column names in file order).
pub fn read_header(data: &[u8]) -> Result<Vec<String>> {
    let mut header = None;
    let mut splitter = RecordSplitter::new();
    // Feed incrementally-larger prefixes until the first record completes, so
    // huge objects don't get scanned fully just to find the header.
    for chunk in data.chunks(64 * 1024) {
        splitter.push(chunk, |r| {
            if header.is_none() {
                header = Some(parse_fields(r).into_iter().map(|c| c.into_owned()).collect());
            }
        })?;
        if header.is_some() {
            break;
        }
    }
    if header.is_none() {
        splitter.finish(|r| {
            header = Some(parse_fields(r).into_iter().map(|c| c.into_owned()).collect());
        });
    }
    header.ok_or_else(|| scoop_common::ScoopError::Csv("empty CSV object".into()))
}

/// Infer a schema by sampling up to `sample_rows` data records.
pub fn infer_schema(data: &[u8], sample_rows: usize) -> Result<Schema> {
    let mut records: Vec<Vec<u8>> = Vec::new();
    let mut splitter = RecordSplitter::new();
    for chunk in data.chunks(64 * 1024) {
        splitter.push(chunk, |r| {
            if records.len() <= sample_rows {
                records.push(r.to_vec());
            }
        })?;
        if records.len() > sample_rows {
            break;
        }
    }
    if records.len() <= sample_rows {
        splitter.finish(|r| records.push(r.to_vec()));
    }
    if records.is_empty() {
        return Err(scoop_common::ScoopError::Csv("empty CSV object".into()));
    }
    let header_fields = parse_fields(&records[0]);
    let header: Vec<&str> = header_fields.iter().map(|c| c.as_ref()).collect();
    let sample_owned: Vec<Vec<String>> = records[1..]
        .iter()
        .map(|r| parse_fields(r).into_iter().map(|c| c.into_owned()).collect())
        .collect();
    let samples: Vec<Vec<&str>> = sample_owned
        .iter()
        .map(|row| row.iter().map(String::as_str).collect())
        .collect();
    Ok(Schema::infer(&header, &samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};
    use scoop_common::stream;
    use bytes::Bytes;

    const DATA: &[u8] = b"vid,index,city\nm1,100.5,Rotterdam\nm2,7,Paris\nm3,,Nice\n";

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("index", DataType::Float),
            Field::new("city", DataType::Str),
        ])
    }

    #[test]
    fn reads_typed_rows_skipping_header() {
        let s = stream::chunked(Bytes::copy_from_slice(DATA), 5);
        let rows: Vec<Vec<Value>> = CsvReader::new(s, schema(), true)
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Str("m1".into()));
        assert_eq!(rows[0][1], Value::Float(100.5));
        assert_eq!(rows[1][1], Value::Float(7.0));
        assert!(rows[2][1].is_null());
    }

    #[test]
    fn reads_headerless() {
        let s = stream::once(Bytes::from_static(b"m1,1.0,X\n"));
        let rows: Vec<Vec<Value>> = CsvReader::new(s, schema(), false)
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn propagates_stream_errors() {
        let s = stream::error(scoop_common::ScoopError::NotFound("x".into()));
        let mut r = CsvReader::new(s, schema(), false);
        assert!(r.next().unwrap().is_err());
    }

    #[test]
    fn header_and_inference() {
        assert_eq!(read_header(DATA).unwrap(), vec!["vid", "index", "city"]);
        let s = infer_schema(DATA, 10).unwrap();
        assert_eq!(s.fields[0].dtype, DataType::Str);
        assert_eq!(s.fields[1].dtype, DataType::Float);
        assert_eq!(s.fields[2].dtype, DataType::Str);
        assert!(read_header(b"").is_err());
        // Header-only object still infers (all Str).
        let s = infer_schema(b"a,b\n", 5).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn quoted_and_wide_rows_parse_like_the_slow_path() {
        let data = b"\"m,1\",2,\"Rott\"\"erdam\",extra1,extra2\nm2,,Nice\n";
        let s = stream::chunked(Bytes::copy_from_slice(data), 3);
        let rows: Vec<Vec<Value>> = CsvReader::new(s, schema(), false)
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(rows[0][0], Value::Str("m,1".into()));
        assert_eq!(rows[0][1], Value::Float(2.0));
        assert_eq!(rows[0][2], Value::Str("Rott\"erdam".into()));
        assert_eq!(rows[0].len(), 3, "extra fields dropped");
        assert!(rows[1][1].is_null());
    }
}
