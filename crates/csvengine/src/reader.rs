//! Streaming CSV reader: chunked byte stream → typed rows.

use crate::record::{parse_fields, RecordSplitter};
use crate::schema::Schema;
use crate::value::Value;
use scoop_common::{ByteStream, Result};
use std::collections::VecDeque;

/// Iterator of typed rows over a chunked CSV byte stream.
///
/// This is the compute-side ingestion path: Spark workers pull the (possibly
/// storlet-filtered) GET body through one of these to materialize rows for the
/// SQL executor.
pub struct CsvReader {
    stream: ByteStream,
    splitter: Option<RecordSplitter>,
    queue: VecDeque<Vec<u8>>,
    schema: Schema,
    skip_header: bool,
}

impl CsvReader {
    /// Create a reader. When `has_header` is true the first record of the
    /// stream is dropped.
    pub fn new(stream: ByteStream, schema: Schema, has_header: bool) -> Self {
        CsvReader {
            stream,
            splitter: Some(RecordSplitter::new()),
            queue: VecDeque::new(),
            schema,
            skip_header: has_header,
        }
    }

    fn fill_queue(&mut self) -> Result<()> {
        while self.queue.is_empty() && self.splitter.is_some() {
            match self.stream.next() {
                Some(chunk) => {
                    let chunk = chunk?;
                    let queue = &mut self.queue;
                    self.splitter
                        .as_mut()
                        .expect("checked in loop condition")
                        .push(&chunk, |r| queue.push_back(r.to_vec()));
                }
                None => {
                    let splitter = self.splitter.take().expect("checked in loop condition");
                    let queue = &mut self.queue;
                    splitter.finish(|r| queue.push_back(r.to_vec()));
                }
            }
        }
        Ok(())
    }
}

impl Iterator for CsvReader {
    type Item = Result<Vec<Value>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Err(e) = self.fill_queue() {
                return Some(Err(e));
            }
            let record = self.queue.pop_front()?;
            if self.skip_header {
                self.skip_header = false;
                continue;
            }
            let fields = parse_fields(&record);
            let refs: Vec<&str> = fields.iter().map(|c| c.as_ref()).collect();
            return Some(Ok(self.schema.parse_row(&refs)));
        }
    }
}

/// Read the header record of a CSV buffer (the column names in file order).
pub fn read_header(data: &[u8]) -> Result<Vec<String>> {
    let mut header = None;
    let mut splitter = RecordSplitter::new();
    // Feed incrementally-larger prefixes until the first record completes, so
    // huge objects don't get scanned fully just to find the header.
    for chunk in data.chunks(64 * 1024) {
        splitter.push(chunk, |r| {
            if header.is_none() {
                header = Some(parse_fields(r).into_iter().map(|c| c.into_owned()).collect());
            }
        });
        if header.is_some() {
            break;
        }
    }
    if header.is_none() {
        splitter.finish(|r| {
            header = Some(parse_fields(r).into_iter().map(|c| c.into_owned()).collect());
        });
    }
    header.ok_or_else(|| scoop_common::ScoopError::Csv("empty CSV object".into()))
}

/// Infer a schema by sampling up to `sample_rows` data records.
pub fn infer_schema(data: &[u8], sample_rows: usize) -> Result<Schema> {
    let mut records: Vec<Vec<u8>> = Vec::new();
    let mut splitter = RecordSplitter::new();
    for chunk in data.chunks(64 * 1024) {
        splitter.push(chunk, |r| {
            if records.len() <= sample_rows {
                records.push(r.to_vec());
            }
        });
        if records.len() > sample_rows {
            break;
        }
    }
    if records.len() <= sample_rows {
        splitter.finish(|r| records.push(r.to_vec()));
    }
    if records.is_empty() {
        return Err(scoop_common::ScoopError::Csv("empty CSV object".into()));
    }
    let header_fields = parse_fields(&records[0]);
    let header: Vec<&str> = header_fields.iter().map(|c| c.as_ref()).collect();
    let sample_owned: Vec<Vec<String>> = records[1..]
        .iter()
        .map(|r| parse_fields(r).into_iter().map(|c| c.into_owned()).collect())
        .collect();
    let samples: Vec<Vec<&str>> = sample_owned
        .iter()
        .map(|row| row.iter().map(String::as_str).collect())
        .collect();
    Ok(Schema::infer(&header, &samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};
    use scoop_common::stream;
    use bytes::Bytes;

    const DATA: &[u8] = b"vid,index,city\nm1,100.5,Rotterdam\nm2,7,Paris\nm3,,Nice\n";

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("index", DataType::Float),
            Field::new("city", DataType::Str),
        ])
    }

    #[test]
    fn reads_typed_rows_skipping_header() {
        let s = stream::chunked(Bytes::copy_from_slice(DATA), 5);
        let rows: Vec<Vec<Value>> = CsvReader::new(s, schema(), true)
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Str("m1".into()));
        assert_eq!(rows[0][1], Value::Float(100.5));
        assert_eq!(rows[1][1], Value::Float(7.0));
        assert!(rows[2][1].is_null());
    }

    #[test]
    fn reads_headerless() {
        let s = stream::once(Bytes::from_static(b"m1,1.0,X\n"));
        let rows: Vec<Vec<Value>> = CsvReader::new(s, schema(), false)
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn propagates_stream_errors() {
        let s = stream::error(scoop_common::ScoopError::NotFound("x".into()));
        let mut r = CsvReader::new(s, schema(), false);
        assert!(r.next().unwrap().is_err());
    }

    #[test]
    fn header_and_inference() {
        assert_eq!(read_header(DATA).unwrap(), vec!["vid", "index", "city"]);
        let s = infer_schema(DATA, 10).unwrap();
        assert_eq!(s.fields[0].dtype, DataType::Str);
        assert_eq!(s.fields[1].dtype, DataType::Float);
        assert_eq!(s.fields[2].dtype, DataType::Str);
        assert!(read_header(b"").is_err());
        // Header-only object still infers (all Str).
        let s = infer_schema(b"a,b\n", 5).unwrap();
        assert_eq!(s.len(), 2);
    }
}
