//! Schemas: ordered, named, typed columns.

use crate::value::Value;
use scoop_common::{Result, ScoopError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The column types supported by the data model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Str => write!(f, "str"),
        }
    }
}

/// A single named column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Column name (case-sensitive; SQL resolution lowercases at parse time).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    /// Ordered fields.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build from a field list.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of a column by name (case-insensitive, like Spark SQL).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but returns a descriptive error.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            ScoopError::Sql(format!(
                "unknown column '{name}' (available: {})",
                self.fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Sub-schema with only the named columns, in the order given.
    pub fn project(&self, columns: &[String]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(columns.len());
        for c in columns {
            fields.push(self.fields[self.resolve(c)?].clone());
        }
        Ok(Schema::new(fields))
    }

    /// Parse one raw record (string fields) into a typed row. Extra fields
    /// are dropped; missing fields become NULL, mirroring permissive CSV
    /// ingestion in Spark-CSV.
    pub fn parse_row(&self, fields: &[&str]) -> Vec<Value> {
        self.fields
            .iter()
            .enumerate()
            .map(|(i, f)| {
                fields
                    .get(i)
                    .map(|raw| Value::parse_typed(raw, f.dtype))
                    .unwrap_or(Value::Null)
            })
            .collect()
    }

    /// Parse a typed row straight off a zero-copy [`crate::view::RecordView`]
    /// — same semantics as [`Schema::parse_row`] (extra fields dropped,
    /// missing fields NULL) without materializing intermediate strings for
    /// numeric columns.
    pub fn parse_view(&self, view: &crate::view::RecordView<'_, '_>) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.fields.len());
        self.parse_view_into(view, &mut out);
        out
    }

    /// [`Schema::parse_view`], appending the `self.len()` values to `out`
    /// instead of allocating a fresh row — the block-decode form used by
    /// [`crate::CsvReader`]'s flat row queue.
    pub fn parse_view_into(&self, view: &crate::view::RecordView<'_, '_>, out: &mut Vec<Value>) {
        out.extend(self.fields.iter().enumerate().map(|(i, f)| {
            // Unquoted fields skip the Cow wrapper entirely.
            if let Some(raw) = view.plain_bytes(i) {
                return Value::parse_field_bytes(raw, f.dtype);
            }
            match view.bytes(i) {
                Some(raw) => Value::parse_field_bytes(&raw, f.dtype),
                None => Value::Null,
            }
        }));
    }

    /// Parse a typed row straight off a quote-free record and its comma
    /// offsets, as produced by the fused scanner
    /// ([`crate::record::RecordSplitter::push_rows`]). Same semantics as
    /// [`Schema::parse_row`]: extra fields are dropped, missing fields become
    /// NULL. Skips the span table and quote checks entirely — field `i` is
    /// the byte range between comma `i-1` and comma `i`.
    pub fn row_from_commas(&self, record: &[u8], commas: &[u32]) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.fields.len());
        self.row_from_commas_into(record, commas, &mut out);
        out
    }

    /// [`Schema::row_from_commas`], appending the `self.len()` values to
    /// `out` instead of allocating a fresh row.
    pub fn row_from_commas_into(&self, record: &[u8], commas: &[u32], out: &mut Vec<Value>) {
        // One ASCII sweep over the whole record (word-at-a-time) licenses
        // the fixed-window string copy below for every field, replacing five
        // per-field validations and variable-length copies per meter row.
        let all_ascii = record.is_ascii();
        let mut start = 0usize;
        for (i, f) in self.fields.iter().enumerate() {
            if i > 0 {
                match commas.get(i - 1) {
                    Some(&c) => start = c as usize + 1,
                    // Fewer commas than fields: this field is missing.
                    None => {
                        out.push(Value::Null);
                        continue;
                    }
                }
            }
            let end = commas.get(i).map_or(record.len(), |&c| c as usize);
            let len = end - start;
            if f.dtype == DataType::Str && all_ascii && len <= crate::smallstr::INLINE_LEN {
                out.push(if len == 0 {
                    Value::Null
                } else {
                    // The window over-reads into the rest of the record so
                    // the copy length is compile-time constant; the tail
                    // bytes are unreachable through the length-bounded view.
                    Value::Str(crate::SmallStr::from_ascii_window(&record[start..], len))
                });
            } else if f.dtype == DataType::Float {
                // Short floats parse from one over-read word; anything the
                // window parser declines falls back to the general path.
                match crate::value::parse_f64_window(&record[start..], len) {
                    Some(v) => out.push(Value::Float(v)),
                    None => out.push(Value::parse_field_bytes(&record[start..end], f.dtype)),
                }
            } else {
                out.push(Value::parse_field_bytes(&record[start..end], f.dtype));
            }
        }
    }

    /// Infer a schema from a header record plus sample data records:
    /// a column is `Int` if every non-empty sample parses as i64, `Float` if
    /// every non-empty sample parses as f64, `Str` otherwise.
    pub fn infer(header: &[&str], samples: &[Vec<&str>]) -> Schema {
        let fields = header
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut any = false;
                let mut all_int = true;
                let mut all_float = true;
                for row in samples {
                    if let Some(cell) = row.get(i) {
                        if cell.is_empty() {
                            continue;
                        }
                        any = true;
                        if cell.parse::<i64>().is_err() {
                            all_int = false;
                        }
                        if cell.parse::<f64>().is_err() {
                            all_float = false;
                        }
                    }
                }
                let dtype = if any && all_int {
                    DataType::Int
                } else if any && all_float {
                    DataType::Float
                } else {
                    DataType::Str
                };
                Field::new(name.to_string(), dtype)
            })
            .collect();
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter_schema() -> Schema {
        Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("date", DataType::Str),
            Field::new("index", DataType::Float),
        ])
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = meter_schema();
        assert_eq!(s.index_of("VID"), Some(0));
        assert_eq!(s.index_of("Index"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.resolve("nope").is_err());
    }

    #[test]
    fn project_preserves_request_order() {
        let s = meter_schema();
        let p = s.project(&["index".into(), "vid".into()]).unwrap();
        assert_eq!(p.names(), vec!["index", "vid"]);
        assert!(s.project(&["ghost".into()]).is_err());
    }

    #[test]
    fn parse_row_pads_and_types() {
        let s = meter_schema();
        let row = s.parse_row(&["m1", "2015-01-03 10:00:00"]);
        assert_eq!(row[0], Value::Str("m1".into()));
        assert!(row[2].is_null());
        let row = s.parse_row(&["m1", "d", "4.5", "extra"]);
        assert_eq!(row[2], Value::Float(4.5));
        assert_eq!(row.len(), 3);
    }

    #[test]
    fn row_from_commas_matches_parse_view_on_clean_records() {
        let s = Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("date", DataType::Str),
            Field::new("index", DataType::Float),
            Field::new("count", DataType::Int),
        ]);
        let records: &[&[u8]] = &[
            b"m1,2015-02-01 00:00:00,12.50,7",
            b"m2,d,," ,
            b"m3",
            b"",
            b"m4,d,1.5,9,extra,fields,dropped",
            b"m5,d,not_a_float,not_an_int",
            b",,,",
            b"m6,d,-0.25,-3",
        ];
        let mut buf = crate::view::FieldBuf::default();
        for rec in records {
            let commas: Vec<u32> = rec
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b',')
                .map(|(i, _)| i as u32)
                .collect();
            let fast = s.row_from_commas(rec, &commas);
            let slow = s.parse_view(&buf.parse_bounded(rec, s.len()));
            assert_eq!(fast, slow, "on {:?}", String::from_utf8_lossy(rec));
        }
    }

    #[test]
    fn infer_picks_narrowest_type() {
        let header = vec!["a", "b", "c", "d"];
        let samples = vec![
            vec!["1", "1.5", "x", ""],
            vec!["2", "2", "9", ""],
        ];
        let s = Schema::infer(&header, &samples);
        assert_eq!(s.fields[0].dtype, DataType::Int);
        assert_eq!(s.fields[1].dtype, DataType::Float);
        assert_eq!(s.fields[2].dtype, DataType::Str);
        // All-empty column defaults to Str.
        assert_eq!(s.fields[3].dtype, DataType::Str);
    }
}
