//! The pushdown task payload: projection + selection filters.
//!
//! In the paper, a *pushdown task* "is represented as a piece of metadata
//! attached to an object request": the Catalyst-extracted projections and
//! selections are serialized into HTTP headers by the Stocator connector and
//! deserialized by the CSV storlet at the object store. This module defines
//! that payload ([`PushdownSpec`]), its predicate language (the same shapes as
//! Spark's Data Sources `Filter` API), and a compact, reversible header
//! encoding.

use crate::value::Value;
use scoop_common::{Result, ScoopError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A selection predicate over named columns.
///
/// Mirrors the filter shapes Spark SQL hands to a `PrunedFilteredScan`
/// implementation: comparisons, string matches, set membership, null tests
/// and boolean combinators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `col = value`
    Eq(String, Value),
    /// `col <> value`
    Ne(String, Value),
    /// `col < value`
    Lt(String, Value),
    /// `col <= value`
    Le(String, Value),
    /// `col > value`
    Gt(String, Value),
    /// `col >= value`
    Ge(String, Value),
    /// `col LIKE pattern` (`%` any run, `_` any single char)
    Like(String, String),
    /// `col` starts with the literal prefix
    StartsWith(String, String),
    /// `col` ends with the literal suffix
    EndsWith(String, String),
    /// `col` contains the literal substring
    Contains(String, String),
    /// `col IN (v1, v2, ...)`
    In(String, Vec<Value>),
    /// `col IS NULL`
    IsNull(String),
    /// `col IS NOT NULL`
    IsNotNull(String),
    /// Conjunction
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation
    Not(Box<Predicate>),
}

impl Predicate {
    /// Conjunction helper that flattens `None` sides.
    pub fn and_all(preds: Vec<Predicate>) -> Option<Predicate> {
        preds
            .into_iter()
            .reduce(|a, b| Predicate::And(Box::new(a), Box::new(b)))
    }

    /// All column names referenced by this predicate.
    pub fn columns(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        self.collect_columns(&mut set);
        set
    }

    fn collect_columns(&self, set: &mut BTreeSet<String>) {
        match self {
            Predicate::Eq(c, _)
            | Predicate::Ne(c, _)
            | Predicate::Lt(c, _)
            | Predicate::Le(c, _)
            | Predicate::Gt(c, _)
            | Predicate::Ge(c, _)
            | Predicate::Like(c, _)
            | Predicate::StartsWith(c, _)
            | Predicate::EndsWith(c, _)
            | Predicate::Contains(c, _)
            | Predicate::In(c, _)
            | Predicate::IsNull(c)
            | Predicate::IsNotNull(c) => {
                set.insert(c.clone());
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(set);
                b.collect_columns(set);
            }
            Predicate::Not(p) => p.collect_columns(set),
        }
    }
}

/// SQL `LIKE` matching with `%` (any run) and `_` (any single char),
/// operating on Unicode scalar values.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let txt: Vec<char> = text.chars().collect();
    // Classic iterative wildcard matching with backtracking to the last '%'.
    let (mut p, mut t) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while t < txt.len() {
        if p < pat.len() && (pat[p] == '_' || pat[p] == txt[t]) {
            p += 1;
            t += 1;
        } else if p < pat.len() && pat[p] == '%' {
            star_p = p;
            star_t = t;
            p += 1;
        } else if star_p != usize::MAX {
            p = star_p + 1;
            star_t += 1;
            t = star_t;
        } else {
            return false;
        }
    }
    while p < pat.len() && pat[p] == '%' {
        p += 1;
    }
    p == pat.len()
}

/// The full pushdown payload for one object request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PushdownSpec {
    /// Columns to project, in output order. `None` means all columns.
    pub columns: Option<Vec<String>>,
    /// Selection predicate. `None` means keep every row.
    pub predicate: Option<Predicate>,
    /// Whether the first record of the object is a header row the filter must
    /// consume (and echo, projected, when the range starts at offset 0).
    pub has_header: bool,
}

impl PushdownSpec {
    /// A no-op spec (all columns, all rows).
    pub fn passthrough() -> Self {
        PushdownSpec::default()
    }

    /// True when the spec neither projects nor filters.
    pub fn is_passthrough(&self) -> bool {
        self.columns.is_none() && self.predicate.is_none()
    }

    /// Columns the filter must *read* (projected + referenced by predicate).
    pub fn required_columns(&self) -> Option<BTreeSet<String>> {
        let cols = self.columns.as_ref()?;
        let mut set: BTreeSet<String> = cols.iter().cloned().collect();
        if let Some(p) = &self.predicate {
            set.extend(p.columns());
        }
        Some(set)
    }
}

// ---------------------------------------------------------------------------
// Compact header encoding
// ---------------------------------------------------------------------------
//
// Grammar (tokens separated by single spaces, strings percent-encoded):
//   spec  := "hdr=" ("1"|"0") ";cols=" ("*" | name,name,...) ";pred=" pexpr?
//   pexpr := "(" op args ")"
//   value := "n" | "i:<i64>" | "f:<f64>" | "s:<enc>"

/// Percent-encode characters that collide with the grammar. The empty string
/// is encoded as `~` (and a literal `~` is escaped) so that every encoded
/// string is a non-empty token.
fn enc(s: &str) -> String {
    if s.is_empty() {
        return "~".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b'(' | b')' | b' ' | b',' | b';' | b'=' | b'~' | 0..=31 | 127 => {
                out.push_str(&format!("%{b:02X}"));
            }
            _ => out.push(b as char),
        }
    }
    out
}

fn dec(s: &str) -> Result<String> {
    if s == "~" {
        return Ok(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| ScoopError::InvalidRequest("truncated %-escape".into()))?;
            let v = u8::from_str_radix(
                std::str::from_utf8(hex)
                    .map_err(|_| ScoopError::InvalidRequest("bad %-escape".into()))?,
                16,
            )
            .map_err(|_| ScoopError::InvalidRequest("bad %-escape".into()))?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| ScoopError::InvalidRequest("non-utf8 header".into()))
}

fn enc_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('n'),
        Value::Int(i) => out.push_str(&format!("i:{i}")),
        Value::Float(f) => out.push_str(&format!("f:{f}")),
        Value::Str(s) => {
            out.push_str("s:");
            out.push_str(&enc(s));
        }
    }
}

fn enc_pred(p: &Predicate, out: &mut String) {
    let bin = |op: &str, c: &str, v: &Value, out: &mut String| {
        out.push('(');
        out.push_str(op);
        out.push(' ');
        out.push_str(&enc(c));
        out.push(' ');
        enc_value(v, out);
        out.push(')');
    };
    let strop = |op: &str, c: &str, s: &str, out: &mut String| {
        out.push('(');
        out.push_str(op);
        out.push(' ');
        out.push_str(&enc(c));
        out.push(' ');
        out.push_str(&enc(s));
        out.push(')');
    };
    match p {
        Predicate::Eq(c, v) => bin("eq", c, v, out),
        Predicate::Ne(c, v) => bin("ne", c, v, out),
        Predicate::Lt(c, v) => bin("lt", c, v, out),
        Predicate::Le(c, v) => bin("le", c, v, out),
        Predicate::Gt(c, v) => bin("gt", c, v, out),
        Predicate::Ge(c, v) => bin("ge", c, v, out),
        Predicate::Like(c, s) => strop("like", c, s, out),
        Predicate::StartsWith(c, s) => strop("sw", c, s, out),
        Predicate::EndsWith(c, s) => strop("ew", c, s, out),
        Predicate::Contains(c, s) => strop("ct", c, s, out),
        Predicate::In(c, vs) => {
            out.push_str("(in ");
            out.push_str(&enc(c));
            for v in vs {
                out.push(' ');
                enc_value(v, out);
            }
            out.push(')');
        }
        Predicate::IsNull(c) => {
            out.push_str("(null ");
            out.push_str(&enc(c));
            out.push(')');
        }
        Predicate::IsNotNull(c) => {
            out.push_str("(notnull ");
            out.push_str(&enc(c));
            out.push(')');
        }
        Predicate::And(a, b) => {
            out.push_str("(and ");
            enc_pred(a, out);
            out.push(' ');
            enc_pred(b, out);
            out.push(')');
        }
        Predicate::Or(a, b) => {
            out.push_str("(or ");
            enc_pred(a, out);
            out.push(' ');
            enc_pred(b, out);
            out.push(')');
        }
        Predicate::Not(a) => {
            out.push_str("(not ");
            enc_pred(a, out);
            out.push(')');
        }
    }
}

/// Tokenizer for the s-expression predicate grammar.
struct Tokens<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Tokens<'a> {
    fn new(src: &'a str) -> Self {
        Tokens { src, pos: 0 }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        while self.peek() == Some(' ') {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(ScoopError::InvalidRequest(format!(
                "expected '{c}' at {} in pushdown header",
                self.pos
            )))
        }
    }

    /// Read a bare token (up to whitespace or paren).
    fn word(&mut self) -> Result<&'a str> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == ' ' || c == '(' || c == ')' {
                break;
            }
            self.pos += c.len_utf8();
        }
        if self.pos == start {
            Err(ScoopError::InvalidRequest("empty token in header".into()))
        } else {
            Ok(&self.src[start..self.pos])
        }
    }
}

fn dec_value(tok: &str) -> Result<Value> {
    if tok == "n" {
        return Ok(Value::Null);
    }
    if let Some(rest) = tok.strip_prefix("i:") {
        return rest
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| ScoopError::InvalidRequest(format!("bad int literal '{rest}'")));
    }
    if let Some(rest) = tok.strip_prefix("f:") {
        return rest
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ScoopError::InvalidRequest(format!("bad float literal '{rest}'")));
    }
    if let Some(rest) = tok.strip_prefix("s:") {
        return Ok(Value::Str(dec(rest)?.into()));
    }
    Err(ScoopError::InvalidRequest(format!("bad value token '{tok}'")))
}

fn dec_pred(t: &mut Tokens<'_>) -> Result<Predicate> {
    // lint:allow(Tokens::expect is a fallible parser combinator returning
    // Result, not Option::expect — the `?` propagates, nothing panics)
    t.expect('(')?;
    let op = t.word()?.to_string();
    let pred = match op.as_str() {
        "eq" | "ne" | "lt" | "le" | "gt" | "ge" => {
            let col = dec(t.word()?)?;
            let val = dec_value(t.word()?)?;
            match op.as_str() {
                "eq" => Predicate::Eq(col, val),
                "ne" => Predicate::Ne(col, val),
                "lt" => Predicate::Lt(col, val),
                "le" => Predicate::Le(col, val),
                "gt" => Predicate::Gt(col, val),
                _ => Predicate::Ge(col, val),
            }
        }
        "like" | "sw" | "ew" | "ct" => {
            let col = dec(t.word()?)?;
            let s = dec(t.word()?)?;
            match op.as_str() {
                "like" => Predicate::Like(col, s),
                "sw" => Predicate::StartsWith(col, s),
                "ew" => Predicate::EndsWith(col, s),
                _ => Predicate::Contains(col, s),
            }
        }
        "in" => {
            let col = dec(t.word()?)?;
            let mut vals = Vec::new();
            loop {
                t.skip_ws();
                if t.peek() == Some(')') {
                    break;
                }
                vals.push(dec_value(t.word()?)?);
            }
            Predicate::In(col, vals)
        }
        "null" => Predicate::IsNull(dec(t.word()?)?),
        "notnull" => Predicate::IsNotNull(dec(t.word()?)?),
        "and" | "or" => {
            let a = dec_pred(t)?;
            let b = dec_pred(t)?;
            if op == "and" {
                Predicate::And(Box::new(a), Box::new(b))
            } else {
                Predicate::Or(Box::new(a), Box::new(b))
            }
        }
        "not" => Predicate::Not(Box::new(dec_pred(t)?)),
        other => {
            return Err(ScoopError::InvalidRequest(format!(
                "unknown predicate op '{other}'"
            )))
        }
    };
    // lint:allow(fallible Tokens::expect returning Result, same as above)
    t.expect(')')?;
    Ok(pred)
}

impl PushdownSpec {
    /// Serialize into the compact single-line header value.
    pub fn to_header(&self) -> String {
        let mut out = String::new();
        out.push_str("hdr=");
        out.push(if self.has_header { '1' } else { '0' });
        out.push_str(";cols=");
        match &self.columns {
            None => out.push('*'),
            Some(cols) => {
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&enc(c));
                }
            }
        }
        out.push_str(";pred=");
        if let Some(p) = &self.predicate {
            enc_pred(p, &mut out);
        }
        out
    }

    /// Parse a header value produced by [`PushdownSpec::to_header`].
    pub fn from_header(header: &str) -> Result<PushdownSpec> {
        let mut parts = header.splitn(3, ';');
        let hdr = parts
            .next()
            .and_then(|s| s.strip_prefix("hdr="))
            .ok_or_else(|| ScoopError::InvalidRequest("missing hdr= section".into()))?;
        let cols = parts
            .next()
            .and_then(|s| s.strip_prefix("cols="))
            .ok_or_else(|| ScoopError::InvalidRequest("missing cols= section".into()))?;
        let pred = parts
            .next()
            .and_then(|s| s.strip_prefix("pred="))
            .ok_or_else(|| ScoopError::InvalidRequest("missing pred= section".into()))?;
        let has_header = match hdr {
            "1" => true,
            "0" => false,
            other => {
                return Err(ScoopError::InvalidRequest(format!(
                    "bad hdr flag '{other}'"
                )))
            }
        };
        let columns = if cols == "*" {
            None
        } else if cols.is_empty() {
            Some(Vec::new())
        } else {
            Some(
                cols.split(',')
                    .map(dec)
                    .collect::<Result<Vec<String>>>()?,
            )
        };
        let predicate = if pred.is_empty() {
            None
        } else {
            let mut toks = Tokens::new(pred);
            let p = dec_pred(&mut toks)?;
            toks.skip_ws();
            if toks.pos != pred.len() {
                return Err(ScoopError::InvalidRequest(
                    "trailing garbage after predicate".into(),
                ));
            }
            Some(p)
        };
        Ok(PushdownSpec { columns, predicate, has_header })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        enc_pred(self, &mut out);
        write!(f, "{out}")
    }
}

impl fmt::Display for PushdownSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_header())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: &PushdownSpec) {
        let hdr = spec.to_header();
        let back = PushdownSpec::from_header(&hdr).expect("parse back");
        assert_eq!(&back, spec, "header was: {hdr}");
    }

    #[test]
    fn like_basic() {
        assert!(like_match("2015-01%", "2015-01-15 10:20:00"));
        assert!(!like_match("2015-01%", "2015-02-01"));
        assert!(like_match("Rotterdam", "Rotterdam"));
        assert!(!like_match("Rotterdam", "rotterdam"));
        assert!(like_match("U%", "USA"));
        assert!(like_match("%dam", "Rotterdam"));
        assert!(like_match("R%dam", "Rotterdam"));
        assert!(like_match("_otterdam", "Rotterdam"));
        assert!(like_match("%", ""));
        assert!(like_match("%%", "anything"));
        assert!(!like_match("_", ""));
        assert!(like_match("a%b%c", "a-x-b-y-c"));
        assert!(!like_match("a%b%c", "a-x-c-y-b"));
    }

    #[test]
    fn like_unicode() {
        assert!(like_match("caf_", "café"));
        assert!(like_match("%é", "café"));
    }

    #[test]
    fn header_roundtrip_simple() {
        roundtrip(&PushdownSpec::passthrough());
        roundtrip(&PushdownSpec {
            columns: Some(vec!["vid".into(), "date".into(), "index".into()]),
            predicate: Some(Predicate::Like("date".into(), "2015-01%".into())),
            has_header: true,
        });
    }

    #[test]
    fn header_roundtrip_nested_and_weird_strings() {
        let p = Predicate::And(
            Box::new(Predicate::Or(
                Box::new(Predicate::Eq("city".into(), Value::Str("Rot,ter;dam=()".into()))),
                Box::new(Predicate::In(
                    "state".into(),
                    vec![Value::Str("FRA".into()), Value::Int(7), Value::Null],
                )),
            )),
            Box::new(Predicate::Not(Box::new(Predicate::Ge(
                "index".into(),
                Value::Float(3.25),
            )))),
        );
        roundtrip(&PushdownSpec {
            columns: Some(vec!["a b".into(), "c%d".into()]),
            predicate: Some(p),
            has_header: false,
        });
    }

    #[test]
    fn header_roundtrip_all_ops() {
        for p in [
            Predicate::Eq("a".into(), Value::Int(1)),
            Predicate::Ne("a".into(), Value::Float(1.5)),
            Predicate::Lt("a".into(), Value::Str("x".into())),
            Predicate::Le("a".into(), Value::Null),
            Predicate::Gt("a".into(), Value::Int(-9)),
            Predicate::Ge("a".into(), Value::Int(0)),
            Predicate::Like("a".into(), "%x_".into()),
            Predicate::StartsWith("a".into(), "pre".into()),
            Predicate::EndsWith("a".into(), "suf".into()),
            Predicate::Contains("a".into(), "mid".into()),
            Predicate::In("a".into(), vec![]),
            Predicate::IsNull("a".into()),
            Predicate::IsNotNull("a".into()),
        ] {
            roundtrip(&PushdownSpec {
                columns: None,
                predicate: Some(p),
                has_header: true,
            });
        }
    }

    #[test]
    fn malformed_headers_error() {
        assert!(PushdownSpec::from_header("").is_err());
        assert!(PushdownSpec::from_header("hdr=2;cols=*;pred=").is_err());
        assert!(PushdownSpec::from_header("hdr=1;cols=*;pred=(bogus a b)").is_err());
        assert!(PushdownSpec::from_header("hdr=1;cols=*;pred=(eq a i:1) junk").is_err());
        assert!(PushdownSpec::from_header("hdr=1;cols=*;pred=(eq a i:zz)").is_err());
    }

    #[test]
    fn required_columns_unions_projection_and_predicate() {
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into(), "index".into()]),
            predicate: Some(Predicate::And(
                Box::new(Predicate::Like("date".into(), "2015%".into())),
                Box::new(Predicate::Eq("city".into(), Value::Str("Rotterdam".into()))),
            )),
            has_header: true,
        };
        let req = spec.required_columns().unwrap();
        let want: BTreeSet<String> =
            ["vid", "index", "date", "city"].iter().map(|s| s.to_string()).collect();
        assert_eq!(req, want);
        assert!(PushdownSpec::passthrough().required_columns().is_none());
    }

    #[test]
    fn and_all_builds_balanced_conjunction() {
        assert_eq!(Predicate::and_all(vec![]), None);
        let p = Predicate::and_all(vec![
            Predicate::IsNull("a".into()),
            Predicate::IsNull("b".into()),
            Predicate::IsNull("c".into()),
        ])
        .unwrap();
        assert_eq!(p.columns().len(), 3);
    }
}
