//! Object servers: device-local request handling.
//!
//! Swift object servers "are responsible for handling the replication of
//! objects across available disks ... and for managing objects". Here each
//! object server owns a set of devices (one backend per device), runs its own
//! middleware pipeline — the hook that lets the paper's extension run
//! "Storlets at storage nodes for byte ranges" — and exposes health toggles
//! for failure-injection tests.

use crate::backend::{MemBackend, StorageBackend, StoredObject};
use crate::middleware::Pipeline;
use crate::request::{Method, Request, Response};
use crate::ring::DeviceId;
use parking_lot::RwLock;
use scoop_common::telemetry::{self, names, ScopedCounter};
use scoop_common::{stream, Result, ScoopError};

/// GET response chunk size. Small (like Hadoop's 4 KB I/O buffer) so lazy
/// consumers that stop at a record boundary overshoot by at most this much;
/// chunks are zero-copy `Bytes` slices, so small chunks cost only iterator
/// overhead.
pub const RESPONSE_CHUNK: usize = 4 * 1024;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Stage marker header set by servers before running their pipeline, so a
/// middleware (e.g. the storlet engine) knows which tier it executes on.
pub const STAGE_HEADER: &str = scoop_common::headers::BACKEND_STAGE;
/// Stage value at proxies.
pub const STAGE_PROXY: &str = "proxy";
/// Stage value at object servers.
pub const STAGE_OBJECT: &str = "object";

/// Per-upload idempotency token header. The client stamps every logical PUT
/// with a fresh token; a re-dispatched PUT whose first attempt already
/// landed on a replica is acked without re-storing, so it cannot
/// double-count toward the write quorum.
pub const UPLOAD_TOKEN_HEADER: &str = scoop_common::headers::UPLOAD_TOKEN;

/// Monotonic counters exposed for experiments (bytes served, request counts).
/// Each is a [`ScopedCounter`]: the per-server value backs [`StatsSnapshot`]
/// accessors exactly, while every increment also feeds the process-wide
/// registry metric of the same role (`scoop_objserver_*`).
#[derive(Debug)]
pub struct ServerStats {
    /// GET requests served.
    pub gets: ScopedCounter,
    /// PUT requests served (actual stores; deduplicated re-PUTs excluded).
    pub puts: ScopedCounter,
    /// Payload bytes written by PUTs.
    pub bytes_in: ScopedCounter,
    /// Payload bytes read by GETs (before any middleware filtering).
    pub bytes_out: ScopedCounter,
    /// Re-dispatched PUTs acked idempotently via their upload token.
    pub deduped_puts: ScopedCounter,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            gets: ScopedCounter::new(names::OBJSERVER_GETS),
            puts: ScopedCounter::new(names::OBJSERVER_PUTS),
            bytes_in: ScopedCounter::new(names::OBJSERVER_BYTES_IN),
            bytes_out: ScopedCounter::new(names::OBJSERVER_BYTES_OUT),
            deduped_puts: ScopedCounter::new(names::OBJSERVER_DEDUPED_PUTS),
        }
    }
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            gets: self.gets.get(),
            puts: self.puts.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            deduped_puts: self.deduped_puts.get(),
        }
    }
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// GET requests served.
    pub gets: u64,
    /// PUT requests served (actual stores).
    pub puts: u64,
    /// Payload bytes written.
    pub bytes_in: u64,
    /// Payload bytes read.
    pub bytes_out: u64,
    /// Re-dispatched PUTs acked idempotently via their upload token.
    pub deduped_puts: u64,
}

/// An object server hosting several devices.
pub struct ObjectServer {
    /// Node id referenced by ring devices.
    pub id: u32,
    devices: HashMap<DeviceId, Arc<dyn StorageBackend>>,
    pipeline: RwLock<Pipeline>,
    down: AtomicBool,
    stats: ServerStats,
}

impl ObjectServer {
    /// Create a server with in-memory backends for the given devices.
    pub fn with_mem_devices(id: u32, devices: &[DeviceId]) -> Self {
        let map = devices
            .iter()
            .map(|&d| (d, Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>))
            .collect();
        ObjectServer {
            id,
            devices: map,
            pipeline: RwLock::new(Pipeline::new()),
            down: AtomicBool::new(false),
            stats: ServerStats::default(),
        }
    }

    /// Create a server with explicit backends.
    pub fn with_backends(id: u32, devices: HashMap<DeviceId, Arc<dyn StorageBackend>>) -> Self {
        ObjectServer {
            id,
            devices,
            pipeline: RwLock::new(Pipeline::new()),
            down: AtomicBool::new(false),
            stats: ServerStats::default(),
        }
    }

    /// Replace the middleware pipeline (e.g. to install the storlet engine).
    pub fn set_pipeline(&self, pipeline: Pipeline) {
        *self.pipeline.write() = pipeline;
    }

    /// Mark the server up/down (failure injection).
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// True when the server is marked down.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Device ids hosted by this server.
    pub fn device_ids(&self) -> Vec<DeviceId> {
        let mut ids: Vec<DeviceId> = self.devices.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Direct backend access for a device — used by the replicator, which in
    /// Swift talks rsync directly between object servers. Fails when down.
    pub fn backend(&self, device: DeviceId) -> Result<Arc<dyn StorageBackend>> {
        if self.is_down() {
            return Err(ScoopError::Io(std::io::Error::other(format!(
                "object server {} is down",
                self.id
            ))));
        }
        self.devices
            .get(&device)
            .cloned()
            .ok_or_else(|| ScoopError::NotFound(format!("device {device:?} on node {}", self.id)))
    }

    /// Counters snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Handle a request against one of this server's devices, running the
    /// object-stage middleware pipeline.
    pub fn handle(&self, device: DeviceId, mut req: Request) -> Result<Response> {
        if self.is_down() {
            return Err(ScoopError::Io(std::io::Error::other(format!(
                "object server {} is down",
                self.id
            ))));
        }
        req.deadline
            .check(&format!("object server {} {:?}", self.id, req.method))?;
        let backend = self.backend(device)?;
        let _span = telemetry::span(
            req.headers.get(scoop_common::headers::TRACE),
            telemetry::layers::OBJSERVER,
            format!("node {} {:?} {}", self.id, req.method, req.path.ring_key()),
        );
        req.headers.set(STAGE_HEADER, STAGE_OBJECT);
        let pipeline = self.pipeline.read().clone();
        let stats = &self.stats;
        pipeline.execute(req, &move |req: Request| {
            Self::terminal(stats, backend.as_ref(), req)
        })
    }

    /// Extract `x-object-meta-*` headers into a metadata map.
    fn user_metadata(req: &Request) -> BTreeMap<String, String> {
        req.headers
            .with_prefix(scoop_common::headers::OBJECT_META_PREFIX)
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    fn terminal(
        stats: &ServerStats,
        backend: &dyn StorageBackend,
        req: Request,
    ) -> Result<Response> {
        let key = req.path.ring_key();
        match req.method {
            Method::Put => {
                let body = req.body.clone().unwrap_or_default();
                let token = req.headers.get(UPLOAD_TOKEN_HEADER);
                // Idempotent re-dispatch: if the stored copy already carries
                // this upload's token, the first attempt landed here — ack
                // with the stored identity instead of storing again. The
                // existence probe uses `contains` (fault- and op-free) so a
                // first-time PUT consumes no extra fault-injector samples;
                // only genuine overwrites pay the metadata read, and if that
                // read faults we just store again (same token, same bytes).
                if let Some(token) = token {
                    if backend.contains(&key) {
                        if let Ok(existing) = backend.head(&key) {
                            if existing
                                .metadata
                                .get(UPLOAD_TOKEN_HEADER)
                                .is_some_and(|t| t == token)
                            {
                                stats.deduped_puts.inc();
                                return Ok(Response::created()
                                    .with_header("etag", existing.etag.clone())
                                    .with_header(
                                        "content-length",
                                        existing.size.to_string(),
                                    ));
                            }
                        }
                    }
                }
                stats.puts.inc();
                stats.bytes_in.add(body.len() as u64);
                let mut metadata = Self::user_metadata(&req);
                if let Some(token) = token {
                    metadata.insert(UPLOAD_TOKEN_HEADER.to_string(), token.to_string());
                }
                let obj = StoredObject::new(body, metadata);
                let etag = obj.etag.clone();
                let size = obj.data.len();
                backend.put(&key, obj)?;
                Ok(Response::created()
                    .with_header("etag", etag)
                    .with_header("content-length", size.to_string()))
            }
            Method::Get => {
                let meta = backend.head(&key)?;
                let spec = req.range_spec()?;
                // RFC 7233: a range that selects no bytes (past-EOF start,
                // zero-length suffix, empty object) is 416 with the total
                // size, never a fabricated `bytes 0-0/N`.
                if let Some(spec) = spec {
                    if !spec.satisfiable(meta.size) {
                        return Ok(Response::range_not_satisfiable(meta.size));
                    }
                }
                let (start, end) = match spec {
                    Some(spec) => spec.resolve(meta.size),
                    None => (0, meta.size),
                };
                let data = backend.get_range(&key, start, end)?;
                stats.gets.inc();
                stats.bytes_out.add(data.len() as u64);
                let mut resp = Response::ok(stream::chunked(data, RESPONSE_CHUNK))
                    .with_header("etag", meta.etag)
                    .with_header("content-length", end.saturating_sub(start).to_string())
                    .with_header(scoop_common::headers::OBJECT_LENGTH, meta.size.to_string());
                // The upload token is replica-internal bookkeeping, not
                // user metadata — it never leaves the server.
                for (k, v) in meta.metadata.iter().filter(|(k, _)| *k != UPLOAD_TOKEN_HEADER) {
                    resp.headers.set(k, v.clone());
                }
                if spec.is_some() {
                    // `end > start` here (unsatisfiable ranges returned 416
                    // above), so the inclusive last-byte index is exact.
                    resp.status = 206;
                    resp.headers.set(
                        "content-range",
                        format!("bytes {start}-{}/{}", end.saturating_sub(1), meta.size),
                    );
                }
                Ok(resp)
            }
            Method::Head => {
                let meta = backend.head(&key)?;
                let mut resp = Response::no_content()
                    .with_header("etag", meta.etag)
                    .with_header("content-length", meta.size.to_string());
                for (k, v) in meta.metadata.iter().filter(|(k, _)| *k != UPLOAD_TOKEN_HEADER) {
                    resp.headers.set(k, v.clone());
                }
                Ok(resp)
            }
            Method::Delete => {
                backend.delete(&key)?;
                Ok(Response::no_content())
            }
            Method::Post => {
                // Metadata-only update: replace *user* metadata, keep payload.
                // Internal keys ride in the same map but are not the client's
                // to replace: the upload token backs PUT-replay dedup and the
                // scoop-stats chunks back block skipping — wholesale
                // replacement used to destroy both (and let a client forge
                // stats for data it never wrote, which is why user-supplied
                // stats keys are dropped rather than honoured).
                let mut obj = backend.get(&key)?;
                let stats_prefix = scoop_common::headers::SCOOP_STATS_PREFIX;
                let mut metadata: BTreeMap<String, String> = Self::user_metadata(&req)
                    .into_iter()
                    .filter(|(k, _)| !k.starts_with(stats_prefix))
                    .collect();
                for (k, v) in &obj.metadata {
                    if k == UPLOAD_TOKEN_HEADER || k.starts_with(stats_prefix) {
                        metadata.insert(k.clone(), v.clone());
                    }
                }
                obj.metadata = metadata;
                backend.put(&key, obj)?;
                Ok(Response::no_content())
            }
        }
    }
}

impl std::fmt::Debug for ObjectServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectServer")
            .field("id", &self.id)
            .field("devices", &self.device_ids())
            .field("down", &self.is_down())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::ObjectPath;
    use bytes::Bytes;
    use crate::request::ByteRange;

    fn server() -> ObjectServer {
        ObjectServer::with_mem_devices(0, &[DeviceId(0), DeviceId(1)])
    }

    fn path() -> ObjectPath {
        ObjectPath::new("a", "c", "data.csv").unwrap()
    }

    #[test]
    fn put_get_roundtrip_with_metadata() {
        let s = server();
        let put = Request::put(path(), Bytes::from_static(b"col1,col2\n1,2\n"))
            .with_header("X-Object-Meta-Schema", "col1,col2");
        let resp = s.handle(DeviceId(0), put).unwrap();
        assert_eq!(resp.status, 201);
        let etag = resp.headers.get("etag").unwrap().to_string();

        let got = s.handle(DeviceId(0), Request::get(path())).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.headers.get("etag"), Some(etag.as_str()));
        assert_eq!(got.headers.get("x-object-meta-schema"), Some("col1,col2"));
        assert_eq!(got.read_body().unwrap(), "col1,col2\n1,2\n");

        // The same object is absent on another device.
        assert!(s.handle(DeviceId(1), Request::get(path())).is_err());
    }

    #[test]
    fn ranged_get_returns_206() {
        let s = server();
        s.handle(DeviceId(0), Request::put(path(), Bytes::from_static(b"0123456789")))
            .unwrap();
        let resp = s
            .handle(
                DeviceId(0),
                Request::get(path()).with_range(ByteRange { start: 2, end: Some(5) }),
            )
            .unwrap();
        assert_eq!(resp.status, 206);
        assert_eq!(resp.headers.get("content-range"), Some("bytes 2-5/10"));
        assert_eq!(resp.read_body().unwrap(), "2345");
    }

    #[test]
    fn unsatisfiable_range_returns_416_not_fabricated_content_range() {
        let s = server();
        s.handle(DeviceId(0), Request::put(path(), Bytes::from_static(b"0123456789")))
            .unwrap();
        // Past-EOF open range selects nothing.
        let resp = s
            .handle(
                DeviceId(0),
                Request::get(path()).with_range(ByteRange { start: 10, end: None }),
            )
            .unwrap();
        assert_eq!(resp.status, 416);
        assert_eq!(resp.headers.get("content-range"), Some("bytes */10"));
        assert_eq!(resp.read_body().unwrap().len(), 0);
        // Zero-length suffix likewise.
        let resp = s
            .handle(DeviceId(0), Request::get(path()).with_header("range", "bytes=-0"))
            .unwrap();
        assert_eq!(resp.status, 416);
        // 416 GETs never count as served bytes.
        assert_eq!(s.stats().gets, 0);
        assert_eq!(s.stats().bytes_out, 0);
    }

    #[test]
    fn suffix_range_serves_the_object_tail() {
        let s = server();
        s.handle(DeviceId(0), Request::put(path(), Bytes::from_static(b"0123456789")))
            .unwrap();
        let resp = s
            .handle(DeviceId(0), Request::get(path()).with_header("range", "bytes=-4"))
            .unwrap();
        assert_eq!(resp.status, 206);
        assert_eq!(resp.headers.get("content-range"), Some("bytes 6-9/10"));
        assert_eq!(resp.read_body().unwrap(), "6789");
    }

    #[test]
    fn head_delete_post() {
        let s = server();
        s.handle(
            DeviceId(0),
            Request::put(path(), Bytes::from_static(b"xyz"))
                .with_header("x-object-meta-a", "1"),
        )
        .unwrap();
        let head = s.handle(DeviceId(0), Request::head(path())).unwrap();
        assert_eq!(head.headers.get("content-length"), Some("3"));
        assert_eq!(head.headers.get("x-object-meta-a"), Some("1"));

        // POST replaces user metadata.
        let post = Request {
            method: Method::Post,
            path: path(),
            headers: Default::default(),
            body: None,
            deadline: Default::default(),
        }
        .with_header("x-object-meta-b", "2");
        s.handle(DeviceId(0), post).unwrap();
        let head = s.handle(DeviceId(0), Request::head(path())).unwrap();
        assert!(head.headers.get("x-object-meta-a").is_none());
        assert_eq!(head.headers.get("x-object-meta-b"), Some("2"));

        s.handle(DeviceId(0), Request::delete(path())).unwrap();
        assert!(s.handle(DeviceId(0), Request::head(path())).is_err());
    }

    #[test]
    fn post_preserves_internal_metadata() {
        let stats_key = format!("{}0", scoop_common::headers::SCOOP_STATS_PREFIX);
        let s = server();
        let put = Request::put(path(), Bytes::from_static(b"payload"))
            .with_header(UPLOAD_TOKEN_HEADER, "upload-1")
            .with_header(stats_key.as_str(), "v1|etag|...")
            .with_header("x-object-meta-a", "1");
        s.handle(DeviceId(0), put.clone()).unwrap();

        // A metadata-only POST replaces user keys but must not destroy the
        // internal ones, and must not let the client forge stats keys.
        let post = Request {
            method: Method::Post,
            path: path(),
            headers: Default::default(),
            body: None,
            deadline: Default::default(),
        }
        .with_header("x-object-meta-b", "2")
        .with_header(stats_key.as_str(), "forged");
        s.handle(DeviceId(0), post).unwrap();

        let backend = s.backend(DeviceId(0)).unwrap();
        let meta = backend.head(&path().ring_key()).unwrap();
        assert!(!meta.metadata.contains_key("x-object-meta-a"));
        assert_eq!(meta.metadata.get("x-object-meta-b").map(String::as_str), Some("2"));
        assert_eq!(
            meta.metadata.get(UPLOAD_TOKEN_HEADER).map(String::as_str),
            Some("upload-1"),
            "upload token must survive metadata-only POSTs"
        );
        assert_eq!(
            meta.metadata.get(stats_key.as_str()).map(String::as_str),
            Some("v1|etag|..."),
            "stored stats must survive and forged stats must be dropped"
        );

        // PUT-replay dedup still works after the POST: same token, no re-store.
        let replay = s.handle(DeviceId(0), put).unwrap();
        assert_eq!(replay.status, 201);
        assert_eq!(s.stats().puts, 1, "replayed PUT after POST must dedupe");
        assert_eq!(s.stats().deduped_puts, 1);
    }

    #[test]
    fn down_server_rejects_everything() {
        let s = server();
        s.handle(DeviceId(0), Request::put(path(), Bytes::from_static(b"x")))
            .unwrap();
        s.set_down(true);
        assert!(s.is_down());
        let err = s.handle(DeviceId(0), Request::get(path())).unwrap_err();
        assert!(err.is_retryable());
        assert!(s.backend(DeviceId(0)).is_err());
        s.set_down(false);
        assert!(s.handle(DeviceId(0), Request::get(path())).is_ok());
    }

    #[test]
    fn stats_accumulate() {
        let s = server();
        s.handle(DeviceId(0), Request::put(path(), Bytes::from_static(b"abcde")))
            .unwrap();
        s.handle(DeviceId(0), Request::get(path())).unwrap();
        s.handle(DeviceId(0), Request::get(path())).unwrap();
        let st = s.stats();
        assert_eq!(st.puts, 1);
        assert_eq!(st.gets, 2);
        assert_eq!(st.bytes_in, 5);
        assert_eq!(st.bytes_out, 10);
    }

    #[test]
    fn retried_put_with_same_token_stores_once() {
        let s = server();
        let put = Request::put(path(), Bytes::from_static(b"payload"))
            .with_header(UPLOAD_TOKEN_HEADER, "upload-1");
        let first = s.handle(DeviceId(0), put.clone()).unwrap();
        // Re-dispatch of the same logical upload: acked with the stored
        // identity, not stored again.
        let second = s.handle(DeviceId(0), put).unwrap();
        assert_eq!(second.status, 201);
        assert_eq!(second.headers.get("etag"), first.headers.get("etag"));
        assert_eq!(second.headers.get("content-length"), Some("7"));
        let st = s.stats();
        assert_eq!(st.puts, 1, "re-dispatch must not store twice");
        assert_eq!(st.deduped_puts, 1);
        // A *new* upload of the same object (fresh token) does store.
        let third = Request::put(path(), Bytes::from_static(b"payload2"))
            .with_header(UPLOAD_TOKEN_HEADER, "upload-2");
        s.handle(DeviceId(0), third).unwrap();
        assert_eq!(s.stats().puts, 2);
        // The token is internal: it never surfaces on reads.
        let got = s.handle(DeviceId(0), Request::get(path())).unwrap();
        assert!(got.headers.get(UPLOAD_TOKEN_HEADER).is_none());
    }

    #[test]
    fn expired_deadline_is_rejected_before_work() {
        use scoop_common::Deadline;
        use std::time::Duration;
        let s = server();
        s.handle(DeviceId(0), Request::put(path(), Bytes::from_static(b"x")))
            .unwrap();
        let late = Request::get(path())
            .with_deadline(Deadline::at(std::time::Instant::now() - Duration::from_millis(1)));
        let err = s.handle(DeviceId(0), late).unwrap_err();
        assert_eq!(err.kind(), "deadline");
        assert_eq!(s.stats().gets, 0, "expired requests must not reach the backend");
    }

    #[test]
    fn unknown_device_is_not_found() {
        let s = server();
        let err = s
            .handle(DeviceId(99), Request::get(path()))
            .unwrap_err();
        assert_eq!(err.kind(), "not_found");
    }

    #[test]
    fn stage_header_is_set_for_middleware() {
        use crate::middleware::{Handler, Middleware};
        struct AssertStage;
        impl Middleware for AssertStage {
            fn name(&self) -> &str {
                "assert-stage"
            }
            fn handle(&self, req: Request, next: &dyn Handler) -> Result<Response> {
                assert_eq!(req.headers.get(STAGE_HEADER), Some(STAGE_OBJECT));
                next.call(req)
            }
        }
        let s = server();
        let mut p = Pipeline::new();
        p.push(Arc::new(AssertStage));
        s.set_pipeline(p);
        s.handle(DeviceId(0), Request::put(path(), Bytes::from_static(b"x")))
            .unwrap();
    }
}
