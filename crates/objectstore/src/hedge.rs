//! The hedged-request race, extracted from the proxy so its
//! winner-selection logic can run under the loom model checker.
//!
//! A read is dispatched to its first replica on a worker thread; if no
//! response arrives within the hedge interval, the next replica is raced
//! against it, and the first successful response wins. Losers run to
//! completion in the background (their outcomes still train the circuit
//! breaker — that happens inside each attempt closure, not here).
//!
//! Under `--cfg loom` the threads and the result channel come from the
//! model checker, and `tests/loom.rs` drives this exact function through
//! every interleaving of "replica A finishes / replica B finishes / the
//! hedge timer fires".

use scoop_common::{Deadline, Result, ScoopError};
use std::time::Duration;

#[cfg(loom)]
use loom::{sync::mpsc, thread};
#[cfg(not(loom))]
use std::{sync::mpsc, thread};

/// One replica dispatch: runs on its own thread, returns the replica's
/// outcome. Breaker training belongs inside the closure so it happens for
/// losers too.
pub type Attempt<T> = Box<dyn FnOnce() -> Result<T> + Send + 'static>;

/// How long to wait for stragglers once every replica has been launched.
const STRAGGLER_WAIT: Duration = Duration::from_secs(60);

/// What the race produced, plus the counters the proxy folds into its
/// stats. Counters are returned (not injected) so the race itself has no
/// shared mutable state beyond the result channel.
#[derive(Debug)]
pub struct RaceOutcome<T> {
    /// `Ok((attempt_index, value))` for the winning replica, or the final
    /// error once every candidate failed (or a non-retryable error or
    /// deadline expiry cut the race short).
    pub result: Result<(usize, T)>,
    /// Hedge launches: replicas raced because the hedge interval elapsed.
    pub hedges_launched: u64,
    /// Replica failures absorbed by moving on to another candidate.
    pub failovers: u64,
}

/// Race `attempts` against each other: launch the first, hedge with the
/// next after `hedge_after` of silence, return the first success.
///
/// Failure policy matches the sequential failover path: retryable errors
/// and 404s (a replica that missed an under-replicated PUT) move on;
/// anything else aborts the race. `key` names the object in deadline and
/// not-found messages.
pub fn race<T: Send + 'static>(
    attempts: Vec<Attempt<T>>,
    hedge_after: Duration,
    deadline: Deadline,
    key: &str,
    mut last_err: Option<ScoopError>,
) -> RaceOutcome<T> {
    let total = attempts.len();
    let mut hedges_launched = 0u64;
    let mut failovers = 0u64;
    let (tx, rx) = mpsc::channel::<(usize, Result<T>)>();
    let mut queue = attempts.into_iter();
    let mut launched = 0usize;
    let mut settled = 0usize;
    let mut spawn_next = |launched: &mut usize| {
        if let Some(attempt) = queue.next() {
            let tx = tx.clone();
            let idx = *launched;
            thread::spawn(move || {
                let _ = tx.send((idx, attempt()));
            });
            *launched += 1;
        }
    };
    spawn_next(&mut launched);
    let result = loop {
        // While unlaunched replicas remain, wait only a hedge interval;
        // afterwards wait for the stragglers, clamped to the deadline.
        let wait = if launched < total { hedge_after } else { STRAGGLER_WAIT };
        match rx.recv_timeout(deadline.clamp_sleep(wait)) {
            Ok((idx, Ok(v))) => break Ok((idx, v)),
            Ok((_, Err(e))) => {
                settled += 1;
                if e.is_retryable() || matches!(e, ScoopError::NotFound(_)) {
                    failovers += 1;
                    note_read_failure(&mut last_err, e);
                } else {
                    break Err(e);
                }
                if settled == launched {
                    if launched < total {
                        // Everything in flight failed: go straight to the
                        // next replica (a failover, not a hedge).
                        spawn_next(&mut launched);
                    } else {
                        break Err(take_final_error(&mut last_err, key));
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Err(e) = deadline.check(&format!("proxy read {key}")) {
                    break Err(e);
                }
                if launched < total {
                    hedges_launched += 1;
                    spawn_next(&mut launched);
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(take_final_error(&mut last_err, key));
            }
        }
    };
    RaceOutcome { result, hedges_launched, failovers }
}

fn take_final_error(last_err: &mut Option<ScoopError>, key: &str) -> ScoopError {
    last_err
        .take()
        .unwrap_or_else(|| ScoopError::NotFound(format!("object {key}")))
}

/// Fold a failed replica read into the running error, preserving the rule
/// that a stale replica's 404 must not mask a transient failure on a
/// replica that may hold the object: surfacing the retryable error lets
/// the client re-dispatch and reach the healthy copy.
pub fn note_read_failure(last_err: &mut Option<ScoopError>, e: ScoopError) {
    match (&*last_err, &e) {
        (Some(prev), ScoopError::NotFound(_)) if prev.is_retryable() => {}
        _ => *last_err = Some(e),
    }
}
