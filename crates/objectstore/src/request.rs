//! HTTP-shaped requests and responses.
//!
//! Swift is driven through a RESTful HTTP API; Scoop piggybacks pushdown
//! tasks "by piggybacking specific metadata fields in the HTTP GET request".
//! This module models exactly the parts of HTTP the system relies on:
//! methods, headers (case-insensitive), byte ranges and streamed bodies.

use crate::path::ObjectPath;
use bytes::Bytes;
use scoop_common::{stream, ByteStream, Deadline, Result, ScoopError};
use std::collections::BTreeMap;

/// Request methods used by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve an object (optionally a byte range).
    Get,
    /// Store an object.
    Put,
    /// Remove an object.
    Delete,
    /// Retrieve object metadata only.
    Head,
    /// Update object metadata.
    Post,
}

/// An inclusive byte range `[start, end]`, mirroring `Range: bytes=a-b`.
/// `end == None` means "to end of object".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    /// First byte offset (inclusive).
    pub start: u64,
    /// Last byte offset (inclusive), or `None` for EOF.
    pub end: Option<u64>,
}

impl ByteRange {
    /// Parse a `bytes=a-b` / `bytes=a-` header value.
    pub fn parse(header: &str) -> Result<ByteRange> {
        let spec = header
            .strip_prefix("bytes=")
            .ok_or_else(|| ScoopError::InvalidRequest(format!("bad range '{header}'")))?;
        let (a, b) = spec
            .split_once('-')
            .ok_or_else(|| ScoopError::InvalidRequest(format!("bad range '{header}'")))?;
        let start: u64 = a
            .parse()
            .map_err(|_| ScoopError::InvalidRequest(format!("bad range start '{a}'")))?;
        let end = if b.is_empty() {
            None
        } else {
            let e: u64 = b
                .parse()
                .map_err(|_| ScoopError::InvalidRequest(format!("bad range end '{b}'")))?;
            if e < start {
                return Err(ScoopError::InvalidRequest(format!(
                    "range end before start in '{header}'"
                )));
            }
            Some(e)
        };
        Ok(ByteRange { start, end })
    }

    /// Render back to a header value.
    pub fn to_header(self) -> String {
        match self.end {
            Some(e) => format!("bytes={}-{e}", self.start),
            None => format!("bytes={}-", self.start),
        }
    }

    /// Clamp against an object of `len` bytes → half-open `[start, end)`.
    pub fn resolve(self, len: u64) -> (u64, u64) {
        let start = self.start.min(len);
        let end = match self.end {
            // Saturating: `bytes=0-18446744073709551615` is a valid header
            // and must clamp to the object, not overflow-panic.
            Some(e) => e.saturating_add(1).min(len),
            None => len,
        };
        (start, end.max(start))
    }
}

/// A fully parsed `Range` header: either a range anchored at a start
/// offset ([`ByteRange`]) or an RFC 7233 *suffix* range (`bytes=-n`, the
/// final `n` bytes of the object). [`ByteRange::parse`] alone rejects the
/// suffix form, which used to make the object server 400 a legal header;
/// servers parse via [`RangeSpec::parse`] and share one resolution rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeSpec {
    /// `bytes=a-b` / `bytes=a-`.
    FromStart(ByteRange),
    /// `bytes=-n`: the final `n` bytes of the object.
    Suffix(u64),
}

impl RangeSpec {
    /// Parse any `bytes=...` header form.
    pub fn parse(header: &str) -> Result<RangeSpec> {
        let spec = header
            .strip_prefix("bytes=")
            .ok_or_else(|| ScoopError::InvalidRequest(format!("bad range '{header}'")))?;
        if let Some(n) = spec.strip_prefix('-') {
            if !n.is_empty() {
                let n: u64 = n.parse().map_err(|_| {
                    ScoopError::InvalidRequest(format!("bad suffix range '{header}'"))
                })?;
                return Ok(RangeSpec::Suffix(n));
            }
            // `bytes=-` has neither a start nor a suffix length; fall
            // through so ByteRange::parse reports it.
        }
        Ok(RangeSpec::FromStart(ByteRange::parse(header)?))
    }

    /// Resolve against an object of `len` bytes → clamped half-open
    /// `[start, end)`. A suffix longer than the object clamps to the whole
    /// object, per RFC 7233.
    pub fn resolve(self, len: u64) -> (u64, u64) {
        match self {
            RangeSpec::FromStart(r) => r.resolve(len),
            RangeSpec::Suffix(n) => (len.saturating_sub(n), len),
        }
    }

    /// RFC 7233 satisfiability: does the range select at least one byte of
    /// an object `len` bytes long? Unsatisfiable ranges (start past EOF,
    /// `bytes=-0`, any range on an empty object) must be answered with
    /// `416` + `Content-Range: bytes */len`, never with a fabricated empty
    /// `206`.
    pub fn satisfiable(self, len: u64) -> bool {
        let (start, end) = self.resolve(len);
        start < end
    }
}

/// Case-insensitive header map (values keep their case).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Headers(BTreeMap<String, String>);

impl Headers {
    /// Empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a header (replacing any previous value).
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.0.insert(name.to_ascii_lowercase(), value.into());
    }

    /// Get a header value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Remove a header, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<String> {
        self.0.remove(&name.to_ascii_lowercase())
    }

    /// True when the header is present.
    pub fn contains(&self, name: &str) -> bool {
        self.0.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterate over `(name, value)` pairs (names lowercased).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// All headers with the given prefix (e.g. `x-object-meta-`).
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        let prefix = prefix.to_ascii_lowercase();
        self.0
            .iter()
            .filter(move |(k, _)| k.starts_with(&prefix))
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// A storage request.
#[derive(Clone)]
pub struct Request {
    /// HTTP-like method.
    pub method: Method,
    /// Target object.
    pub path: ObjectPath,
    /// Request headers (auth token, pushdown metadata, range, user metadata).
    pub headers: Headers,
    /// Body for PUT requests.
    pub body: Option<Bytes>,
    /// Time budget of the query this request serves; every hop (client
    /// dispatch, proxy routing, object server) checks it before working.
    pub deadline: Deadline,
}

impl Request {
    /// Build a GET request.
    pub fn get(path: ObjectPath) -> Request {
        Request {
            method: Method::Get,
            path,
            headers: Headers::new(),
            body: None,
            deadline: Deadline::none(),
        }
    }

    /// Build a PUT request with a body.
    pub fn put(path: ObjectPath, body: Bytes) -> Request {
        Request {
            method: Method::Put,
            path,
            headers: Headers::new(),
            body: Some(body),
            deadline: Deadline::none(),
        }
    }

    /// Build a DELETE request.
    pub fn delete(path: ObjectPath) -> Request {
        Request {
            method: Method::Delete,
            path,
            headers: Headers::new(),
            body: None,
            deadline: Deadline::none(),
        }
    }

    /// Build a HEAD request.
    pub fn head(path: ObjectPath) -> Request {
        Request {
            method: Method::Head,
            path,
            headers: Headers::new(),
            body: None,
            deadline: Deadline::none(),
        }
    }

    /// Attach a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.set(name, value);
        self
    }

    /// Attach a time budget (builder style).
    pub fn with_deadline(mut self, deadline: Deadline) -> Request {
        self.deadline = deadline;
        self
    }

    /// Attach a byte range.
    pub fn with_range(self, range: ByteRange) -> Request {
        self.with_header("range", range.to_header())
    }

    /// Parse the `Range` header if present. Rejects suffix ranges; callers
    /// that must honor every RFC 7233 form use [`Request::range_spec`].
    pub fn range(&self) -> Result<Option<ByteRange>> {
        self.headers.get("range").map(ByteRange::parse).transpose()
    }

    /// Parse the `Range` header (including the suffix form) if present.
    pub fn range_spec(&self) -> Result<Option<RangeSpec>> {
        self.headers.get("range").map(RangeSpec::parse).transpose()
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("method", &self.method)
            .field("path", &self.path.to_string())
            .field("headers", &self.headers)
            .field("body_len", &self.body.as_ref().map(Bytes::len))
            .finish()
    }
}

/// A storage response with a streamed body.
pub struct Response {
    /// HTTP-like status code.
    pub status: u16,
    /// Response headers (etag, content-length, metadata, filter stats).
    pub headers: Headers,
    /// Body stream (empty for errors / HEAD / PUT acks).
    pub body: ByteStream,
}

impl Response {
    /// 200 response with a streamed body.
    pub fn ok(body: ByteStream) -> Response {
        Response { status: 200, headers: Headers::new(), body }
    }

    /// 201 created (PUT ack).
    pub fn created() -> Response {
        Response { status: 201, headers: Headers::new(), body: stream::empty() }
    }

    /// 204 no content (DELETE ack, HEAD).
    pub fn no_content() -> Response {
        Response { status: 204, headers: Headers::new(), body: stream::empty() }
    }

    /// 503 service unavailable (overload shedding).
    pub fn unavailable() -> Response {
        Response { status: 503, headers: Headers::new(), body: stream::empty() }
    }

    /// 416 range not satisfiable for an object of `total` bytes, carrying
    /// the RFC 7233 `Content-Range: bytes */total` form.
    pub fn range_not_satisfiable(total: u64) -> Response {
        Response { status: 416, headers: Headers::new(), body: stream::empty() }
            .with_header("content-range", format!("bytes */{total}"))
    }

    /// Attach a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.set(name, value);
        self
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Drain the body into one buffer (test/convenience helper).
    pub fn read_body(self) -> Result<Bytes> {
        stream::collect(self.body)
    }
}

impl std::fmt::Debug for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Response")
            .field("status", &self.status)
            .field("headers", &self.headers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_range_parse_and_render() {
        let r = ByteRange::parse("bytes=10-20").unwrap();
        assert_eq!(r, ByteRange { start: 10, end: Some(20) });
        assert_eq!(r.to_header(), "bytes=10-20");
        let open = ByteRange::parse("bytes=5-").unwrap();
        assert_eq!(open.end, None);
        assert!(ByteRange::parse("10-20").is_err());
        assert!(ByteRange::parse("bytes=20-10").is_err());
        assert!(ByteRange::parse("bytes=x-2").is_err());
    }

    #[test]
    fn byte_range_resolution_clamps() {
        assert_eq!(ByteRange { start: 0, end: Some(9) }.resolve(100), (0, 10));
        assert_eq!(ByteRange { start: 0, end: None }.resolve(100), (0, 100));
        assert_eq!(ByteRange { start: 50, end: Some(500) }.resolve(100), (50, 100));
        assert_eq!(ByteRange { start: 200, end: None }.resolve(100), (100, 100));
    }

    #[test]
    fn byte_range_resolution_survives_u64_max() {
        // Regression: `end + 1` used to overflow-panic on the largest legal
        // header value, letting one request kill an object server thread.
        let r = ByteRange::parse("bytes=0-18446744073709551615").unwrap();
        assert_eq!(r.resolve(100), (0, 100));
        assert_eq!(ByteRange { start: 5, end: Some(u64::MAX) }.resolve(10), (5, 10));
    }

    #[test]
    fn range_spec_covers_every_header_form() {
        assert_eq!(
            RangeSpec::parse("bytes=10-20").unwrap(),
            RangeSpec::FromStart(ByteRange { start: 10, end: Some(20) })
        );
        assert_eq!(RangeSpec::parse("bytes=-5").unwrap(), RangeSpec::Suffix(5));
        assert!(RangeSpec::parse("bytes=-").is_err());
        assert!(RangeSpec::parse("bytes=-x").is_err());
        assert!(RangeSpec::parse("10-20").is_err());
        assert!(RangeSpec::parse("bytes=20-10").is_err());
    }

    #[test]
    fn suffix_ranges_resolve_to_the_object_tail() {
        assert_eq!(RangeSpec::Suffix(4).resolve(10), (6, 10));
        // Longer than the object: the whole object, per RFC 7233.
        assert_eq!(RangeSpec::Suffix(100).resolve(10), (0, 10));
        assert_eq!(RangeSpec::Suffix(0).resolve(10), (10, 10));
        assert_eq!(RangeSpec::Suffix(4).resolve(0), (0, 0));
    }

    #[test]
    fn satisfiability_matches_rfc_7233() {
        assert!(RangeSpec::Suffix(1).satisfiable(10));
        assert!(!RangeSpec::Suffix(0).satisfiable(10), "bytes=-0 selects nothing");
        assert!(!RangeSpec::Suffix(5).satisfiable(0), "empty objects satisfy no range");
        let past_eof = RangeSpec::FromStart(ByteRange { start: 10, end: None });
        assert!(!past_eof.satisfiable(10));
        assert!(past_eof.satisfiable(11));
        let bounded = RangeSpec::FromStart(ByteRange { start: 2, end: Some(5) });
        assert!(bounded.satisfiable(3));
        assert!(!bounded.satisfiable(2));
    }

    #[test]
    fn range_not_satisfiable_reports_total_size() {
        let r = Response::range_not_satisfiable(42);
        assert_eq!(r.status, 416);
        assert!(!r.is_success());
        assert_eq!(r.headers.get("content-range"), Some("bytes */42"));
    }

    #[test]
    fn headers_are_case_insensitive() {
        let mut h = Headers::new();
        h.set("X-Auth-Token", "tok");
        assert_eq!(h.get("x-auth-token"), Some("tok"));
        assert!(h.contains("X-AUTH-TOKEN"));
        h.set("X-Object-Meta-Owner", "gp");
        h.set("X-Object-Meta-Kind", "csv");
        assert_eq!(h.with_prefix("X-Object-Meta-").count(), 2);
        assert_eq!(h.remove("x-auth-token"), Some("tok".into()));
        assert!(!h.contains("x-auth-token"));
    }

    #[test]
    fn request_builders() {
        let p = ObjectPath::new("a", "c", "o").unwrap();
        let req = Request::get(p.clone())
            .with_range(ByteRange { start: 0, end: Some(99) })
            .with_header("x-run-storlet", "csvfilter");
        assert_eq!(req.range().unwrap().unwrap().end, Some(99));
        assert_eq!(req.headers.get("x-run-storlet"), Some("csvfilter"));
        let put = Request::put(p, Bytes::from_static(b"data"));
        assert_eq!(put.body.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn response_helpers() {
        let r = Response::ok(stream::once(Bytes::from_static(b"xy")))
            .with_header("etag", "abc");
        assert!(r.is_success());
        assert_eq!(r.headers.get("etag"), Some("abc"));
        assert_eq!(r.read_body().unwrap(), "xy");
        assert!(!crate::request::Response {
            status: 404,
            headers: Headers::new(),
            body: stream::empty()
        }
        .is_success());
    }
}
