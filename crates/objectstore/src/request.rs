//! HTTP-shaped requests and responses.
//!
//! Swift is driven through a RESTful HTTP API; Scoop piggybacks pushdown
//! tasks "by piggybacking specific metadata fields in the HTTP GET request".
//! This module models exactly the parts of HTTP the system relies on:
//! methods, headers (case-insensitive), byte ranges and streamed bodies.

use crate::path::ObjectPath;
use bytes::Bytes;
use scoop_common::{stream, ByteStream, Deadline, Result, ScoopError};
use std::collections::BTreeMap;

/// Request methods used by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve an object (optionally a byte range).
    Get,
    /// Store an object.
    Put,
    /// Remove an object.
    Delete,
    /// Retrieve object metadata only.
    Head,
    /// Update object metadata.
    Post,
}

/// An inclusive byte range `[start, end]`, mirroring `Range: bytes=a-b`.
/// `end == None` means "to end of object".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    /// First byte offset (inclusive).
    pub start: u64,
    /// Last byte offset (inclusive), or `None` for EOF.
    pub end: Option<u64>,
}

impl ByteRange {
    /// Parse a `bytes=a-b` / `bytes=a-` header value.
    pub fn parse(header: &str) -> Result<ByteRange> {
        let spec = header
            .strip_prefix("bytes=")
            .ok_or_else(|| ScoopError::InvalidRequest(format!("bad range '{header}'")))?;
        let (a, b) = spec
            .split_once('-')
            .ok_or_else(|| ScoopError::InvalidRequest(format!("bad range '{header}'")))?;
        let start: u64 = a
            .parse()
            .map_err(|_| ScoopError::InvalidRequest(format!("bad range start '{a}'")))?;
        let end = if b.is_empty() {
            None
        } else {
            let e: u64 = b
                .parse()
                .map_err(|_| ScoopError::InvalidRequest(format!("bad range end '{b}'")))?;
            if e < start {
                return Err(ScoopError::InvalidRequest(format!(
                    "range end before start in '{header}'"
                )));
            }
            Some(e)
        };
        Ok(ByteRange { start, end })
    }

    /// Render back to a header value.
    pub fn to_header(self) -> String {
        match self.end {
            Some(e) => format!("bytes={}-{e}", self.start),
            None => format!("bytes={}-", self.start),
        }
    }

    /// Clamp against an object of `len` bytes → half-open `[start, end)`.
    pub fn resolve(self, len: u64) -> (u64, u64) {
        let start = self.start.min(len);
        let end = match self.end {
            // Saturating: `bytes=0-18446744073709551615` is a valid header
            // and must clamp to the object, not overflow-panic.
            Some(e) => e.saturating_add(1).min(len),
            None => len,
        };
        (start, end.max(start))
    }
}

/// Case-insensitive header map (values keep their case).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Headers(BTreeMap<String, String>);

impl Headers {
    /// Empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a header (replacing any previous value).
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.0.insert(name.to_ascii_lowercase(), value.into());
    }

    /// Get a header value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Remove a header, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<String> {
        self.0.remove(&name.to_ascii_lowercase())
    }

    /// True when the header is present.
    pub fn contains(&self, name: &str) -> bool {
        self.0.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterate over `(name, value)` pairs (names lowercased).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// All headers with the given prefix (e.g. `x-object-meta-`).
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        let prefix = prefix.to_ascii_lowercase();
        self.0
            .iter()
            .filter(move |(k, _)| k.starts_with(&prefix))
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// A storage request.
#[derive(Clone)]
pub struct Request {
    /// HTTP-like method.
    pub method: Method,
    /// Target object.
    pub path: ObjectPath,
    /// Request headers (auth token, pushdown metadata, range, user metadata).
    pub headers: Headers,
    /// Body for PUT requests.
    pub body: Option<Bytes>,
    /// Time budget of the query this request serves; every hop (client
    /// dispatch, proxy routing, object server) checks it before working.
    pub deadline: Deadline,
}

impl Request {
    /// Build a GET request.
    pub fn get(path: ObjectPath) -> Request {
        Request {
            method: Method::Get,
            path,
            headers: Headers::new(),
            body: None,
            deadline: Deadline::none(),
        }
    }

    /// Build a PUT request with a body.
    pub fn put(path: ObjectPath, body: Bytes) -> Request {
        Request {
            method: Method::Put,
            path,
            headers: Headers::new(),
            body: Some(body),
            deadline: Deadline::none(),
        }
    }

    /// Build a DELETE request.
    pub fn delete(path: ObjectPath) -> Request {
        Request {
            method: Method::Delete,
            path,
            headers: Headers::new(),
            body: None,
            deadline: Deadline::none(),
        }
    }

    /// Build a HEAD request.
    pub fn head(path: ObjectPath) -> Request {
        Request {
            method: Method::Head,
            path,
            headers: Headers::new(),
            body: None,
            deadline: Deadline::none(),
        }
    }

    /// Attach a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.set(name, value);
        self
    }

    /// Attach a time budget (builder style).
    pub fn with_deadline(mut self, deadline: Deadline) -> Request {
        self.deadline = deadline;
        self
    }

    /// Attach a byte range.
    pub fn with_range(self, range: ByteRange) -> Request {
        self.with_header("range", range.to_header())
    }

    /// Parse the `Range` header if present.
    pub fn range(&self) -> Result<Option<ByteRange>> {
        self.headers.get("range").map(ByteRange::parse).transpose()
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("method", &self.method)
            .field("path", &self.path.to_string())
            .field("headers", &self.headers)
            .field("body_len", &self.body.as_ref().map(Bytes::len))
            .finish()
    }
}

/// A storage response with a streamed body.
pub struct Response {
    /// HTTP-like status code.
    pub status: u16,
    /// Response headers (etag, content-length, metadata, filter stats).
    pub headers: Headers,
    /// Body stream (empty for errors / HEAD / PUT acks).
    pub body: ByteStream,
}

impl Response {
    /// 200 response with a streamed body.
    pub fn ok(body: ByteStream) -> Response {
        Response { status: 200, headers: Headers::new(), body }
    }

    /// 201 created (PUT ack).
    pub fn created() -> Response {
        Response { status: 201, headers: Headers::new(), body: stream::empty() }
    }

    /// 204 no content (DELETE ack, HEAD).
    pub fn no_content() -> Response {
        Response { status: 204, headers: Headers::new(), body: stream::empty() }
    }

    /// 503 service unavailable (overload shedding).
    pub fn unavailable() -> Response {
        Response { status: 503, headers: Headers::new(), body: stream::empty() }
    }

    /// Attach a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.set(name, value);
        self
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Drain the body into one buffer (test/convenience helper).
    pub fn read_body(self) -> Result<Bytes> {
        stream::collect(self.body)
    }
}

impl std::fmt::Debug for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Response")
            .field("status", &self.status)
            .field("headers", &self.headers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_range_parse_and_render() {
        let r = ByteRange::parse("bytes=10-20").unwrap();
        assert_eq!(r, ByteRange { start: 10, end: Some(20) });
        assert_eq!(r.to_header(), "bytes=10-20");
        let open = ByteRange::parse("bytes=5-").unwrap();
        assert_eq!(open.end, None);
        assert!(ByteRange::parse("10-20").is_err());
        assert!(ByteRange::parse("bytes=20-10").is_err());
        assert!(ByteRange::parse("bytes=x-2").is_err());
    }

    #[test]
    fn byte_range_resolution_clamps() {
        assert_eq!(ByteRange { start: 0, end: Some(9) }.resolve(100), (0, 10));
        assert_eq!(ByteRange { start: 0, end: None }.resolve(100), (0, 100));
        assert_eq!(ByteRange { start: 50, end: Some(500) }.resolve(100), (50, 100));
        assert_eq!(ByteRange { start: 200, end: None }.resolve(100), (100, 100));
    }

    #[test]
    fn byte_range_resolution_survives_u64_max() {
        // Regression: `end + 1` used to overflow-panic on the largest legal
        // header value, letting one request kill an object server thread.
        let r = ByteRange::parse("bytes=0-18446744073709551615").unwrap();
        assert_eq!(r.resolve(100), (0, 100));
        assert_eq!(ByteRange { start: 5, end: Some(u64::MAX) }.resolve(10), (5, 10));
    }

    #[test]
    fn headers_are_case_insensitive() {
        let mut h = Headers::new();
        h.set("X-Auth-Token", "tok");
        assert_eq!(h.get("x-auth-token"), Some("tok"));
        assert!(h.contains("X-AUTH-TOKEN"));
        h.set("X-Object-Meta-Owner", "gp");
        h.set("X-Object-Meta-Kind", "csv");
        assert_eq!(h.with_prefix("X-Object-Meta-").count(), 2);
        assert_eq!(h.remove("x-auth-token"), Some("tok".into()));
        assert!(!h.contains("x-auth-token"));
    }

    #[test]
    fn request_builders() {
        let p = ObjectPath::new("a", "c", "o").unwrap();
        let req = Request::get(p.clone())
            .with_range(ByteRange { start: 0, end: Some(99) })
            .with_header("x-run-storlet", "csvfilter");
        assert_eq!(req.range().unwrap().unwrap().end, Some(99));
        assert_eq!(req.headers.get("x-run-storlet"), Some("csvfilter"));
        let put = Request::put(p, Bytes::from_static(b"data"));
        assert_eq!(put.body.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn response_helpers() {
        let r = Response::ok(stream::once(Bytes::from_static(b"xy")))
            .with_header("etag", "abc");
        assert!(r.is_success());
        assert_eq!(r.headers.get("etag"), Some("abc"));
        assert_eq!(r.read_body().unwrap(), "xy");
        assert!(!crate::request::Response {
            status: 404,
            headers: Headers::new(),
            body: stream::empty()
        }
        .is_success());
    }
}
