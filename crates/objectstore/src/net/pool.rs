//! The client-side pooled HTTP/1.1 transport.
//!
//! [`HttpPool`] owns keep-alive connections to one TCP front end
//! ([`super::server::NetServer`]) and exchanges [`Request`]/[`Response`]
//! frames over them. Pool invariants (DESIGN.md §13):
//!
//! * **checkout/checkin** — a connection is either in the idle list or
//!   owned by exactly one in-flight exchange; lazy response bodies carry
//!   their connection and return it only after the chunked terminator
//!   proves the frame ended exactly where it promised;
//! * **poisoning** — any wire error, truncated frame, or body dropped
//!   mid-stream closes the connection instead of pooling it, so one bad
//!   socket can never serve a later request a stale or misframed response;
//! * **idle reaping** — idle connections older than the configured window
//!   are closed at the next checkout (and via [`HttpPool::reap_idle`]), so
//!   a burst of queries does not leak sockets forever;
//! * **bounded reads** — every dialed socket gets a read/write timeout
//!   before its first use, tightened per read to the request's remaining
//!   [`Deadline`] budget. A read timeout with the budget exhausted is the
//!   *deadline* error (non-retryable, fail fast); with budget left it is
//!   retryable I/O — the peer may just be slow.
//!
//! Transport-level retry: if a *reused* keep-alive connection fails before
//! a response head parses, the request is re-sent once on a fresh
//! connection — but only for idempotent GET/HEAD. A PUT failure surfaces as
//! retryable I/O to the caller, whose re-dispatch rides the
//! `x-upload-token` dedup, so a replayed PUT can never double-store.

use crate::net::wire;
use crate::request::{Headers, Method, Request, Response};
use bytes::Bytes;
use parking_lot::Mutex;
use scoop_common::telemetry::{self, names};
use scoop_common::{headers, ByteStream, Deadline, Result, ScoopError};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pool tunables.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Idle keep-alive connections retained per pool.
    pub max_idle: usize,
    /// Idle age beyond which a pooled connection is reaped.
    pub idle_timeout: Duration,
    /// Dial timeout.
    pub connect_timeout: Duration,
    /// Per-read/-write socket timeout (the floor under every stall).
    pub io_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_idle: 8,
            idle_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// Point-in-time pool counters, for tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Sockets currently open (idle + in flight).
    pub open: i64,
    /// Idle connections in the pool right now.
    pub idle: usize,
    /// Connections currently checked out serving an exchange.
    pub in_flight: i64,
    /// Fresh dials performed.
    pub dials: u64,
    /// Exchanges served over a reused keep-alive connection.
    pub reuses: u64,
    /// Connections closed instead of pooled (stale, poisoned, over cap).
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct PoolCounters {
    open: AtomicI64,
    in_flight: AtomicI64,
    dials: AtomicU64,
    reuses: AtomicU64,
    evictions: AtomicU64,
}

/// One pooled connection: buffered read half + write half of the same
/// socket. Dropping it closes the socket and settles the open-count (and
/// the in-flight level, unless the connection had already gone idle).
struct Conn {
    write: TcpStream,
    reader: wire::FrameReader<TcpStream>,
    idle_since: Instant,
    reused: bool,
    /// Checked out (owned by an exchange) rather than parked idle. Kept on
    /// the connection so *every* way out — checkin, evict, or a plain drop
    /// on an error path — settles the in-flight gauge exactly once.
    in_flight: bool,
    counters: Arc<PoolCounters>,
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.counters.open.fetch_sub(1, Ordering::Relaxed);
        telemetry::gauge(names::NET_POOL_OPEN).sub(1);
        if self.in_flight {
            self.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
            telemetry::gauge(names::NET_POOL_IN_FLIGHT).sub(1);
        }
    }
}

impl Conn {
    /// Bound the next reads/writes by the tighter of the io timeout and the
    /// request's remaining budget. An already-exhausted budget fails here,
    /// before any syscall, with the non-retryable deadline error.
    fn tighten(&self, io_timeout: Duration, deadline: Deadline, label: &str) -> Result<()> {
        deadline.check(label)?;
        let window = match deadline.remaining() {
            Some(rem) => rem.min(io_timeout).max(Duration::from_millis(1)),
            None => io_timeout,
        };
        self.write.set_read_timeout(Some(window)).map_err(ScoopError::Io)?;
        self.write.set_write_timeout(Some(window)).map_err(ScoopError::Io)?;
        Ok(())
    }
}

/// Fold the server-side spans a finished response shipped in its
/// `x-scoop-server-spans` trailer into the local trace store, tagged remote
/// and skew-corrected against the exchange window `[window_start_us, now]`.
/// Always *takes* the trailer (even untraced or undecodable) so stale spans
/// can never leak onto a later exchange of a pooled connection; spans are
/// best-effort observability, so a bad trailer is dropped, never an error.
fn merge_server_spans(conn: &mut Conn, trace: Option<&str>, window_start_us: u64) {
    let Some(value) = conn.reader.take_server_spans() else { return };
    let Some(trace) = trace else { return };
    if let Ok(spans) = telemetry::decode_spans(&value) {
        telemetry::merge_remote_spans(trace, spans, window_start_us, telemetry::now_us());
    }
}

/// Map a failed read after `deadline` may have lapsed: a timeout with the
/// budget exhausted is the budget's fault, not the network's, and must not
/// be retried (satellite: lint rule 3 requires retry loops to keep
/// consulting the budget — this is where the wire transport does so).
fn map_wire_err(e: ScoopError, deadline: Deadline, what: &str) -> ScoopError {
    if deadline.is_set() && deadline.expired() {
        ScoopError::DeadlineExceeded(format!("{what}: budget exhausted"))
    } else {
        e
    }
}

/// A pool of keep-alive connections to one server address.
pub struct HttpPool {
    addr: SocketAddr,
    cfg: PoolConfig,
    idle: Mutex<Vec<Conn>>,
    counters: Arc<PoolCounters>,
}

impl HttpPool {
    /// Create an empty pool for `addr`.
    pub fn new(addr: SocketAddr, cfg: PoolConfig) -> Arc<HttpPool> {
        Arc::new(HttpPool {
            addr,
            cfg,
            idle: Mutex::new(Vec::new()),
            counters: Arc::new(PoolCounters::default()),
        })
    }

    /// The server address this pool dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters snapshot.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            open: self.counters.open.load(Ordering::Relaxed),
            idle: self.idle.lock().len(),
            in_flight: self.counters.in_flight.load(Ordering::Relaxed),
            dials: self.counters.dials.load(Ordering::Relaxed),
            reuses: self.counters.reuses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Close idle connections older than the idle window.
    pub fn reap_idle(&self) {
        let cutoff = self.cfg.idle_timeout;
        let mut idle = self.idle.lock();
        let before = idle.len();
        idle.retain(|c| c.idle_since.elapsed() < cutoff);
        let reaped = before - idle.len();
        if reaped > 0 {
            self.counters.evictions.fetch_add(reaped as u64, Ordering::Relaxed);
            telemetry::counter(names::NET_POOL_EVICTIONS).add(reaped as u64);
            telemetry::counter(names::NET_POOL_IDLE_REAPS).add(reaped as u64);
            telemetry::gauge(names::NET_POOL_IDLE).sub(reaped as i64);
        }
    }

    /// Take a connection: freshest idle one, else a new dial. The full wait
    /// (reap + idle pop, or the dial) feeds the checkout-wait histogram;
    /// the connection counts in flight until it is checked in or dies.
    fn checkout(&self) -> Result<Conn> {
        let started = Instant::now();
        let mut conn = self.checkout_inner()?;
        telemetry::histogram(names::NET_POOL_CHECKOUT_WAIT_US)
            .observe_us(started.elapsed().as_micros() as u64);
        conn.in_flight = true;
        self.counters.in_flight.fetch_add(1, Ordering::Relaxed);
        telemetry::gauge(names::NET_POOL_IN_FLIGHT).add(1);
        Ok(conn)
    }

    fn checkout_inner(&self) -> Result<Conn> {
        self.reap_idle();
        if let Some(mut conn) = self.idle.lock().pop() {
            telemetry::gauge(names::NET_POOL_IDLE).sub(1);
            self.counters.reuses.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(names::NET_POOL_REUSES).inc();
            conn.reused = true;
            return Ok(conn);
        }
        self.dial()
    }

    /// Dial a fresh connection; timeouts are configured before first use,
    /// so no read on this socket can block unboundedly.
    fn dial(&self) -> Result<Conn> {
        let stream =
            TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout).map_err(ScoopError::Io)?;
        stream.set_read_timeout(Some(self.cfg.io_timeout)).map_err(ScoopError::Io)?;
        stream.set_write_timeout(Some(self.cfg.io_timeout)).map_err(ScoopError::Io)?;
        stream.set_nodelay(true).map_err(ScoopError::Io)?;
        let write = stream.try_clone().map_err(ScoopError::Io)?;
        self.counters.dials.fetch_add(1, Ordering::Relaxed);
        self.counters.open.fetch_add(1, Ordering::Relaxed);
        telemetry::counter(names::NET_POOL_DIALS).inc();
        telemetry::gauge(names::NET_POOL_OPEN).add(1);
        Ok(Conn {
            write,
            reader: wire::FrameReader::new(stream),
            idle_since: Instant::now(),
            reused: false,
            in_flight: false,
            counters: self.counters.clone(),
        })
    }

    /// Return a connection to the idle list — only at a clean frame
    /// boundary; anything else is poisoned and closed instead.
    fn checkin(&self, mut conn: Conn) {
        if !conn.reader.is_drained() {
            self.evict(conn);
            return;
        }
        let mut idle = self.idle.lock();
        if idle.len() >= self.cfg.max_idle {
            drop(idle);
            self.evict(conn);
            return;
        }
        conn.idle_since = Instant::now();
        if conn.in_flight {
            conn.in_flight = false;
            self.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
            telemetry::gauge(names::NET_POOL_IN_FLIGHT).sub(1);
        }
        idle.push(conn);
        telemetry::gauge(names::NET_POOL_IDLE).add(1);
    }

    fn evict(&self, conn: Conn) {
        self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        telemetry::counter(names::NET_POOL_EVICTIONS).inc();
        drop(conn);
    }

    /// Exchange one request for one response over the pool.
    ///
    /// Reused-connection failures before a parsed response head are re-sent
    /// once on a fresh dial — for idempotent GET/HEAD only. Everything else
    /// surfaces to the caller's retry policy with the taxonomy intact.
    pub fn send(self: &Arc<Self>, req: &Request) -> Result<Response> {
        let idempotent = matches!(req.method, Method::Get | Method::Head);
        let mut attempt = 0u32;
        loop {
            let conn = self.checkout()?;
            let was_reused = conn.reused;
            match self.exchange(conn, req) {
                Ok(resp) => return Ok(resp),
                Err(Exchange::NoResponse(e)) if was_reused && idempotent && attempt == 0 => {
                    // The keep-alive peer hung up (or reset) before
                    // answering: a stale pooled socket, not a request
                    // problem. One fresh dial, then give up to the caller.
                    attempt += 1;
                    let _ = e;
                }
                Err(Exchange::NoResponse(e)) | Err(Exchange::Fatal(e)) => return Err(e),
            }
        }
    }

    /// Run one request/response exchange on `conn`.
    fn exchange(self: &Arc<Self>, mut conn: Conn, req: &Request) -> std::result::Result<Response, Exchange> {
        let deadline = req.deadline;
        // The observation window for remote-span skew correction opens
        // before the request hits the wire — every server-side span of this
        // exchange must land inside it.
        let window_start_us = telemetry::now_us();
        let trace = req.headers.get(headers::TRACE).map(str::to_string);
        conn.tighten(self.cfg.io_timeout, deadline, "pool dispatch").map_err(Exchange::Fatal)?;
        let frame = wire::encode_request(req).map_err(Exchange::Fatal)?;
        if let Err(e) = conn.write.write_all(&frame).and_then(|_| conn.write.flush()) {
            return Err(Exchange::NoResponse(map_wire_err(
                ScoopError::Io(e),
                deadline,
                "request write",
            )));
        }
        let head = match conn.reader.read_head() {
            Ok(Some(head)) => head,
            Ok(None) => {
                return Err(Exchange::NoResponse(ScoopError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "connection closed before response",
                ))))
            }
            Err(e) => {
                return Err(Exchange::NoResponse(map_wire_err(e, deadline, "response head read")))
            }
        };
        let wire::StartLine::Status(status) = head.start else {
            return Err(Exchange::Fatal(ScoopError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed frame: request line where a status was expected",
            ))));
        };
        let framing =
            wire::FrameReader::<TcpStream>::body_framing(&head).map_err(Exchange::Fatal)?;

        // Error responses carry the exact error kind; rebuild the variant so
        // the caller's taxonomy (retryable vs not) is transport-independent.
        if let Some(kind) = head.headers.get(headers::ERROR_KIND).map(str::to_string) {
            let body = self
                .drain_body(&mut conn, framing, deadline)
                .map_err(Exchange::Fatal)?;
            merge_server_spans(&mut conn, trace.as_deref(), window_start_us);
            self.checkin(conn);
            let msg = String::from_utf8_lossy(&body).into_owned();
            return Err(Exchange::Fatal(wire::error_from_kind(&kind, msg)));
        }

        if (status == 200 || status == 206) && framing == wire::BodyFraming::Chunked {
            // Stream large bodies lazily; the connection rides inside the
            // stream and is pooled again at the chunked terminator (which is
            // also where the span trailer arrives and merges).
            let body: ByteStream = Box::new(PooledBody {
                pool: self.clone(),
                conn: Some(conn),
                io_timeout: self.cfg.io_timeout,
                deadline,
                trace,
                window_start_us,
                done: false,
            });
            return Ok(Response { status, headers: head.headers, body });
        }

        // Acks, redirections, 416s, HEAD responses: tiny bodies, drained
        // eagerly so the connection pools immediately even if the caller
        // never touches the body.
        let body = self
            .drain_body(&mut conn, framing, deadline)
            .map_err(Exchange::Fatal)?;
        merge_server_spans(&mut conn, trace.as_deref(), window_start_us);
        self.checkin(conn);
        Ok(wire::response_from_parts(status, head.headers, body))
    }

    /// Read a whole response body off `conn` eagerly.
    fn drain_body(
        &self,
        conn: &mut Conn,
        framing: wire::BodyFraming,
        deadline: Deadline,
    ) -> Result<Bytes> {
        match framing {
            wire::BodyFraming::None => Ok(Bytes::new()),
            wire::BodyFraming::ContentLength(n) => conn
                .reader
                .read_exact_body(n)
                .map_err(|e| map_wire_err(e, deadline, "response body read")),
            wire::BodyFraming::Chunked => {
                let mut out: Vec<u8> = Vec::new();
                loop {
                    match conn.reader.read_chunk() {
                        Ok(Some(chunk)) => out.extend_from_slice(&chunk),
                        Ok(None) => return Ok(Bytes::from(out)),
                        Err(e) => return Err(map_wire_err(e, deadline, "response body read")),
                    }
                }
            }
        }
    }

    /// Pipeline a batch of idempotent GET/HEAD requests on one connection:
    /// all frames are written back-to-back, then the responses are read in
    /// order. One round trip of latency for the whole batch — the ranged
    /// multi-GET pattern the connector uses for record-aligned splits.
    pub fn send_pipelined(self: &Arc<Self>, reqs: &[Request]) -> Result<Vec<Response>> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        if reqs.iter().any(|r| !matches!(r.method, Method::Get | Method::Head)) {
            return Err(ScoopError::InvalidRequest(
                "pipelining is restricted to idempotent GET/HEAD".into(),
            ));
        }
        let deadline = reqs.iter().fold(Deadline::none(), |d, r| d.earliest(r.deadline));
        let window_start_us = telemetry::now_us();
        let mut conn = self.checkout()?;
        conn.tighten(self.cfg.io_timeout, deadline, "pipelined dispatch")?;
        let mut frames = Vec::new();
        for req in reqs {
            frames.extend_from_slice(&wire::encode_request(req)?);
        }
        conn.write
            .write_all(&frames)
            .and_then(|_| conn.write.flush())
            .map_err(|e| map_wire_err(ScoopError::Io(e), deadline, "pipelined write"))?;

        let mut responses = Vec::with_capacity(reqs.len());
        for req in reqs {
            conn.tighten(self.cfg.io_timeout, req.deadline, "pipelined read")?;
            let head = match conn.reader.read_head() {
                Ok(Some(head)) => head,
                Ok(None) => {
                    return Err(ScoopError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "connection closed mid-pipeline",
                    )))
                }
                Err(e) => return Err(map_wire_err(e, req.deadline, "pipelined head read")),
            };
            let wire::StartLine::Status(status) = head.start else {
                return Err(ScoopError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "malformed frame: request line where a status was expected",
                )));
            };
            let framing = wire::FrameReader::<TcpStream>::body_framing(&head)?;
            let body = self.drain_body(&mut conn, framing, req.deadline)?;
            merge_server_spans(
                &mut conn,
                req.headers.get(headers::TRACE),
                window_start_us,
            );
            if let Some(kind) = head.headers.get(headers::ERROR_KIND) {
                return Err(wire::error_from_kind(
                    kind,
                    String::from_utf8_lossy(&body).into_owned(),
                ));
            }
            responses.push(wire::response_from_parts(status, head.headers, body));
        }
        self.checkin(conn);
        Ok(responses)
    }

    /// Send a non-object request (container ops, `/info`) built from raw
    /// parts; the response body is drained eagerly.
    pub fn send_raw(
        self: &Arc<Self>,
        method: Method,
        target: &str,
        headers_map: Headers,
        deadline: Deadline,
    ) -> Result<(u16, Headers, Bytes)> {
        let window_start_us = telemetry::now_us();
        let mut conn = self.checkout()?;
        conn.tighten(self.cfg.io_timeout, deadline, "raw dispatch")?;
        let frame = wire::encode_raw_request(method, target, &headers_map, None, deadline)?;
        conn.write
            .write_all(&frame)
            .and_then(|_| conn.write.flush())
            .map_err(|e| map_wire_err(ScoopError::Io(e), deadline, "raw write"))?;
        let head = match conn.reader.read_head() {
            Ok(Some(head)) => head,
            Ok(None) => {
                return Err(ScoopError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "connection closed before response",
                )))
            }
            Err(e) => return Err(map_wire_err(e, deadline, "raw head read")),
        };
        let wire::StartLine::Status(status) = head.start else {
            return Err(ScoopError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed frame: request line where a status was expected",
            )));
        };
        let framing = wire::FrameReader::<TcpStream>::body_framing(&head)?;
        let body = self.drain_body(&mut conn, framing, deadline)?;
        merge_server_spans(&mut conn, headers_map.get(headers::TRACE), window_start_us);
        self.checkin(conn);
        if let Some(kind) = head.headers.get(headers::ERROR_KIND) {
            return Err(wire::error_from_kind(
                kind,
                String::from_utf8_lossy(&body).into_owned(),
            ));
        }
        Ok((status, head.headers, body))
    }
}

/// How an exchange failed: before any response byte was believed, or after.
enum Exchange {
    /// No response head parsed — safe to re-send idempotent requests.
    NoResponse(ScoopError),
    /// The failure is authoritative; surface it.
    Fatal(ScoopError),
}

/// A lazily-read chunked response body that owns its pooled connection.
/// Completing the frame returns the connection to the pool; any error or an
/// early drop closes it (poisoned — it is mid-frame and unusable).
struct PooledBody {
    pool: Arc<HttpPool>,
    conn: Option<Conn>,
    io_timeout: Duration,
    deadline: Deadline,
    /// Trace of the request this body answers, for the span trailer merge.
    trace: Option<String>,
    /// When the exchange's request went out (`telemetry::now_us` clock).
    window_start_us: u64,
    done: bool,
}

impl Iterator for PooledBody {
    type Item = Result<Bytes>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let conn = self.conn.as_mut()?;
        if let Err(e) = conn.tighten(self.io_timeout, self.deadline, "body read") {
            // Budget lapsed between chunks: surface the deadline error and
            // poison the connection (it is mid-frame). Any spans a trailer
            // already delivered still belong to this trace — merge before
            // the eviction discards the reader.
            self.done = true;
            if let Some(mut conn) = self.conn.take() {
                merge_server_spans(&mut conn, self.trace.as_deref(), self.window_start_us);
                self.pool.evict(conn);
            }
            return Some(Err(e));
        }
        match conn.reader.read_chunk() {
            Ok(Some(chunk)) => Some(Ok(chunk)),
            Ok(None) => {
                self.done = true;
                if let Some(mut conn) = self.conn.take() {
                    merge_server_spans(&mut conn, self.trace.as_deref(), self.window_start_us);
                    self.pool.checkin(conn);
                }
                None
            }
            Err(e) => {
                self.done = true;
                if let Some(mut conn) = self.conn.take() {
                    // A stream-error trailer still carried the spans the
                    // server recorded before the body died — merge them
                    // even though the connection itself is poisoned.
                    merge_server_spans(&mut conn, self.trace.as_deref(), self.window_start_us);
                    self.pool.evict(conn);
                }
                Some(Err(map_wire_err(e, self.deadline, "response body read")))
            }
        }
    }
}
