//! HTTP/1.1 framing of [`Request`]/[`Response`] — the wire codec.
//!
//! The codec serializes the *existing* request/response types byte-for-byte:
//! every header (including the `x-scoop-*` family) crosses the socket
//! unchanged, so trace propagation, hedging directives, storlet pushdown
//! metadata and degradation markers ride real frames exactly as they rode
//! in-process calls. Framing rules (DESIGN.md §13):
//!
//! * **Requests** use `Content-Length` framing: the encoder derives the
//!   header from the body it actually writes (never trusting a stale map
//!   entry), so a frame can never promise bytes it does not carry.
//! * **Responses** use `chunked` transfer-encoding: response bodies are
//!   lazy [`ByteStream`]s whose length is unknowable without draining (a
//!   storlet may filter mid-flight), and the chunk terminator doubles as an
//!   end-of-body marker that lets the client detect truncation on any
//!   `Content-Length`-less stream. The decoder accepts both framings.
//! * **Deadlines** cross as a millisecond budget (`x-scoop-deadline-ms`)
//!   computed from [`Deadline::remaining`] at encode time; an `Instant`
//!   cannot cross a process boundary, a budget can.
//! * **Errors** cross as a status + `x-scoop-error: <kind>` header, and the
//!   client rebuilds the exact [`ScoopError`] variant — the
//!   retryable/non-retryable taxonomy survives the wire bit-identically.
//!
//! Framing-only headers (`content-length` on requests, `transfer-encoding`
//! on responses, the deadline budget) are owned by the codec: the encoder
//! skips map copies and writes canonical values, so
//! `encode → decode → encode` is byte-identical (the round-trip property
//! `tests/wire_prop.rs` holds the codec to).

use crate::path::ObjectPath;
use crate::request::{Headers, Method, Request, Response};
use bytes::Bytes;
use scoop_common::{headers, stream, ByteStream, Deadline, Result, ScoopError};
use std::io::{Read, Write};
use std::time::Duration;

/// Cap on the head (start line + headers) of any frame.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Cap on a request body; a PUT larger than this is rejected at the frame
/// layer before it can balloon server memory.
pub const MAX_BODY_BYTES: usize = 256 * 1024 * 1024;
/// Cap on a single response chunk accepted by the decoder.
pub const MAX_CHUNK_BYTES: usize = 16 * 1024 * 1024;

fn malformed(what: &str) -> ScoopError {
    // A garbage or truncated frame is a transport-level event: the bytes on
    // one connection are suspect, not the request itself, so the error is
    // retryable I/O and a fresh connection may well succeed.
    ScoopError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed frame: {what}"),
    ))
}

// ---------------------------------------------------------------------------
// Percent-encoding of URL path segments
// ---------------------------------------------------------------------------

fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~')
}

/// Percent-encode one path segment (object names may hold spaces, `%`, any
/// non-control byte).
pub fn encode_segment(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if is_unreserved(b) {
            out.push(b as char);
        } else {
            out.push('%');
            let hex = b"0123456789ABCDEF";
            out.push(hex[(b >> 4) as usize] as char);
            out.push(hex[(b & 0xF) as usize] as char);
        }
    }
    out
}

/// Decode a percent-encoded path segment.
pub fn decode_segment(s: &str) -> Result<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'%' {
            let hi = bytes.get(i + 1).and_then(|c| (*c as char).to_digit(16));
            let lo = bytes.get(i + 2).and_then(|c| (*c as char).to_digit(16));
            match (hi, lo) {
                (Some(h), Some(l)) => {
                    out.push((h * 16 + l) as u8);
                    i += 3;
                }
                _ => return Err(malformed("bad percent escape in path")),
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| malformed("path is not UTF-8"))
}

/// Encode `/account/container/object` with each segment escaped (object
/// names may contain `/`, which separates pseudo-directory segments and is
/// kept literal).
pub fn encode_path(path: &ObjectPath) -> String {
    let object = path
        .object
        .split('/')
        .map(encode_segment)
        .collect::<Vec<_>>()
        .join("/");
    format!(
        "/{}/{}/{object}",
        encode_segment(&path.account),
        encode_segment(&path.container)
    )
}

// ---------------------------------------------------------------------------
// Methods, statuses, error kinds
// ---------------------------------------------------------------------------

/// Wire name of a method.
pub fn method_name(m: Method) -> &'static str {
    match m {
        Method::Get => "GET",
        Method::Put => "PUT",
        Method::Delete => "DELETE",
        Method::Head => "HEAD",
        Method::Post => "POST",
    }
}

/// Parse a wire method name.
pub fn parse_method(s: &str) -> Result<Method> {
    match s {
        "GET" => Ok(Method::Get),
        "PUT" => Ok(Method::Put),
        "DELETE" => Ok(Method::Delete),
        "HEAD" => Ok(Method::Head),
        "POST" => Ok(Method::Post),
        other => Err(ScoopError::InvalidRequest(format!("unknown method '{other}'"))),
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        206 => "Partial Content",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        409 => "Conflict",
        416 => "Range Not Satisfiable",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// HTTP status carried by an error response for `kind`.
pub fn status_for_kind(kind: &str) -> u16 {
    match kind {
        "not_found" => 404,
        "unauthorized" => 401,
        "invalid_request" => 400,
        "conflict" => 409,
        "deadline" => 504,
        "unsupported" => 501,
        "io" | "compute" => 502,
        _ => 500,
    }
}

/// Rebuild the [`ScoopError`] variant named by an `x-scoop-error` kind.
/// Unknown kinds degrade to `Internal` (non-retryable — the conservative
/// default for an error the peer could not even name).
pub fn error_from_kind(kind: &str, msg: String) -> ScoopError {
    match kind {
        "io" => ScoopError::Io(std::io::Error::other(msg)),
        "not_found" => ScoopError::NotFound(msg),
        "conflict" => ScoopError::Conflict(msg),
        "invalid_request" => ScoopError::InvalidRequest(msg),
        "unauthorized" => ScoopError::Unauthorized(msg),
        "csv" => ScoopError::Csv(msg),
        "sql" => ScoopError::Sql(msg),
        "storlet" => ScoopError::Storlet(msg),
        "columnar" => ScoopError::Columnar(msg),
        "corrupt" => ScoopError::Corrupt(msg),
        "compute" => ScoopError::Compute(msg),
        "unsupported" => ScoopError::Unsupported(msg),
        "deadline" => ScoopError::DeadlineExceeded(msg),
        _ => ScoopError::Internal(msg),
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn check_header_value(name: &str, value: &str) -> Result<()> {
    if value.bytes().any(|b| b == b'\r' || b == b'\n' || b == 0) {
        return Err(ScoopError::InvalidRequest(format!(
            "header '{name}' value contains control bytes"
        )));
    }
    Ok(())
}

/// Headers the request/response codec owns; map copies are skipped on
/// encode and canonical values written instead.
fn is_request_framing_header(name: &str) -> bool {
    name == "content-length" || name == headers::DEADLINE_MS
}

/// Serialize a request with `Content-Length` framing. The deadline crosses
/// as a remaining-budget header; framing headers in the map are replaced by
/// canonical values derived from the actual body and deadline.
pub fn encode_request(req: &Request) -> Result<Vec<u8>> {
    encode_raw_request(
        req.method,
        &encode_path(&req.path),
        &req.headers,
        req.body.as_ref(),
        req.deadline,
    )
}

/// Serialize a request frame from raw parts — the shared encoder behind
/// [`encode_request`] and the non-object endpoints (container ops, `/info`)
/// whose targets are not three-segment [`ObjectPath`]s. `target` must
/// already be percent-encoded.
pub fn encode_raw_request(
    method: Method,
    target: &str,
    headers_map: &Headers,
    body: Option<&Bytes>,
    deadline: Deadline,
) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(256 + body.map_or(0, |b| b.len()));
    out.extend_from_slice(method_name(method).as_bytes());
    out.push(b' ');
    out.extend_from_slice(target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\n");
    for (name, value) in headers_map.iter() {
        if is_request_framing_header(name) {
            continue;
        }
        check_header_value(name, value)?;
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    if let Some(rem) = deadline.remaining() {
        out.extend_from_slice(headers::DEADLINE_MS.as_bytes());
        out.extend_from_slice(format!(": {}\r\n", rem.as_millis()).as_bytes());
    }
    if let Some(body) = body {
        out.extend_from_slice(format!("content-length: {}\r\n", body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    if let Some(body) = body {
        out.extend_from_slice(body);
    }
    Ok(out)
}

/// Serialize the head of a chunked response; the body follows via
/// [`write_chunk`] / [`finish_chunks`].
pub fn encode_response_head(status: u16, headers_map: &Headers) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(format!("HTTP/1.1 {status} {}\r\n", reason(status)).as_bytes());
    for (name, value) in headers_map.iter() {
        if name == "transfer-encoding" {
            continue;
        }
        check_header_value(name, value)?;
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"transfer-encoding: chunked\r\n\r\n");
    Ok(out)
}

/// Write one non-empty body chunk. Empty slices are skipped — an empty
/// chunk is the terminator in chunked framing, and a stream item must never
/// end the body early.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")
}

/// Terminate a chunked body.
pub fn finish_chunks(w: &mut impl Write) -> std::io::Result<()> {
    w.write_all(b"0\r\n\r\n")
}

/// Terminate a chunked body with trailer lines. The trailer slot is the
/// only part of a frame that can still carry information discovered while
/// the body streamed: a mid-stream error's kind/message, and the
/// server-side spans of the request's trace (`x-scoop-server-spans`) —
/// those only finish once the body has, so they cannot ride the head.
pub fn finish_chunks_with_trailers(
    w: &mut impl Write,
    trailers: &[(&str, String)],
) -> std::io::Result<()> {
    w.write_all(b"0\r\n")?;
    for (name, value) in trailers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")
}

/// The `x-scoop-stream-error` trailer line for `err` (control bytes in the
/// message squashed so the value stays one line).
pub fn stream_error_trailer(err: &ScoopError) -> (&'static str, String) {
    let msg: String = err
        .to_string()
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect();
    (headers::STREAM_ERROR, format!("{} {}", err.kind(), msg))
}

/// Terminate a chunked body with a mid-stream error trailer. The response
/// head (status, headers) went out before the body failed; the trailer is
/// the only slot left in the frame that can still carry the error's kind
/// and message to the peer.
pub fn finish_chunks_with_error(w: &mut impl Write, err: &ScoopError) -> std::io::Result<()> {
    finish_chunks_with_trailers(w, &[stream_error_trailer(err)])
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A parsed frame head: the start line plus headers.
#[derive(Debug)]
pub enum StartLine {
    /// A request frame: method + percent-encoded target.
    Request {
        /// Parsed method.
        method: Method,
        /// Raw (still-encoded) target path.
        target: String,
    },
    /// A response frame: status code.
    Status(u16),
}

/// Head of a decoded frame.
#[derive(Debug)]
pub struct Head {
    /// Start line.
    pub start: StartLine,
    /// Header map (names lowercased by [`Headers::set`]). Framing-only
    /// headers (`transfer-encoding`) are stripped by the decoder — a
    /// response's `content-length` is a *semantic* header (object size) and
    /// stays.
    pub headers: Headers,
    /// Whether the frame declared `transfer-encoding: chunked`.
    chunked: bool,
}

/// How the body of a decoded frame is delimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// No body follows the head.
    None,
    /// Exactly this many bytes follow.
    ContentLength(usize),
    /// Chunked transfer-encoding follows.
    Chunked,
}

/// Incremental frame reader over any byte stream. Keeps leftover bytes
/// across frames, so back-to-back (pipelined) responses on one connection
/// decode cleanly; reads from the underlying stream are buffered in
/// `chunk`-sized slabs.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    pos: usize,
    /// Raw `x-scoop-server-spans` trailer value of the most recently
    /// terminated chunked body, parked for [`Self::take_server_spans`].
    server_spans: Option<String>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader { inner, buf: Vec::new(), pos: 0, server_spans: None }
    }

    /// Take the `x-scoop-server-spans` trailer value the last chunked body
    /// ended with, if any. Set whether the body terminated cleanly or with
    /// a stream-error trailer — a failed exchange still ships the spans the
    /// server recorded on the way down.
    pub fn take_server_spans(&mut self) -> Option<String> {
        self.server_spans.take()
    }

    /// The wrapped stream (buffer is discarded — only safe between frames
    /// when the caller knows nothing was pipelined behind the last one).
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Mutable access to the wrapped stream (e.g. to retune timeouts
    /// between frames). The frame buffer is untouched.
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// True when no leftover bytes are buffered (the connection is at a
    /// clean frame boundary and safe to pool).
    pub fn is_drained(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Pull more bytes from the stream; `Ok(0)` at EOF.
    fn fill(&mut self) -> std::io::Result<usize> {
        self.compact();
        let mut chunk = [0u8; 8 * 1024];
        let n = self.inner.read(&mut chunk)?;
        self.buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
        Ok(n)
    }

    /// Read until the `\r\n\r\n` head terminator; `Ok(None)` on clean EOF
    /// before any byte (the peer closed an idle connection).
    fn read_head_bytes(&mut self) -> Result<Option<Vec<u8>>> {
        loop {
            let window = self.buf.get(self.pos..).unwrap_or_default();
            if let Some(end) = find_head_end(window) {
                let head = window.get(..end).unwrap_or_default().to_vec();
                self.pos += end + 4;
                return Ok(Some(head));
            }
            if window.len() > MAX_HEAD_BYTES {
                return Err(malformed("frame head exceeds cap"));
            }
            let had = self.buf.len() - self.pos;
            if self.fill().map_err(ScoopError::Io)? == 0 {
                if had == 0 {
                    return Ok(None);
                }
                return Err(malformed("EOF inside frame head"));
            }
        }
    }

    /// Decode a frame head. `Ok(None)` when the peer closed cleanly between
    /// frames.
    pub fn read_head(&mut self) -> Result<Option<Head>> {
        let Some(bytes) = self.read_head_bytes()? else { return Ok(None) };
        let text = std::str::from_utf8(&bytes).map_err(|_| malformed("head is not UTF-8"))?;
        let mut lines = text.split("\r\n");
        let start_line = lines.next().ok_or_else(|| malformed("empty head"))?;
        let start = parse_start_line(start_line)?;
        let mut headers_map = Headers::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| malformed("header line without ':'"))?;
            headers_map.set(name.trim(), value.trim().to_string());
        }
        // transfer-encoding is pure framing: strip it so the decoded
        // header map mirrors what the encoder was handed (round-trip
        // byte-identity), and remember the fact on the head.
        let chunked = match headers_map.remove("transfer-encoding") {
            Some(v) if v.eq_ignore_ascii_case("chunked") => true,
            Some(_) => return Err(malformed("unsupported transfer-encoding")),
            None => false,
        };
        Ok(Some(Head { start, headers: headers_map, chunked }))
    }

    /// Body framing declared by a head.
    pub fn body_framing(head: &Head) -> Result<BodyFraming> {
        if head.chunked {
            return Ok(BodyFraming::Chunked);
        }
        match head.headers.get("content-length") {
            // Requests carry the body only when the encoder framed one; a
            // response's content-length is a semantic header (object size),
            // not framing — responses always arrive chunked from our
            // server, so ContentLength framing only applies when
            // transfer-encoding is absent.
            Some(v) => {
                let n: usize = v
                    .parse()
                    .map_err(|_| malformed("unparseable content-length"))?;
                if n > MAX_BODY_BYTES {
                    return Err(malformed("body exceeds cap"));
                }
                if n == 0 {
                    Ok(BodyFraming::None)
                } else {
                    Ok(BodyFraming::ContentLength(n))
                }
            }
            None => Ok(BodyFraming::None),
        }
    }

    /// Read exactly `n` body bytes.
    pub fn read_exact_body(&mut self, n: usize) -> Result<Bytes> {
        while self.buf.len() - self.pos < n {
            if self.fill().map_err(ScoopError::Io)? == 0 {
                return Err(malformed("EOF inside content-length body"));
            }
        }
        let body = self
            .buf
            .get(self.pos..self.pos + n)
            .unwrap_or_default()
            .to_vec();
        self.pos += n;
        Ok(Bytes::from(body))
    }

    fn read_line_capped(&mut self, cap: usize, what: &str) -> Result<String> {
        loop {
            let window = self.buf.get(self.pos..).unwrap_or_default();
            if let Some(i) = window.windows(2).position(|w| w == b"\r\n") {
                let line = window.get(..i).unwrap_or_default().to_vec();
                self.pos += i + 2;
                return String::from_utf8(line).map_err(|_| malformed("chunk line not UTF-8"));
            }
            if window.len() > cap {
                return Err(malformed(what));
            }
            if self.fill().map_err(ScoopError::Io)? == 0 {
                return Err(malformed("EOF inside chunk framing"));
            }
        }
    }

    fn read_line(&mut self) -> Result<String> {
        self.read_line_capped(32, "chunk size line too long")
    }

    fn read_trailer_line(&mut self) -> Result<String> {
        // Wide enough for a full span trailer (`telemetry::MAX_ENCODED_SPANS`
        // value bytes plus the name) with headroom.
        self.read_line_capped(16_384, "chunk trailer line too long")
    }

    /// Read the next chunk of a chunked body; `Ok(None)` after the
    /// terminating zero-chunk. Chunk boundaries are preserved: each framed
    /// chunk surfaces as one `Bytes`, so re-encoding reproduces the exact
    /// wire bytes.
    pub fn read_chunk(&mut self) -> Result<Option<Bytes>> {
        let size_line = self.read_line()?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| malformed("unparseable chunk size"))?;
        if size > MAX_CHUNK_BYTES {
            return Err(malformed("chunk exceeds cap"));
        }
        if size == 0 {
            // Trailer section: usually just the terminating CRLF, but two
            // trailers may precede it — a body that failed mid-stream ends
            // with an error trailer (the sender finished the frame cleanly
            // and parked the error's kind and message here, after the data
            // it could no longer retract), and a traced request's response
            // carries the server-side spans (which only finish once the
            // body has streamed). Anything else is a malformed frame.
            let mut stream_error = None;
            loop {
                let trailer = self.read_trailer_line()?;
                if trailer.is_empty() {
                    break;
                }
                let Some((name, value)) = trailer.split_once(':') else {
                    return Err(malformed("chunk trailer without ':'"));
                };
                let name = name.trim();
                if name.eq_ignore_ascii_case(headers::SERVER_SPANS) {
                    self.server_spans = Some(value.trim().to_string());
                    continue;
                }
                if !name.eq_ignore_ascii_case(headers::STREAM_ERROR) {
                    return Err(malformed("unexpected chunk trailer"));
                }
                let value = value.trim();
                let (kind, msg) = value.split_once(' ').unwrap_or((value, ""));
                stream_error = Some(error_from_kind(kind, msg.to_string()));
            }
            if let Some(err) = stream_error {
                return Err(err);
            }
            return Ok(None);
        }
        let data = self.read_exact_body(size)?;
        let crlf = self.read_line()?;
        if !crlf.is_empty() {
            return Err(malformed("chunk not CRLF-terminated"));
        }
        Ok(Some(data))
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_start_line(line: &str) -> Result<StartLine> {
    if let Some(rest) = line.strip_prefix("HTTP/1.1 ") {
        let code = rest
            .split(' ')
            .next()
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| malformed("unparseable status line"))?;
        return Ok(StartLine::Status(code));
    }
    let mut parts = line.split(' ');
    // On the wire an unknown method token means the frame itself is
    // suspect (garbage, corruption), not that a well-formed request asked
    // for something unsupported — classify as malformed, i.e. retryable.
    let method = parse_method(parts.next().unwrap_or_default())
        .map_err(|_| malformed("unrecognized method in start line"))?;
    let target = parts
        .next()
        .ok_or_else(|| malformed("request line without target"))?
        .to_string();
    match parts.next() {
        Some("HTTP/1.1") => Ok(StartLine::Request { method, target }),
        _ => Err(malformed("request line without HTTP/1.1 version")),
    }
}

// ---------------------------------------------------------------------------
// Request/Response assembly
// ---------------------------------------------------------------------------

/// What a decoded request target addresses.
///
/// The top-level segments `info`, `metrics`, `events` and `trace` are
/// reserved endpoint namespaces and never parse as account names.
#[derive(Debug)]
pub enum Target {
    /// `GET /info`: the telemetry snapshot endpoint (plain text).
    Info,
    /// `GET /metrics`: Prometheus text exposition of the snapshot.
    Metrics,
    /// `GET /trace/{id}`: JSON span dump of one trace.
    Trace(String),
    /// `GET /events`: JSON dump of the wide query-event ring.
    Events,
    /// `/account/container`: container create/list.
    Container {
        /// Account segment (decoded).
        account: String,
        /// Container segment (decoded).
        container: String,
    },
    /// `/account/container/object`: an object request.
    Object(ObjectPath),
}

/// Decode a request target into the endpoint it addresses.
pub fn decode_target(target: &str) -> Result<Target> {
    if target == "/info" {
        return Ok(Target::Info);
    }
    if target == "/metrics" {
        return Ok(Target::Metrics);
    }
    if target == "/events" {
        return Ok(Target::Events);
    }
    if let Some(id) = target.strip_prefix("/trace/") {
        if id.is_empty() || id.contains('/') {
            return Err(ScoopError::InvalidRequest(format!(
                "trace endpoint takes exactly one ID segment, got '{target}'"
            )));
        }
        return Ok(Target::Trace(decode_segment(id)?));
    }
    let trimmed = target.strip_prefix('/').unwrap_or(target);
    // The endpoint namespaces are reserved outright: a stray extra segment
    // must surface as an unroutable target, not dispatch into a phantom
    // "metrics" account.
    if let Some(first) = trimmed.split('/').next() {
        if matches!(first, "info" | "metrics" | "events" | "trace") {
            return Err(ScoopError::InvalidRequest(format!(
                "'/{first}' is a reserved endpoint namespace, got '{target}'"
            )));
        }
    }
    let segments: Vec<&str> = trimmed.splitn(3, '/').collect();
    match segments.as_slice() {
        [account, container] => Ok(Target::Container {
            account: decode_segment(account)?,
            container: decode_segment(container)?,
        }),
        [account, container, object] => {
            let object = object
                .split('/')
                .map(decode_segment)
                .collect::<Result<Vec<_>>>()?
                .join("/");
            Ok(Target::Object(ObjectPath::new(
                decode_segment(account)?,
                decode_segment(container)?,
                object,
            )?))
        }
        _ => Err(ScoopError::InvalidRequest(format!("unroutable target '{target}'"))),
    }
}

/// Assemble a [`Request`] from a decoded object-targeted head + body. The
/// deadline budget header is converted back into a live [`Deadline`] and
/// removed from the map (it is framing metadata, not a request header).
pub fn request_from_parts(
    method: Method,
    path: ObjectPath,
    mut headers_map: Headers,
    body: Option<Bytes>,
) -> Result<Request> {
    let deadline = match headers_map.remove(headers::DEADLINE_MS) {
        Some(ms) => {
            let ms: u64 = ms
                .parse()
                .map_err(|_| malformed("unparseable deadline budget"))?;
            Deadline::within(Duration::from_millis(ms))
        }
        None => Deadline::none(),
    };
    Ok(Request { method, path, headers: headers_map, body, deadline })
}

/// Serialize a container listing: one `name\tsize\tetag` line per record,
/// names percent-encoded (object names may legally contain tabs and
/// newlines' close cousins — spaces — so the field separator must be
/// escaped out of the name).
pub fn encode_listing(records: &[crate::proxy::ObjectRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.extend_from_slice(encode_segment(&r.name).as_bytes());
        out.extend_from_slice(format!("\t{}\t{}\n", r.size, r.etag).as_bytes());
    }
    out
}

/// Parse a wire container listing back into records.
pub fn decode_listing(body: &[u8]) -> Result<Vec<crate::proxy::ObjectRecord>> {
    let text = std::str::from_utf8(body).map_err(|_| malformed("listing is not UTF-8"))?;
    let mut records = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let (name, size, etag) = match (fields.next(), fields.next(), fields.next()) {
            (Some(n), Some(s), Some(e)) => (n, s, e),
            _ => return Err(malformed("listing line missing fields")),
        };
        records.push(crate::proxy::ObjectRecord {
            name: decode_segment(name)?,
            size: size.parse().map_err(|_| malformed("unparseable listing size"))?,
            etag: etag.to_string(),
        });
    }
    Ok(records)
}

/// Assemble a [`Response`] whose body is already materialized. The
/// decoder's lazy path builds the stream itself; this is the eager helper
/// for drained bodies and unit tests.
pub fn response_from_parts(status: u16, headers_map: Headers, body: Bytes) -> Response {
    let body: ByteStream = if body.is_empty() { stream::empty() } else { stream::once(body) };
    Response { status, headers: headers_map, body }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn path() -> ObjectPath {
        ObjectPath::new("AUTH_gp", "meters", "2016/01 data.csv").unwrap()
    }

    #[test]
    fn segments_percent_roundtrip() {
        for s in ["plain", "with space", "pct%25", "naïve-utf8", "a+b&c=d"] {
            assert_eq!(decode_segment(&encode_segment(s)).unwrap(), s);
        }
        assert!(decode_segment("%GG").is_err());
        assert!(decode_segment("%2").is_err());
    }

    #[test]
    fn request_roundtrips_through_the_codec() {
        let req = Request::put(path(), Bytes::from_static(b"a,b\n1,2\n"))
            .with_header("x-object-meta-owner", "gp")
            .with_header("range", "bytes=-42");
        let bytes = encode_request(&req).unwrap();
        let mut r = FrameReader::new(Cursor::new(bytes.clone()));
        let head = r.read_head().unwrap().unwrap();
        let framing = FrameReader::<Cursor<Vec<u8>>>::body_framing(&head).unwrap();
        let StartLine::Request { method, target } = head.start else {
            panic!("not a request head")
        };
        assert_eq!(method, Method::Put);
        let Target::Object(got_path) = decode_target(&target).unwrap() else {
            panic!("not an object target")
        };
        assert_eq!(got_path, path());
        assert_eq!(framing, BodyFraming::ContentLength(8));
        let body = r.read_exact_body(8).unwrap();
        let req2 = request_from_parts(method, got_path, head.headers, Some(body)).unwrap();
        assert_eq!(req2.headers.get("x-object-meta-owner"), Some("gp"));
        assert_eq!(req2.headers.get("range"), Some("bytes=-42"));
        assert_eq!(req2.body.as_deref(), Some(&b"a,b\n1,2\n"[..]));
        // Byte-identity: re-encoding the decoded request reproduces the
        // exact frame (content-length now in the map is skipped on encode).
        assert_eq!(encode_request(&req2).unwrap(), bytes);
    }

    #[test]
    fn deadline_crosses_as_budget_and_leaves_the_map() {
        let req = Request::get(path()).with_deadline(Deadline::within(Duration::from_secs(5)));
        let bytes = encode_request(&req).unwrap();
        let mut r = FrameReader::new(Cursor::new(bytes));
        let head = r.read_head().unwrap().unwrap();
        let StartLine::Request { method, .. } = head.start else { panic!("not a request") };
        let req2 = request_from_parts(method, path(), head.headers, None).unwrap();
        assert!(req2.deadline.is_set());
        let rem = req2.deadline.remaining().unwrap();
        assert!(rem <= Duration::from_secs(5) && rem > Duration::from_secs(4));
        assert!(!req2.headers.contains(scoop_common::headers::DEADLINE_MS));
    }

    #[test]
    fn chunked_response_roundtrips_with_boundaries() {
        let mut hdrs = Headers::new();
        hdrs.set("etag", "abc");
        hdrs.set("content-length", "11"); // semantic, not framing
        let mut wire_bytes = encode_response_head(200, &hdrs).unwrap();
        write_chunk(&mut wire_bytes, b"hello ").unwrap();
        write_chunk(&mut wire_bytes, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut wire_bytes, b"world").unwrap();
        finish_chunks(&mut wire_bytes).unwrap();

        let mut r = FrameReader::new(Cursor::new(wire_bytes));
        let head = r.read_head().unwrap().unwrap();
        let StartLine::Status(code) = head.start else { panic!("not a response") };
        assert_eq!(code, 200);
        assert_eq!(
            FrameReader::<Cursor<Vec<u8>>>::body_framing(&head).unwrap(),
            BodyFraming::Chunked
        );
        assert_eq!(r.read_chunk().unwrap().unwrap(), Bytes::from_static(b"hello "));
        assert_eq!(r.read_chunk().unwrap().unwrap(), Bytes::from_static(b"world"));
        assert!(r.read_chunk().unwrap().is_none());
        assert!(r.is_drained());
        // The semantic content-length header crossed untouched.
        assert_eq!(head.headers.get("content-length"), Some("11"));
        assert_eq!(head.headers.get("etag"), Some("abc"));
        assert!(!head.headers.contains("transfer-encoding"));
    }

    #[test]
    fn mid_stream_error_crosses_as_chunk_trailer() {
        let mut buf = Vec::new();
        write_chunk(&mut buf, b"partial").unwrap();
        let failure = ScoopError::Io(std::io::Error::other("stream truncated at byte 7"));
        finish_chunks_with_error(&mut buf, &failure).unwrap();

        let mut r = FrameReader::new(Cursor::new(buf));
        assert_eq!(r.read_chunk().unwrap().unwrap(), Bytes::from_static(b"partial"));
        let err = r.read_chunk().unwrap_err();
        assert_eq!(err.kind(), "io", "trailer must preserve the error kind");
        assert!(err.is_retryable());
        assert!(
            err.to_string().contains("truncated"),
            "trailer must preserve the message: {err}"
        );
        // The frame completed: the trailer is data, not a wire fault.
        assert!(r.is_drained());
    }

    #[test]
    fn error_kinds_roundtrip_with_retryability() {
        for kind in [
            "io", "not_found", "conflict", "invalid_request", "unauthorized", "csv", "sql",
            "storlet", "columnar", "corrupt", "compute", "unsupported", "deadline", "internal",
        ] {
            let err = error_from_kind(kind, "msg".into());
            assert_eq!(err.kind(), kind, "kind must survive the wire");
        }
        assert!(error_from_kind("io", "m".into()).is_retryable());
        assert!(error_from_kind("compute", "m".into()).is_retryable());
        assert!(!error_from_kind("deadline", "m".into()).is_retryable());
        assert!(!error_from_kind("never-heard-of-it", "m".into()).is_retryable());
    }

    #[test]
    fn malformed_frames_are_retryable_io() {
        let mut r = FrameReader::new(Cursor::new(b"GARBAGE \x01\x02\r\n\r\n".to_vec()));
        let err = r.read_head().unwrap_err();
        assert!(err.is_retryable(), "garbage frames must be retryable");
        let mut r = FrameReader::new(Cursor::new(b"HTTP/1.1 abc\r\n\r\n".to_vec()));
        assert!(r.read_head().is_err());
        // Truncated head: EOF mid-frame is an error, idle EOF is None.
        let mut r = FrameReader::new(Cursor::new(b"GET /a/c/o HT".to_vec()));
        assert!(r.read_head().is_err());
        let mut r = FrameReader::new(Cursor::new(Vec::new()));
        assert!(r.read_head().unwrap().is_none());
    }

    #[test]
    fn span_trailer_rides_the_chunk_terminator() {
        use scoop_common::telemetry::{self, layers};
        let spans = vec![telemetry::SpanRecord {
            layer: layers::PROXY,
            detail: "GET a/c/o".into(),
            start_us: 10,
            duration_us: 20,
            remote: false,
        }];
        let encoded = telemetry::encode_spans(&spans);

        // Clean termination: body chunks, then the spans trailer.
        let mut buf = Vec::new();
        write_chunk(&mut buf, b"rows").unwrap();
        finish_chunks_with_trailers(&mut buf, &[(headers::SERVER_SPANS, encoded.clone())])
            .unwrap();
        let mut r = FrameReader::new(Cursor::new(buf));
        assert_eq!(r.read_chunk().unwrap().unwrap(), Bytes::from_static(b"rows"));
        assert!(r.read_chunk().unwrap().is_none());
        let carried = r.take_server_spans().expect("spans trailer lost");
        assert_eq!(telemetry::decode_spans(&carried).unwrap(), spans);
        // One-shot: a second take finds nothing.
        assert!(r.take_server_spans().is_none());

        // Error termination: the spans ride alongside the stream error and
        // survive even though the body read fails.
        let mut buf = Vec::new();
        write_chunk(&mut buf, b"partial").unwrap();
        let failure = ScoopError::Io(std::io::Error::other("boom"));
        finish_chunks_with_trailers(
            &mut buf,
            &[stream_error_trailer(&failure), (headers::SERVER_SPANS, encoded)],
        )
        .unwrap();
        let mut r = FrameReader::new(Cursor::new(buf));
        assert_eq!(r.read_chunk().unwrap().unwrap(), Bytes::from_static(b"partial"));
        let err = r.read_chunk().unwrap_err();
        assert_eq!(err.kind(), "io");
        assert_eq!(
            telemetry::decode_spans(&r.take_server_spans().unwrap()).unwrap(),
            spans
        );
        // Unknown trailers are still rejected.
        let mut buf = Vec::new();
        finish_chunks_with_trailers(&mut buf, &[("x-mystery", "?".into())]).unwrap();
        let mut r = FrameReader::new(Cursor::new(buf));
        assert!(r.read_chunk().is_err());
    }

    #[test]
    fn observability_targets_decode() {
        assert!(matches!(decode_target("/metrics").unwrap(), Target::Metrics));
        assert!(matches!(decode_target("/events").unwrap(), Target::Events));
        let Target::Trace(id) = decode_target("/trace/t00ab").unwrap() else {
            panic!("not a trace target")
        };
        assert_eq!(id, "t00ab");
        assert!(decode_target("/trace/").is_err());
        assert!(decode_target("/trace/a/b").is_err());
        assert!(decode_target("/metrics/x").is_err(), "one-segment junk stays unroutable");
    }

    #[test]
    fn container_and_info_targets_decode() {
        assert!(matches!(decode_target("/info").unwrap(), Target::Info));
        let Target::Container { account, container } =
            decode_target("/AUTH_gp/my%20meters").unwrap()
        else {
            panic!("not a container target")
        };
        assert_eq!(account, "AUTH_gp");
        assert_eq!(container, "my meters");
        assert!(matches!(decode_target("/a/c/o").unwrap(), Target::Object(_)));
        assert!(decode_target("/onlyaccount").is_err());
    }
}
