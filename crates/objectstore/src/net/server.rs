//! The HTTP/1.1-over-TCP front end of the proxy tier.
//!
//! [`NetServer::serve`] binds a loopback listener in front of a set of
//! [`ProxyServer`]s and spawns an accept loop plus a fixed worker pool.
//! Each worker owns one connection at a time and runs its keep-alive loop:
//! decode a request frame, dispatch it through the round-robin proxy choice
//! (the same "HAProxy stand-in" rule as the in-process path), stream the
//! response back chunked. Timeouts:
//!
//! * every socket gets a read/write timeout at accept time (no raw
//!   `TcpStream` read ever blocks forever — `scoop-lint` invariant 5);
//! * a *total header time* guard bounds the whole head read, so a
//!   slowloris peer dribbling one byte per second cannot hold a worker by
//!   keeping each individual read under the per-read timeout;
//! * per-request write timeouts are tightened to the request's propagated
//!   [`scoop_common::Deadline`] budget, so a server never keeps pushing bytes for a query
//!   whose budget is already gone.
//!
//! Wire faults from the cluster's [`crate::fault::FaultInjector`] are applied here, at
//! the socket boundary, via [`FaultWriter`] — the proxy and object servers
//! underneath are untouched, exactly as a real network fault would behave.

use crate::fault::{FaultInjector, WireFault};
use crate::net::chaos::FaultWriter;
use crate::net::wire;
use crate::proxy::{ContainerService, ProxyServer};
use crate::request::{Headers, Method, Response};
use bytes::Bytes;
use scoop_common::telemetry::{self, names};
use scoop_common::{headers, Result, ScoopError};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the TCP front end.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Worker threads; each owns one live connection at a time.
    pub workers: usize,
    /// Per-read/-write socket timeout (the hard floor under every stall).
    pub io_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests.
    pub idle_timeout: Duration,
    /// Total time budget for reading one request head (slowloris guard).
    pub header_timeout: Duration,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            workers: 32,
            io_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(5),
            header_timeout: Duration::from_secs(2),
        }
    }
}

/// A running TCP front end. Dropping the handle shuts the listener and
/// worker pool down.
pub struct NetHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetHandle {
    /// The bound loopback address clients dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for NetHandle {
    // lint:allow(wake-up dial only: the stream is dropped unread, so no read can block)
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway dial so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// The TCP data-plane server: everything a worker needs to serve requests.
pub struct NetServer {
    proxies: Vec<Arc<ProxyServer>>,
    containers: Arc<ContainerService>,
    fault: Option<Arc<FaultInjector>>,
    opts: NetOptions,
    next_proxy: AtomicUsize,
}

impl NetServer {
    /// Bind a loopback listener and start the accept loop + worker pool.
    pub fn serve(
        proxies: Vec<Arc<ProxyServer>>,
        containers: Arc<ContainerService>,
        fault: Option<Arc<FaultInjector>>,
        opts: NetOptions,
    ) -> Result<NetHandle> {
        if proxies.is_empty() {
            return Err(ScoopError::InvalidRequest("cannot serve zero proxies".into()));
        }
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(ScoopError::Io)?;
        let addr = listener.local_addr().map_err(ScoopError::Io)?;
        let server = Arc::new(NetServer {
            proxies,
            containers,
            fault,
            opts: opts.clone(),
            next_proxy: AtomicUsize::new(0),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(opts.workers.max(1));
        for _ in 0..opts.workers.max(1) {
            let server = server.clone();
            let rx = rx.clone();
            workers.push(std::thread::spawn(move || loop {
                // Lock only for the recv handoff, never while serving.
                let conn = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => return,
                };
                match conn {
                    Ok(stream) => server.handle_connection(stream),
                    Err(_) => return, // channel closed: shutdown
                }
            }));
        }

        let accept_shutdown = shutdown.clone();
        let io_timeout = opts.io_timeout;
        let accept_thread = std::thread::spawn(move || {
            let accepted = telemetry::counter(names::NET_SERVER_CONNECTIONS);
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    return; // tx drops here; workers drain and exit
                }
                let Ok(stream) = stream else { continue };
                // Every accepted socket is bounded before its first read:
                // a peer that stops sending costs at most io_timeout per
                // read, never a hung worker.
                if stream.set_read_timeout(Some(io_timeout)).is_err()
                    || stream.set_write_timeout(Some(io_timeout)).is_err()
                {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                accepted.inc();
                if tx.send(stream).is_err() {
                    return;
                }
            }
        });

        Ok(NetHandle { addr, shutdown, accept_thread: Some(accept_thread), workers })
    }

    fn pick_proxy(&self) -> Arc<ProxyServer> {
        let i = self.next_proxy.fetch_add(1, Ordering::Relaxed) % self.proxies.len();
        self.proxies.get(i).cloned().unwrap_or_else(|| {
            // Unreachable (serve() rejects empty proxy sets); index 0 exists.
            self.proxies[0].clone() // lint:allow(guarded by serve() precondition)
        })
    }

    /// Serve one connection's keep-alive loop until close/fault/idle.
    fn handle_connection(&self, stream: TcpStream) {
        let requests = telemetry::counter(names::NET_SERVER_REQUESTS);
        let wire_faults = telemetry::counter(names::NET_WIRE_FAULTS);
        let Ok(write_half) = stream.try_clone() else { return };
        let mut reader = wire::FrameReader::new(PacedStream::new(stream));
        loop {
            // Wait for the first byte of the next request *before* deciding
            // this exchange's wire fault. An idle keep-alive connection must
            // not consume slots in the deterministic fault sequence — the
            // consecutive-fault cap's progress guarantee ("after N faults
            // the next exchange is clean") only holds if decisions map 1:1
            // to real exchanges. Pipelined requests are already buffered,
            // so only a drained reader needs to wait on the socket.
            if reader.is_drained()
                && !matches!(
                    reader.inner_mut().wait_for_request(self.opts.idle_timeout),
                    Ok(true)
                )
            {
                break; // peer closed, or sat idle past the window
            }
            // Arm the per-exchange wire fault: slowloris acts on the read
            // path, everything else on the write path of this exchange.
            let fault = self
                .fault
                .as_ref()
                .map(|f| f.decide_wire())
                .unwrap_or(WireFault::None);
            if fault != WireFault::None {
                wire_faults.inc();
                if let Some(name) = wire_fault_class_metric(fault) {
                    telemetry::counter(name).inc();
                }
            }
            let stall = self
                .fault
                .as_ref()
                .map(|f| f.plan().wire.partial_stall)
                .unwrap_or_default();
            let dribble = match fault {
                WireFault::Slowloris => {
                    self.fault.as_ref().map(|f| f.plan().wire.slowloris_delay)
                }
                _ => None,
            };
            // Total-header-time guard: the budget covers the whole head
            // read, so a peer dribbling bytes under the per-read timeout
            // still gets cut off. The first byte is already waiting, so the
            // clock starts now.
            reader.inner_mut().arm(self.opts.header_timeout, dribble);
            let head = match reader.read_head() {
                Ok(Some(head)) => head,
                Ok(None) => break,  // peer closed between requests
                Err(_) => break,    // malformed/timed out head: hang up
            };
            reader.inner_mut().disarm(self.opts.io_timeout);
            requests.inc();

            // An Err means the write side failed mid-response: hang up.
            let keep_alive = self
                .serve_exchange(&write_half, &mut reader, head, fault, stall)
                .unwrap_or(false);
            if !keep_alive {
                break;
            }
        }
        let _ = write_half.shutdown(Shutdown::Both);
    }

    /// Decode one request, dispatch it, write the response through the
    /// armed fault. Returns whether the connection stays usable.
    fn serve_exchange(
        &self,
        write_half: &TcpStream,
        reader: &mut wire::FrameReader<PacedStream>,
        head: wire::Head,
        fault: WireFault,
        stall: Duration,
    ) -> Result<bool> {
        let framing = wire::FrameReader::<PacedStream>::body_framing(&head)?;
        let wire::StartLine::Request { method, target } = head.start else {
            return Ok(false); // a response frame on the server side: hang up
        };
        let body = match framing {
            wire::BodyFraming::ContentLength(n) => Some(reader.read_exact_body(n)?),
            wire::BodyFraming::None => None,
            wire::BodyFraming::Chunked => {
                // Request bodies are always content-length framed by our
                // encoder; chunked requests are not part of the protocol.
                return Ok(false);
            }
        };
        // A traced request gets its server-side spans shipped back in the
        // response trailer (they finish before the trailer is written:
        // handler spans drop when the handler returns, and the lazy body
        // has fully streamed by then).
        let trace = head.headers.get(headers::TRACE).map(str::to_string);

        let outcome = self.dispatch(method, &target, head.headers, body, write_half);
        let mut out = FaultWriter::new(write_half, fault, stall);
        let clean = match outcome {
            Ok(resp) => write_response(&mut out, resp, trace.as_deref()).is_ok(),
            Err(err) => write_error(&mut out, &err, trace.as_deref()).is_ok(),
        };
        // A fired write fault or a mid-stream body error leaves the peer
        // mid-frame: the connection must die, not serve another exchange.
        Ok(clean && !out.poisoned())
    }

    /// Route a decoded request to the proxy tier / container service.
    fn dispatch(
        &self,
        method: Method,
        target: &str,
        mut headers_map: Headers,
        body: Option<Bytes>,
        write_half: &TcpStream,
    ) -> Result<Response> {
        match wire::decode_target(target)? {
            wire::Target::Info => {
                if method != Method::Get {
                    return Err(ScoopError::InvalidRequest("info endpoint is GET-only".into()));
                }
                Ok(self.pick_proxy().info())
            }
            wire::Target::Metrics => {
                if method != Method::Get {
                    return Err(ScoopError::InvalidRequest("metrics endpoint is GET-only".into()));
                }
                let text = telemetry::snapshot().to_prometheus();
                Ok(Response::ok(scoop_common::stream::once(Bytes::from(text)))
                    .with_header("content-type", "text/plain; version=0.0.4"))
            }
            wire::Target::Trace(id) => {
                if method != Method::Get {
                    return Err(ScoopError::InvalidRequest("trace endpoint is GET-only".into()));
                }
                let json = telemetry::trace_to_json(&id);
                Ok(Response::ok(scoop_common::stream::once(Bytes::from(json)))
                    .with_header("content-type", "application/json"))
            }
            wire::Target::Events => {
                if method != Method::Get {
                    return Err(ScoopError::InvalidRequest("events endpoint is GET-only".into()));
                }
                let json = telemetry::events_to_json(&telemetry::query_events());
                Ok(Response::ok(scoop_common::stream::once(Bytes::from(json)))
                    .with_header("content-type", "application/json"))
            }
            wire::Target::Container { account, container } => {
                let prefix = headers_map.remove(headers::LIST_PREFIX);
                match method {
                    Method::Put => {
                        self.containers.create_container(&account, &container);
                        Ok(Response::created())
                    }
                    Method::Get => {
                        let records =
                            self.containers.list_objects(&account, &container, prefix.as_deref())?;
                        let listing = wire::encode_listing(&records);
                        Ok(Response::ok(scoop_common::stream::once(Bytes::from(listing))))
                    }
                    _ => Err(ScoopError::InvalidRequest(format!(
                        "unsupported container method {}",
                        wire::method_name(method)
                    ))),
                }
            }
            wire::Target::Object(path) => {
                let req = wire::request_from_parts(method, path, headers_map, body)?;
                // Derive this connection's write window from the propagated
                // budget: pushing bytes past the query's deadline is wasted
                // work on both ends.
                let window = match req.deadline.remaining() {
                    Some(rem) if rem.is_zero() => {
                        return Err(ScoopError::DeadlineExceeded(format!(
                            "server received {} {} with exhausted budget",
                            wire::method_name(method),
                            req.path
                        )))
                    }
                    Some(rem) => rem.min(self.opts.io_timeout),
                    None => self.opts.io_timeout,
                };
                let _ = write_half.set_write_timeout(Some(window.max(Duration::from_millis(1))));
                let resp = self.pick_proxy().handle(req);
                let _ = write_half.set_write_timeout(Some(self.opts.io_timeout));
                resp
            }
        }
    }
}

/// The registry counter for one wire fault class (`None` fires nothing).
fn wire_fault_class_metric(fault: WireFault) -> Option<&'static str> {
    match fault {
        WireFault::None => None,
        WireFault::Rst => Some(names::NET_WIRE_FAULTS_RST),
        WireFault::Partial => Some(names::NET_WIRE_FAULTS_PARTIAL),
        WireFault::Slowloris => Some(names::NET_WIRE_FAULTS_SLOWLORIS),
        WireFault::Garbage => Some(names::NET_WIRE_FAULTS_GARBAGE),
        WireFault::HalfClose => Some(names::NET_WIRE_FAULTS_HALF_CLOSE),
    }
}

/// The `x-scoop-server-spans` trailer for `trace`, if the request was
/// traced and this server recorded spans for it. Draining (not copying)
/// keeps the span store single-homed: once shipped, the spans live in the
/// client's store — important when client and server share a process, where
/// a copy would double-count every server-side span.
fn server_span_trailer(trace: Option<&str>) -> Option<(&'static str, String)> {
    let spans = telemetry::take_server_spans(trace?);
    if spans.is_empty() {
        return None;
    }
    Some((headers::SERVER_SPANS, telemetry::encode_spans(&spans)))
}

/// Stream the response out chunked. A body-stream error mid-flight can no
/// longer change the status line (the head already went out) — it finishes
/// the frame with an error *trailer* instead, so the client rebuilds the
/// exact error (a length-enforcement "truncated" error must not flatten
/// into a generic aborted frame). The connection still closes afterwards:
/// a stream that died mid-body is not a peer to keep. Either way the
/// trailer also carries the server-side spans of a traced request — they
/// are only complete here, after the body streamed.
fn write_response(out: &mut impl Write, resp: Response, trace: Option<&str>) -> std::io::Result<()> {
    let head = wire::encode_response_head(resp.status, &resp.headers)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    out.write_all(&head)?;
    for chunk in resp.body {
        match chunk {
            Ok(data) => wire::write_chunk(out, &data)?,
            Err(err) => {
                let mut trailers = vec![wire::stream_error_trailer(&err)];
                trailers.extend(server_span_trailer(trace));
                wire::finish_chunks_with_trailers(out, &trailers)?;
                out.flush()?;
                return Err(std::io::Error::other("body stream failed mid-response"));
            }
        }
    }
    match server_span_trailer(trace) {
        Some(spans) => wire::finish_chunks_with_trailers(out, &[spans])?,
        None => wire::finish_chunks(out)?,
    }
    out.flush()
}

/// Carry an error across the wire: status by kind, the exact kind in
/// `x-scoop-error`, the message as the body. The spans recorded before the
/// request failed still ship in the trailer — a failed query is exactly the
/// one whose timeline is worth reading.
fn write_error(out: &mut impl Write, err: &ScoopError, trace: Option<&str>) -> std::io::Result<()> {
    let mut headers_map = Headers::new();
    headers_map.set(headers::ERROR_KIND, err.kind());
    let head = wire::encode_response_head(wire::status_for_kind(err.kind()), &headers_map)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    out.write_all(&head)?;
    wire::write_chunk(out, err.to_string().as_bytes())?;
    match server_span_trailer(trace) {
        Some(spans) => wire::finish_chunks_with_trailers(out, &[spans])?,
        None => wire::finish_chunks(out)?,
    }
    out.flush()
}

/// The server's read side: a [`TcpStream`] with (a) an optional total-time
/// guard over the header phase and (b) an optional slowloris dribble that
/// delivers one byte per delay, simulating a byte-at-a-time peer.
pub struct PacedStream {
    inner: TcpStream,
    /// Wall-clock cutoff for the current header phase.
    header_cutoff: Option<Instant>,
    dribble: Option<Duration>,
}

impl PacedStream {
    fn new(inner: TcpStream) -> Self {
        PacedStream { inner, header_cutoff: None, dribble: None }
    }

    /// Block until the next request's first byte is waiting (`Ok(true)`),
    /// the peer closed (`Ok(false)`), or the idle window lapsed (`Err`).
    /// The byte stays in the kernel buffer for the real head read.
    fn wait_for_request(&mut self, idle_timeout: Duration) -> std::io::Result<bool> {
        self.inner.set_read_timeout(Some(idle_timeout))?;
        let mut probe = [0u8; 1];
        Ok(self.inner.peek(&mut probe)? > 0)
    }

    /// Enter the header phase: the total-time clock starts immediately
    /// (the first byte is already waiting when this is called).
    fn arm(&mut self, header_timeout: Duration, dribble: Option<Duration>) {
        self.header_cutoff = Some(Instant::now() + header_timeout);
        self.dribble = dribble;
        let _ = self.inner.set_read_timeout(Some(header_timeout));
    }

    /// Leave the header phase; body reads run under the plain io timeout.
    fn disarm(&mut self, io_timeout: Duration) {
        self.header_cutoff = None;
        self.dribble = None;
        let _ = self.inner.set_read_timeout(Some(io_timeout));
    }
}

impl Read for PacedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(cutoff) = self.header_cutoff {
            if Instant::now() >= cutoff {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "request head exceeded total header time",
                ));
            }
        }
        match self.dribble {
            Some(delay) => {
                // One byte per delay: the injected slowloris peer.
                std::thread::sleep(delay);
                let end = buf.len().min(1);
                self.inner.read(buf.get_mut(..end).unwrap_or_default())
            }
            None => self.inner.read(buf),
        }
    }
}
