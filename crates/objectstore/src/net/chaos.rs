//! Wire-level fault application at the socket boundary.
//!
//! The server consults [`crate::fault::FaultInjector::decide_wire`] once per exchange and
//! arms a [`FaultWriter`] around the response path (and a dribble flag on
//! the request path for slowloris). Faults act on the raw byte stream, so
//! the client exercises exactly the failure shapes a production object
//! store emits: connections that die mid-frame, responses that corrupt in
//! flight, peers that go silent, write sides that close early.

use crate::fault::WireFault;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Bytes of response prefix delivered before an RST/partial fault kills the
/// connection — past a typical response head, so the client has usually
/// parsed a status line and committed to a body before the cut (the
/// nastier shape: a *believed* response that dies mid-stream). Small acks
/// fit entirely inside the prefix and survive — real resets land after the
/// kernel already flushed short responses, same effect.
const FAULT_PREFIX: usize = 192;

/// Leading response bytes corrupted by the garbage fault; hits the status
/// line so the client's decoder rejects the frame outright.
const GARBAGE_SPAN: usize = 12;

fn injected(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::ConnectionReset, format!("injected wire {what}"))
}

/// A [`Write`] wrapper over a connection that applies one wire fault to the
/// response it carries. Constructed per exchange; [`WireFault::None`] is a
/// transparent passthrough.
pub struct FaultWriter<'a> {
    inner: &'a TcpStream,
    fault: WireFault,
    partial_stall: Duration,
    written: usize,
    /// Set once the fault has fired; every later write fails fast.
    dead: bool,
}

impl<'a> FaultWriter<'a> {
    /// Wrap `inner`, applying `fault` to the bytes written through it.
    pub fn new(inner: &'a TcpStream, fault: WireFault, partial_stall: Duration) -> Self {
        FaultWriter { inner, fault, partial_stall, written: 0, dead: false }
    }

    /// True when the armed fault kills the connection (the server must not
    /// reuse it for another exchange).
    pub fn poisoned(&self) -> bool {
        self.dead
    }

    fn die(&mut self, what: &str) -> std::io::Error {
        self.dead = true;
        injected(what)
    }
}

impl Write for FaultWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(injected("fault (connection already dead)"));
        }
        match self.fault {
            WireFault::None | WireFault::Slowloris => self.inner.write(buf),
            WireFault::Garbage => {
                // Corrupt the leading bytes (the status line), then pass the
                // rest through: the client receives a full-length frame whose
                // head no longer parses.
                if self.written < GARBAGE_SPAN {
                    let mut corrupted = buf.to_vec();
                    for b in corrupted.iter_mut().take(GARBAGE_SPAN.saturating_sub(self.written)) {
                        *b ^= 0x55;
                    }
                    let n = self.inner.write(&corrupted)?;
                    self.written += n;
                    Ok(n)
                } else {
                    self.inner.write(buf)
                }
            }
            WireFault::Rst => {
                // Deliver a prefix, then abort. An abrupt close mid-frame is
                // what a peer's RST looks like to our decoder: EOF inside a
                // frame it was promised.
                if self.written >= FAULT_PREFIX {
                    return Err(self.die("rst mid-response"));
                }
                let allowed = (FAULT_PREFIX - self.written).min(buf.len());
                let n = self.inner.write(buf.get(..allowed).unwrap_or_default())?;
                self.written += n;
                Ok(n)
            }
            WireFault::Partial => {
                // Deliver a prefix, flush it, then go silent: the client's
                // read timeout (not a connection error) must surface this.
                if self.written >= FAULT_PREFIX {
                    let _ = self.inner.flush();
                    std::thread::sleep(self.partial_stall);
                    return Err(self.die("partial write stall"));
                }
                let allowed = (FAULT_PREFIX - self.written).min(buf.len());
                let n = self.inner.write(buf.get(..allowed).unwrap_or_default())?;
                self.written += n;
                Ok(n)
            }
            WireFault::HalfClose => {
                // Close the write side before the first response byte: the
                // client sees EOF exactly where a status line should start.
                let _ = self.inner.shutdown(std::net::Shutdown::Write);
                Err(self.die("half-close before response"))
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Ok(());
        }
        self.inner.flush()
    }
}
