//! The TCP data plane: real HTTP/1.1 framing between [`SwiftClient`] and
//! the proxy tier.
//!
//! Until this module existed, proxy/object-server/storlet hops were
//! in-process calls — the reliability substrate (chaos, retries, breakers,
//! deadlines, hedging, tracing) had never met the failure modes that
//! dominate production object stores: connection resets, half-closed
//! sockets, partial frames, slow peers. The net module closes that gap
//! without changing a single request semantic:
//!
//! * [`wire`] — the HTTP/1.1 codec over the existing `Request`/`Response`
//!   types; every `x-scoop-*` header crosses byte-identically.
//! * [`server`] — accept loop + worker pool in front of the proxies, with
//!   keep-alive, slowloris guarding, and `Deadline`-derived socket windows.
//! * [`pool`] — the client transport: checkout/checkin, idle reaping,
//!   keep-alive reuse, pipelined range-GETs, and the wire→taxonomy error
//!   mapping.
//! * [`chaos`] — wire-level fault application (RST, partial+stall,
//!   slowloris, garbage frames, half-close) at the socket boundary, driven
//!   by the cluster's [`FaultInjector`].
//!
//! [`SwiftClient`]: crate::swift::SwiftClient
//! [`FaultInjector`]: crate::fault::FaultInjector

pub mod chaos;
pub mod pool;
pub mod server;
pub mod wire;

pub use pool::{HttpPool, PoolConfig, PoolSnapshot};
pub use server::{NetHandle, NetOptions, NetServer};
