//! The flat `/account/container/object` namespace.
//!
//! Swift's access path "consists of exactly three elements:
//! /account/container/object. Nesting of accounts and containers is not
//! supported" — object names may contain slashes (pseudo-directories), but
//! account and container names may not.

use scoop_common::{Result, ScoopError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully-qualified object path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectPath {
    /// Account (tenant) name, e.g. `AUTH_gridpocket`.
    pub account: String,
    /// Container name.
    pub container: String,
    /// Object name; may contain `/` (pseudo-directories).
    pub object: String,
}

fn validate_segment(kind: &str, s: &str, allow_slash: bool) -> Result<()> {
    if s.is_empty() {
        return Err(ScoopError::InvalidRequest(format!("empty {kind} name")));
    }
    if s.len() > 1024 {
        return Err(ScoopError::InvalidRequest(format!("{kind} name too long")));
    }
    if !allow_slash && s.contains('/') {
        return Err(ScoopError::InvalidRequest(format!(
            "{kind} name may not contain '/': {s}"
        )));
    }
    if s.bytes().any(|b| b == 0 || b == b'\n' || b == b'\r') {
        return Err(ScoopError::InvalidRequest(format!(
            "{kind} name contains control characters"
        )));
    }
    Ok(())
}

impl ObjectPath {
    /// Construct a validated object path.
    pub fn new(
        account: impl Into<String>,
        container: impl Into<String>,
        object: impl Into<String>,
    ) -> Result<ObjectPath> {
        let p = ObjectPath {
            account: account.into(),
            container: container.into(),
            object: object.into(),
        };
        validate_segment("account", &p.account, false)?;
        validate_segment("container", &p.container, false)?;
        validate_segment("object", &p.object, true)?;
        Ok(p)
    }

    /// Parse a `/account/container/object` URL path.
    pub fn parse(s: &str) -> Result<ObjectPath> {
        let trimmed = s.strip_prefix('/').unwrap_or(s);
        let mut it = trimmed.splitn(3, '/');
        let account = it.next().unwrap_or("");
        let container = it.next().ok_or_else(|| {
            ScoopError::InvalidRequest(format!("path '{s}' missing container"))
        })?;
        let object = it.next().ok_or_else(|| {
            ScoopError::InvalidRequest(format!("path '{s}' missing object"))
        })?;
        ObjectPath::new(account, container, object)
    }

    /// The container prefix `/account/container`.
    pub fn container_path(&self) -> String {
        format!("/{}/{}", self.account, self.container)
    }

    /// The canonical hashing key for ring placement.
    pub fn ring_key(&self) -> String {
        format!("/{}/{}/{}", self.account, self.container, self.object)
    }
}

impl fmt::Display for ObjectPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}/{}/{}", self.account, self.container, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let p = ObjectPath::parse("/AUTH_gp/meters/2015/01/part-0001.csv").unwrap();
        assert_eq!(p.account, "AUTH_gp");
        assert_eq!(p.container, "meters");
        assert_eq!(p.object, "2015/01/part-0001.csv");
        assert_eq!(p.to_string(), "/AUTH_gp/meters/2015/01/part-0001.csv");
        assert_eq!(ObjectPath::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn rejects_malformed() {
        assert!(ObjectPath::parse("/acct").is_err());
        assert!(ObjectPath::parse("/acct/cont").is_err());
        assert!(ObjectPath::new("", "c", "o").is_err());
        assert!(ObjectPath::new("a", "c/d", "o").is_err());
        assert!(ObjectPath::new("a", "c", "").is_err());
        assert!(ObjectPath::new("a", "c", "o\nbad").is_err());
        assert!(ObjectPath::new("a", "x".repeat(2000), "o").is_err());
    }

    #[test]
    fn container_path_and_ring_key() {
        let p = ObjectPath::new("a", "c", "o").unwrap();
        assert_eq!(p.container_path(), "/a/c");
        assert_eq!(p.ring_key(), "/a/c/o");
    }
}
