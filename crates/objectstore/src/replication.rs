//! Replica audit and repair.
//!
//! Swift object servers replicate objects across disks to reach the defined
//! availability threshold. Here a replicator walks the container listings,
//! verifies that each object is present (with a matching ETag) on all its ring
//! replicas, and restores missing copies from any healthy replica — the same
//! repair Swift's rsync-based replicator performs after a node outage.

use crate::objserver::ObjectServer;
use crate::proxy::ContainerService;
use crate::ring::Ring;
use parking_lot::RwLock;
use scoop_common::Result;
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of one repair pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Objects examined.
    pub objects_checked: u64,
    /// Replica copies restored.
    pub replicas_restored: u64,
    /// Replica copies that could not be checked/restored (server down).
    pub replicas_unavailable: u64,
    /// Objects with no reachable copy at all.
    pub objects_lost: u64,
}

/// The replicator daemon (invoked on demand in experiments/tests).
pub struct Replicator {
    ring: Arc<RwLock<Ring>>,
    servers: Arc<HashMap<u32, Arc<ObjectServer>>>,
    containers: Arc<ContainerService>,
}

impl Replicator {
    /// Assemble a replicator over the same state the proxies use.
    pub fn new(
        ring: Arc<RwLock<Ring>>,
        servers: Arc<HashMap<u32, Arc<ObjectServer>>>,
        containers: Arc<ContainerService>,
    ) -> Self {
        Replicator { ring, servers, containers }
    }

    /// Run one audit+repair pass over every known object.
    pub fn repair(&self) -> Result<RepairReport> {
        let mut report = RepairReport::default();
        let objects = self.containers.all_objects();
        let ring = self.ring.read();
        for (path, _size) in objects {
            report.objects_checked += 1;
            let key = path.ring_key();
            let replicas = ring.lookup(&key).to_vec();
            // Find one healthy source copy.
            let mut source = None;
            let mut missing = Vec::new();
            for dev in &replicas {
                let node = ring.device(*dev).node;
                let Some(server) = self.servers.get(&node) else {
                    report.replicas_unavailable += 1;
                    continue;
                };
                match server.backend(*dev) {
                    Ok(backend) => {
                        if backend.contains(&key) {
                            if source.is_none() {
                                source = Some(backend);
                            }
                        } else {
                            missing.push(backend);
                        }
                    }
                    Err(_) => report.replicas_unavailable += 1,
                }
            }
            match source {
                None => report.objects_lost += 1,
                Some(src) => {
                    for target in missing {
                        let obj = src.get(&key)?;
                        target.put(&key, obj)?;
                        report.replicas_restored += 1;
                    }
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthService;
    use crate::path::ObjectPath;
    use crate::proxy::ProxyServer;
    use crate::request::Request;
    use crate::ring::RingBuilder;
    use bytes::Bytes;

    struct Fixture {
        proxy: ProxyServer,
        replicator: Replicator,
        ring: Arc<RwLock<Ring>>,
        servers: Arc<HashMap<u32, Arc<ObjectServer>>>,
    }

    fn fixture() -> Fixture {
        let mut b = RingBuilder::new(6, 3);
        for node in 0..5u32 {
            b.add_device(node, node, 1.0);
        }
        let ring = Arc::new(RwLock::new(b.build().unwrap()));
        let mut servers = HashMap::new();
        for node in 0..5u32 {
            let devs: Vec<_> = ring
                .read()
                .devices()
                .iter()
                .filter(|d| d.node == node)
                .map(|d| d.id)
                .collect();
            servers.insert(node, Arc::new(ObjectServer::with_mem_devices(node, &devs)));
        }
        let servers = Arc::new(servers);
        let containers = Arc::new(ContainerService::new());
        containers.create_container("a", "c");
        let proxy = ProxyServer::new(
            0,
            ring.clone(),
            servers.clone(),
            containers.clone(),
            Arc::new(AuthService::new()),
            false,
        );
        let replicator = Replicator::new(ring.clone(), servers.clone(), containers);
        Fixture { proxy, replicator, ring, servers }
    }

    fn path(i: usize) -> ObjectPath {
        ObjectPath::new("a", "c", format!("obj-{i}")).unwrap()
    }

    #[test]
    fn clean_cluster_needs_no_repair() {
        let f = fixture();
        for i in 0..20 {
            f.proxy
                .handle(Request::put(path(i), Bytes::from_static(b"payload")))
                .unwrap();
        }
        let report = f.replicator.repair().unwrap();
        assert_eq!(report.objects_checked, 20);
        assert_eq!(report.replicas_restored, 0);
        assert_eq!(report.objects_lost, 0);
    }

    #[test]
    fn repairs_writes_missed_during_outage() {
        let f = fixture();
        // Down node 2, write (quorum 2/3 still achievable for most objects).
        f.servers[&2].set_down(true);
        let mut stored = 0;
        for i in 0..30 {
            if f.proxy
                .handle(Request::put(path(i), Bytes::from_static(b"payload")))
                .is_ok()
            {
                stored += 1;
            }
        }
        assert!(stored > 0);
        f.servers[&2].set_down(false);
        let report = f.replicator.repair().unwrap();
        assert!(
            report.replicas_restored > 0,
            "expected under-replicated objects: {report:?}"
        );
        // Second pass is clean.
        let again = f.replicator.repair().unwrap();
        assert_eq!(again.replicas_restored, 0);
        // Every replica of every object now present with the data.
        let ring = f.ring.read();
        for i in 0..stored {
            let key = path(i).ring_key();
            for dev in ring.lookup(&key) {
                let node = ring.device(*dev).node;
                let backend = f.servers[&node].backend(*dev).unwrap();
                assert!(backend.contains(&key), "replica {dev:?} missing {key}");
            }
        }
    }

    #[test]
    fn reports_unavailable_replicas_while_down() {
        let f = fixture();
        f.proxy
            .handle(Request::put(path(0), Bytes::from_static(b"x")))
            .unwrap();
        f.servers[&0].set_down(true);
        f.servers[&1].set_down(true);
        let report = f.replicator.repair().unwrap();
        // Object may or may not have replicas on the downed nodes, but the
        // pass must not error and must check the object.
        assert_eq!(report.objects_checked, 1);
        assert_eq!(report.objects_lost, 0);
    }
}
