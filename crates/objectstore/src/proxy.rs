//! Proxy servers: authentication, routing, replication fan-out, listings.
//!
//! Swift proxies "are in charge of authentication, authorization and access
//! control enforcement of storage requests. Upon reception of a valid request,
//! a proxy server routes it to the corresponding object servers". The
//! container/account metadata service lives with the proxies here, mirroring
//! the paper's testbed where "container and account rings were defined over
//! ... the 6 proxies".

use crate::auth::AuthService;
use crate::health::NodeHealth;
use crate::hedge::{self, note_read_failure};
use crate::middleware::Pipeline;
use crate::objserver::{ObjectServer, STAGE_HEADER, STAGE_PROXY};
use crate::path::ObjectPath;
use crate::request::{Method, Request, Response};
use crate::ring::{DeviceId, Ring};
use parking_lot::RwLock;
use scoop_common::telemetry::{self, names, ScopedCounter};
use scoop_common::{headers, stream, Result, ScoopError};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// One entry in a container listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Object name within the container.
    pub name: String,
    /// Payload size in bytes.
    pub size: u64,
    /// Content fingerprint.
    pub etag: String,
}

/// Account + container metadata: which containers exist, what objects they
/// hold. Shared across all proxies.
#[derive(Debug, Default)]
pub struct ContainerService {
    containers: RwLock<BTreeMap<String, BTreeSet<String>>>,
    listings: RwLock<BTreeMap<(String, String), BTreeMap<String, ObjectRecord>>>,
}

impl ContainerService {
    /// Create an empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a container (idempotent).
    pub fn create_container(&self, account: &str, container: &str) {
        self.containers
            .write()
            .entry(account.to_string())
            .or_default()
            .insert(container.to_string());
        self.listings
            .write()
            .entry((account.to_string(), container.to_string()))
            .or_default();
    }

    /// Delete a container; fails when non-empty or absent.
    pub fn delete_container(&self, account: &str, container: &str) -> Result<()> {
        let key = (account.to_string(), container.to_string());
        let mut listings = self.listings.write();
        match listings.get(&key) {
            None => return Err(ScoopError::NotFound(format!("container /{account}/{container}"))),
            Some(objs) if !objs.is_empty() => {
                return Err(ScoopError::Conflict(format!(
                    "container /{account}/{container} is not empty"
                )))
            }
            Some(_) => {
                listings.remove(&key);
            }
        }
        if let Some(set) = self.containers.write().get_mut(account) {
            set.remove(container);
        }
        Ok(())
    }

    /// True when the container exists.
    pub fn container_exists(&self, account: &str, container: &str) -> bool {
        self.listings
            .read()
            .contains_key(&(account.to_string(), container.to_string()))
    }

    /// Containers of an account.
    pub fn list_containers(&self, account: &str) -> Vec<String> {
        self.containers
            .read()
            .get(account)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Objects in a container, optionally filtered by name prefix.
    pub fn list_objects(
        &self,
        account: &str,
        container: &str,
        prefix: Option<&str>,
    ) -> Result<Vec<ObjectRecord>> {
        let listings = self.listings.read();
        let objs = listings
            .get(&(account.to_string(), container.to_string()))
            .ok_or_else(|| ScoopError::NotFound(format!("container /{account}/{container}")))?;
        Ok(objs
            .values()
            .filter(|r| prefix.is_none_or(|p| r.name.starts_with(p)))
            .cloned()
            .collect())
    }

    /// Record a successful object PUT.
    pub fn record_put(&self, path: &ObjectPath, size: u64, etag: &str) {
        if let Some(objs) = self
            .listings
            .write()
            .get_mut(&(path.account.clone(), path.container.clone()))
        {
            objs.insert(
                path.object.clone(),
                ObjectRecord { name: path.object.clone(), size, etag: etag.to_string() },
            );
        }
    }

    /// Record a successful object DELETE.
    pub fn record_delete(&self, path: &ObjectPath) {
        if let Some(objs) = self
            .listings
            .write()
            .get_mut(&(path.account.clone(), path.container.clone()))
        {
            objs.remove(&path.object);
        }
    }

    /// Per-container statistics (object count, total logical bytes) — the
    /// Swift `HEAD /account/container` numbers.
    pub fn container_stats(&self, account: &str, container: &str) -> Result<(u64, u64)> {
        let listings = self.listings.read();
        let objs = listings
            .get(&(account.to_string(), container.to_string()))
            .ok_or_else(|| ScoopError::NotFound(format!("container /{account}/{container}")))?;
        let count = objs.len() as u64;
        let bytes = objs.values().map(|r| r.size).sum();
        Ok((count, bytes))
    }

    /// All object paths known to the service (replicator audit input).
    pub fn all_objects(&self) -> Vec<(ObjectPath, u64)> {
        let listings = self.listings.read();
        let mut out = Vec::new();
        for ((account, container), objs) in listings.iter() {
            for rec in objs.values() {
                if let Ok(p) = ObjectPath::new(account.clone(), container.clone(), rec.name.clone())
                {
                    out.push((p, rec.size));
                }
            }
        }
        out
    }
}

/// Counters for proxy throughput (drives the Fig. 9 network series). Each
/// is a [`ScopedCounter`]: per-proxy values stay exact while every increment
/// also feeds the process-wide `scoop_proxy_*` registry metric.
#[derive(Debug)]
pub struct ProxyStats {
    /// Requests routed.
    pub requests: ScopedCounter,
    /// Body bytes relayed toward clients.
    pub bytes_to_clients: ScopedCounter,
    /// Read requests re-routed to another replica after a retryable
    /// failure (the store's first line of defence under faults).
    pub replica_failovers: ScopedCounter,
    /// Hedge requests launched: a second replica raced after the first
    /// stayed silent past the hedge threshold.
    pub hedged_gets: ScopedCounter,
    /// Hedged reads where a hedge (not the first replica) answered first.
    pub hedge_wins: ScopedCounter,
}

impl Default for ProxyStats {
    fn default() -> Self {
        ProxyStats {
            requests: ScopedCounter::new(names::PROXY_REQUESTS),
            bytes_to_clients: ScopedCounter::new(names::PROXY_BYTES_TO_CLIENTS),
            replica_failovers: ScopedCounter::new(names::PROXY_REPLICA_FAILOVERS),
            hedged_gets: ScopedCounter::new(names::PROXY_HEDGED_GETS),
            hedge_wins: ScopedCounter::new(names::PROXY_HEDGE_WINS),
        }
    }
}

/// A proxy server.
pub struct ProxyServer {
    /// Proxy id (0-based).
    pub id: u32,
    ring: Arc<RwLock<Ring>>,
    servers: Arc<HashMap<u32, Arc<ObjectServer>>>,
    containers: Arc<ContainerService>,
    auth: Arc<AuthService>,
    auth_enabled: bool,
    pipeline: RwLock<Pipeline>,
    /// Cluster-shared per-node circuit breakers (reads only).
    health: Option<Arc<NodeHealth>>,
    /// Race a second replica after this long without a first response.
    hedge_after: Option<Duration>,
    /// Throughput counters.
    pub stats: ProxyStats,
}

impl ProxyServer {
    /// Assemble a proxy.
    pub fn new(
        id: u32,
        ring: Arc<RwLock<Ring>>,
        servers: Arc<HashMap<u32, Arc<ObjectServer>>>,
        containers: Arc<ContainerService>,
        auth: Arc<AuthService>,
        auth_enabled: bool,
    ) -> Self {
        ProxyServer {
            id,
            ring,
            servers,
            containers,
            auth,
            auth_enabled,
            pipeline: RwLock::new(Pipeline::new()),
            health: None,
            hedge_after: None,
            stats: ProxyStats::default(),
        }
    }

    /// Builder: consult (and feed) the given circuit-breaker registry for
    /// replica reads. One registry is shared across all proxies of a
    /// cluster so every replica outcome trains the same breakers.
    pub fn with_health(mut self, health: Arc<NodeHealth>) -> Self {
        self.health = Some(health);
        self
    }

    /// Builder: enable hedged GETs — after `hedge_after` without a response
    /// from the current replica, race the next one and stream back
    /// whichever answers first.
    pub fn with_hedging(mut self, hedge_after: Duration) -> Self {
        self.hedge_after = Some(hedge_after);
        self
    }

    /// Install the proxy-stage middleware pipeline.
    pub fn set_pipeline(&self, pipeline: Pipeline) {
        *self.pipeline.write() = pipeline;
    }

    fn authorize(&self, req: &Request) -> Result<()> {
        if !self.auth_enabled {
            return Ok(());
        }
        let token = req
            .headers
            .get(headers::AUTH_TOKEN)
            .ok_or_else(|| ScoopError::Unauthorized("missing X-Auth-Token".into()))?;
        match self.auth.validate(token) {
            Some(account) if account == req.path.account => Ok(()),
            Some(account) => Err(ScoopError::Unauthorized(format!(
                "token for account {account} cannot access {}",
                req.path.account
            ))),
            None => Err(ScoopError::Unauthorized("invalid token".into())),
        }
    }

    /// Handle a client request: auth → proxy middleware → route to replicas.
    pub fn handle(&self, mut req: Request) -> Result<Response> {
        self.authorize(&req)?;
        req.deadline
            .check(&format!("proxy {} {:?}", self.id, req.method))?;
        self.stats.requests.inc();
        let _span = telemetry::span(
            req.headers.get(headers::TRACE),
            telemetry::layers::PROXY,
            format!("proxy {} {:?} {}", self.id, req.method, req.path.ring_key()),
        );
        req.headers.set(STAGE_HEADER, STAGE_PROXY);
        let pipeline = self.pipeline.read().clone();
        pipeline.execute(req, &|req: Request| self.route(req))
    }

    /// The `GET /info` endpoint: a plain-text dump of the process-wide
    /// telemetry snapshot (Swift's recon/info analogue).
    pub fn info(&self) -> Response {
        let text = telemetry::snapshot().to_text();
        let len = text.len();
        Response::ok(stream::chunked(bytes::Bytes::from(text), crate::objserver::RESPONSE_CHUNK))
            .with_header("content-type", "text/plain")
            .with_header("content-length", len.to_string())
    }

    /// Quorum size for writes.
    fn quorum(&self) -> usize {
        self.ring.read().replicas() / 2 + 1
    }

    fn route(&self, req: Request) -> Result<Response> {
        let ring = self.ring.read();
        let key = req.path.ring_key();
        let replica_devices: Vec<_> = ring.lookup(&key).to_vec();
        let devices: Vec<(crate::ring::DeviceId, u32)> = replica_devices
            .iter()
            .map(|&d| (d, ring.device(d).node))
            .collect();
        drop(ring);

        match req.method {
            Method::Put => {
                if !self
                    .containers
                    .container_exists(&req.path.account, &req.path.container)
                {
                    return Err(ScoopError::NotFound(format!(
                        "container {}",
                        req.path.container_path()
                    )));
                }
                // The authoritative size is the body the proxy fanned out —
                // not whatever a replica echoes back. A replica reporting a
                // different stored length did not durably store this object
                // and must not count toward the write quorum.
                let size = req.body.as_ref().map(|b| b.len() as u64).unwrap_or(0);
                let mut last_err = None;
                let mut oks = 0usize;
                let mut etag = String::new();
                for (dev, node) in &devices {
                    let server = self.server(*node)?;
                    match server.handle(*dev, req.clone()) {
                        Ok(resp) => {
                            match resp.headers.get("content-length").map(|l| l.parse::<u64>()) {
                                Some(Ok(stored)) if stored != size => {
                                    last_err = Some(ScoopError::Internal(format!(
                                        "replica on node {node} stored {stored} of {size} bytes"
                                    )));
                                    continue;
                                }
                                Some(Err(_)) => {
                                    last_err = Some(ScoopError::Internal(format!(
                                        "replica on node {node} returned a malformed length"
                                    )));
                                    continue;
                                }
                                _ => {}
                            }
                            oks += 1;
                            if let Some(e) = resp.headers.get("etag") {
                                etag = e.to_string();
                            }
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                if oks >= self.quorum() {
                    self.containers.record_put(&req.path, size, &etag);
                    Ok(Response::created().with_header("etag", etag))
                } else {
                    Err(last_err.unwrap_or_else(|| {
                        ScoopError::Internal("write quorum not met".into())
                    }))
                }
            }
            Method::Get | Method::Head => self.fetch_read(&req, &devices, &key),
            Method::Delete => {
                let mut oks = 0usize;
                let mut last_err = None;
                for (dev, node) in &devices {
                    match self
                        .server(*node)
                        .and_then(|s| s.handle(*dev, req.clone()))
                    {
                        Ok(_) => oks += 1,
                        Err(e) => last_err = Some(e),
                    }
                }
                // Deletes need the same write quorum as PUT/POST: acking a
                // delete that only reached a minority lets the object
                // "resurrect" from the untouched majority after a repair
                // pass, while the listing already dropped it.
                if oks >= self.quorum() {
                    self.containers.record_delete(&req.path);
                    Ok(Response::no_content())
                } else {
                    Err(last_err.unwrap_or(ScoopError::NotFound(key)))
                }
            }
            Method::Post => {
                let mut oks = 0usize;
                let mut last_err = None;
                for (dev, node) in &devices {
                    match self
                        .server(*node)
                        .and_then(|s| s.handle(*dev, req.clone()))
                    {
                        Ok(_) => oks += 1,
                        Err(e) => last_err = Some(e),
                    }
                }
                if oks >= self.quorum() {
                    Ok(Response::no_content())
                } else {
                    Err(last_err
                        .unwrap_or_else(|| ScoopError::Internal("post quorum not met".into())))
                }
            }
        }
    }

    /// Dispatch a replica read: breaker admission → (optionally hedged)
    /// fan-out over the admitted candidates.
    fn fetch_read(
        &self,
        req: &Request,
        devices: &[(DeviceId, u32)],
        key: &str,
    ) -> Result<Response> {
        let mut last_err: Option<ScoopError> = None;
        let mut candidates: Vec<(DeviceId, u32, Arc<ObjectServer>)> = Vec::new();
        for &(dev, node) in devices {
            // Replicas behind an open breaker are skipped proactively; the
            // error that tripped the breaker (always retryable) stands in
            // for the request we did not send, so a fully short-circuited
            // GET still reports a retryable condition, never a fake 404.
            if let Some(h) = &self.health {
                if !h.admit(node) {
                    if let Some(e) = h.last_error(node) {
                        note_read_failure(&mut last_err, e);
                    }
                    continue;
                }
            }
            match self.server(node) {
                Ok(s) => candidates.push((dev, node, s)),
                Err(e) => last_err = Some(e),
            }
        }
        match self.hedge_after.filter(|_| candidates.len() >= 2) {
            Some(after) => self.fetch_hedged(req, candidates, after, last_err, key),
            None => self.fetch_sequential(req, candidates, last_err, key),
        }
    }

    /// One replica at a time (PR 1 failover semantics), with every outcome
    /// feeding the breaker.
    fn fetch_sequential(
        &self,
        req: &Request,
        candidates: Vec<(DeviceId, u32, Arc<ObjectServer>)>,
        mut last_err: Option<ScoopError>,
        key: &str,
    ) -> Result<Response> {
        for (dev, node, server) in candidates {
            req.deadline.check(&format!("proxy read {key}"))?;
            let result = server.handle(dev, req.clone());
            Self::train_breaker(&self.health, node, &result);
            match result {
                Ok(resp) => {
                    self.count_read(&resp);
                    return Ok(resp);
                }
                // Retryable errors (server down / IO) → next replica.
                // NotFound also moves on: a replica that missed an
                // under-replicated PUT (write quorum met elsewhere, repair
                // not yet run) must not mask the copies the others hold.
                Err(e) if e.is_retryable() || matches!(e, ScoopError::NotFound(_)) => {
                    self.stats.replica_failovers.inc();
                    note_read_failure(&mut last_err, e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| ScoopError::NotFound(format!("object {key}"))))
    }

    /// Hedged read: dispatch the first replica on its own thread; if it
    /// stays silent past the hedge threshold, race the next one. The first
    /// successful byte stream wins; losers finish (and train the breaker)
    /// in the background. The race itself lives in [`crate::hedge`] so the
    /// loom suite can model-check its winner selection.
    fn fetch_hedged(
        &self,
        req: &Request,
        candidates: Vec<(DeviceId, u32, Arc<ObjectServer>)>,
        hedge_after: Duration,
        last_err: Option<ScoopError>,
        key: &str,
    ) -> Result<Response> {
        let attempts: Vec<hedge::Attempt<Response>> = candidates
            .into_iter()
            .map(|(dev, node, server)| {
                let req = req.clone();
                let health = self.health.clone();
                Box::new(move || {
                    let result = server.handle(dev, req);
                    Self::train_breaker(&health, node, &result);
                    result
                }) as hedge::Attempt<Response>
            })
            .collect();
        let outcome = hedge::race(attempts, hedge_after, req.deadline, key, last_err);
        self.stats.hedged_gets.add(outcome.hedges_launched);
        self.stats.replica_failovers.add(outcome.failovers);
        match outcome.result {
            Ok((idx, resp)) => {
                if idx > 0 {
                    self.stats.hedge_wins.inc();
                }
                self.count_read(&resp);
                Ok(resp)
            }
            Err(e) => Err(e),
        }
    }

    /// Feed one replica-read outcome into the shared breaker registry. Only
    /// retryable failures indict a node's health: a 404 from a healthy
    /// replica is a data condition, not a node one.
    fn train_breaker(
        health: &Option<Arc<NodeHealth>>,
        node: u32,
        result: &Result<Response>,
    ) {
        if let Some(h) = health {
            match result {
                Ok(_) => h.record_success(node),
                Err(e) if e.is_retryable() => h.record_failure(node, e),
                Err(_) => {}
            }
        }
    }

    fn count_read(&self, resp: &Response) {
        if let Some(l) = resp.headers.get("content-length") {
            self.stats.bytes_to_clients.add(l.parse().unwrap_or(0));
        }
    }

    fn server(&self, node: u32) -> Result<Arc<ObjectServer>> {
        self.servers
            .get(&node)
            .cloned()
            .ok_or_else(|| ScoopError::Internal(format!("no object server for node {node}")))
    }

    /// The shared container service (listings, container management).
    pub fn containers(&self) -> &ContainerService {
        &self.containers
    }
}

impl std::fmt::Debug for ProxyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyServer").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingBuilder;
    use bytes::Bytes;

    fn make_proxy(auth_enabled: bool) -> (ProxyServer, Arc<AuthService>) {
        let mut builder = RingBuilder::new(6, 3);
        for node in 0..4u32 {
            for _ in 0..2 {
                builder.add_device(node, node, 1.0);
            }
        }
        let ring = Arc::new(RwLock::new(builder.build().unwrap()));
        let mut servers = HashMap::new();
        for node in 0..4u32 {
            let devs: Vec<_> = ring
                .read()
                .devices()
                .iter()
                .filter(|d| d.node == node)
                .map(|d| d.id)
                .collect();
            servers.insert(node, Arc::new(ObjectServer::with_mem_devices(node, &devs)));
        }
        let auth = Arc::new(AuthService::new());
        auth.register_user("AUTH_gp", "u", "k");
        let proxy = ProxyServer::new(
            0,
            ring,
            Arc::new(servers),
            Arc::new(ContainerService::new()),
            auth.clone(),
            auth_enabled,
        );
        (proxy, auth)
    }

    fn p(obj: &str) -> ObjectPath {
        ObjectPath::new("AUTH_gp", "meters", obj).unwrap()
    }

    #[test]
    fn put_requires_container() {
        let (proxy, _) = make_proxy(false);
        let err = proxy
            .handle(Request::put(p("x.csv"), Bytes::from_static(b"d")))
            .unwrap_err();
        assert_eq!(err.kind(), "not_found");
    }

    #[test]
    fn put_get_delete_with_listing() {
        let (proxy, _) = make_proxy(false);
        proxy.containers().create_container("AUTH_gp", "meters");
        let resp = proxy
            .handle(Request::put(p("x.csv"), Bytes::from_static(b"hello")))
            .unwrap();
        assert_eq!(resp.status, 201);

        let listing = proxy
            .containers()
            .list_objects("AUTH_gp", "meters", None)
            .unwrap();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].size, 5);

        let got = proxy.handle(Request::get(p("x.csv"))).unwrap();
        assert_eq!(got.read_body().unwrap(), "hello");

        proxy.handle(Request::delete(p("x.csv"))).unwrap();
        assert!(proxy.handle(Request::get(p("x.csv"))).is_err());
        assert!(proxy
            .containers()
            .list_objects("AUTH_gp", "meters", None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn listing_prefix_filter_and_container_lifecycle() {
        let (proxy, _) = make_proxy(false);
        let c = proxy.containers();
        c.create_container("AUTH_gp", "meters");
        proxy
            .handle(Request::put(p("2015/01/a.csv"), Bytes::from_static(b"1")))
            .unwrap();
        proxy
            .handle(Request::put(p("2015/02/b.csv"), Bytes::from_static(b"2")))
            .unwrap();
        assert_eq!(
            c.list_objects("AUTH_gp", "meters", Some("2015/01/")).unwrap().len(),
            1
        );
        assert_eq!(c.list_containers("AUTH_gp"), vec!["meters"]);
        // Non-empty container refuses deletion.
        assert!(c.delete_container("AUTH_gp", "meters").is_err());
        proxy.handle(Request::delete(p("2015/01/a.csv"))).unwrap();
        proxy.handle(Request::delete(p("2015/02/b.csv"))).unwrap();
        c.delete_container("AUTH_gp", "meters").unwrap();
        assert!(!c.container_exists("AUTH_gp", "meters"));
        assert!(c.delete_container("AUTH_gp", "meters").is_err());
    }

    #[test]
    fn auth_is_enforced() {
        let (proxy, auth) = make_proxy(true);
        proxy.containers().create_container("AUTH_gp", "meters");
        // No token.
        assert_eq!(
            proxy
                .handle(Request::get(p("x.csv")))
                .unwrap_err()
                .kind(),
            "unauthorized"
        );
        // Bad token.
        assert_eq!(
            proxy
                .handle(Request::get(p("x.csv")).with_header(headers::AUTH_TOKEN, "nope"))
                .unwrap_err()
                .kind(),
            "unauthorized"
        );
        // Valid token, wrong account.
        auth.register_user("AUTH_other", "u", "k");
        let wrong = auth.issue_token("AUTH_other", "u", "k").unwrap();
        assert_eq!(
            proxy
                .handle(Request::get(p("x.csv")).with_header(headers::AUTH_TOKEN, wrong))
                .unwrap_err()
                .kind(),
            "unauthorized"
        );
        // Valid token, right account (404 now, not 401).
        let tok = auth.issue_token("AUTH_gp", "u", "k").unwrap();
        assert_eq!(
            proxy
                .handle(Request::get(p("x.csv")).with_header(headers::AUTH_TOKEN, tok))
                .unwrap_err()
                .kind(),
            "not_found"
        );
    }

    #[test]
    fn get_survives_replica_failures() {
        let (proxy, _) = make_proxy(false);
        proxy.containers().create_container("AUTH_gp", "meters");
        proxy
            .handle(Request::put(p("x.csv"), Bytes::from_static(b"resilient")))
            .unwrap();
        // Down the primary replica's server.
        let ring = proxy.ring.read();
        let primary = ring.lookup(&p("x.csv").ring_key())[0];
        let node = ring.device(primary).node;
        drop(ring);
        proxy.servers[&node].set_down(true);
        let got = proxy.handle(Request::get(p("x.csv"))).unwrap();
        assert_eq!(got.read_body().unwrap(), "resilient");
    }

    #[test]
    fn delete_requires_write_quorum() {
        let (proxy, _) = make_proxy(false);
        proxy.containers().create_container("AUTH_gp", "meters");
        proxy
            .handle(Request::put(p("x.csv"), Bytes::from_static(b"durable")))
            .unwrap();
        // Down every node but one: at most one replica can ack the delete,
        // which is below the quorum of 2 — the delete must fail and the
        // listing must keep the object.
        let ring = proxy.ring.read();
        let survivor = ring.device(ring.lookup(&p("x.csv").ring_key())[0]).node;
        drop(ring);
        for (node, server) in proxy.servers.iter() {
            if *node != survivor {
                server.set_down(true);
            }
        }
        let err = proxy.handle(Request::delete(p("x.csv"))).unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(
            proxy
                .containers()
                .list_objects("AUTH_gp", "meters", None)
                .unwrap()
                .len(),
            1
        );
        // Once the nodes recover, the delete reaches quorum.
        for server in proxy.servers.values() {
            server.set_down(false);
        }
        proxy.handle(Request::delete(p("x.csv"))).unwrap();
        assert!(proxy
            .containers()
            .list_objects("AUTH_gp", "meters", None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn put_records_request_body_size() {
        let (proxy, _) = make_proxy(false);
        proxy.containers().create_container("AUTH_gp", "meters");
        proxy
            .handle(Request::put(p("x.csv"), Bytes::from_static(b"12345678")))
            .unwrap();
        let listing = proxy
            .containers()
            .list_objects("AUTH_gp", "meters", None)
            .unwrap();
        assert_eq!(listing[0].size, 8);
    }

    #[test]
    fn put_replica_size_mismatch_fails_that_replica() {
        use crate::middleware::{Handler, Middleware, Pipeline};
        // A middleware that lies about the stored length on one node,
        // standing in for a replica that dropped part of the body.
        struct ShortWriter;
        impl Middleware for ShortWriter {
            fn name(&self) -> &str {
                "short-writer"
            }
            fn handle(&self, req: Request, next: &dyn Handler) -> Result<Response> {
                let resp = next.call(req)?;
                Ok(resp.with_header("content-length", "1"))
            }
        }
        let (proxy, _) = make_proxy(false);
        proxy.containers().create_container("AUTH_gp", "meters");
        let ring = proxy.ring.read();
        let nodes: Vec<u32> = ring
            .lookup(&p("x.csv").ring_key())
            .iter()
            .map(|&d| ring.device(d).node)
            .collect();
        drop(ring);
        // One lying replica out of three: quorum (2) still holds.
        let mut pipe = Pipeline::new();
        pipe.push(Arc::new(ShortWriter));
        proxy.servers[&nodes[0]].set_pipeline(pipe.clone());
        proxy
            .handle(Request::put(p("x.csv"), Bytes::from_static(b"payload")))
            .unwrap();
        assert_eq!(
            proxy.containers().list_objects("AUTH_gp", "meters", None).unwrap()[0].size,
            7
        );
        // Two lying replicas: the mismatches break quorum and the PUT fails.
        proxy.servers[&nodes[1]].set_pipeline(pipe);
        let err = proxy
            .handle(Request::put(p("x.csv"), Bytes::from_static(b"payload")))
            .unwrap_err();
        assert!(err.to_string().contains("stored 1 of 7 bytes"), "{err}");
    }

    #[test]
    fn put_fails_without_quorum() {
        let (proxy, _) = make_proxy(false);
        proxy.containers().create_container("AUTH_gp", "meters");
        for s in proxy.servers.values() {
            s.set_down(true);
        }
        assert!(proxy
            .handle(Request::put(p("x.csv"), Bytes::from_static(b"d")))
            .is_err());
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn container_stats_track_puts_and_deletes() {
        let c = ContainerService::new();
        c.create_container("a", "meters");
        assert_eq!(c.container_stats("a", "meters").unwrap(), (0, 0));
        let p1 = ObjectPath::new("a", "meters", "x").unwrap();
        let p2 = ObjectPath::new("a", "meters", "y").unwrap();
        c.record_put(&p1, 100, "e1");
        c.record_put(&p2, 250, "e2");
        assert_eq!(c.container_stats("a", "meters").unwrap(), (2, 350));
        // Overwrite replaces, not accumulates.
        c.record_put(&p1, 40, "e3");
        assert_eq!(c.container_stats("a", "meters").unwrap(), (2, 290));
        c.record_delete(&p2);
        assert_eq!(c.container_stats("a", "meters").unwrap(), (1, 40));
        assert!(c.container_stats("a", "ghost").is_err());
    }
}
