//! WSGI-like middleware pipeline.
//!
//! "Both proxies and storage nodes include a WSGI pipeline that enables
//! developers to configure middlewares that intercept object requests with
//! environment information." The Storlet engine (in `scoop-storlets`) plugs in
//! here, at either tier, without the store knowing anything about it — the
//! paper's requirement that "the instrumented object store is oblivious to
//! their execution".

use crate::request::{Request, Response};
use scoop_common::Result;
use std::sync::Arc;

/// The continuation a middleware invokes to pass the request on.
pub trait Handler: Sync {
    /// Process the request.
    fn call(&self, req: Request) -> Result<Response>;
}

impl<F> Handler for F
where
    F: Fn(Request) -> Result<Response> + Sync,
{
    fn call(&self, req: Request) -> Result<Response> {
        self(req)
    }
}

/// A request interceptor. Middlewares may rewrite the request, short-circuit,
/// and/or transform the response (including wrapping its body stream).
pub trait Middleware: Send + Sync {
    /// Name for diagnostics and pipeline introspection.
    fn name(&self) -> &str;
    /// Handle the request, calling `next` zero or one times.
    fn handle(&self, req: Request, next: &dyn Handler) -> Result<Response>;
}

/// An ordered middleware chain.
#[derive(Clone, Default)]
pub struct Pipeline {
    middlewares: Vec<Arc<dyn Middleware>>,
}

impl Pipeline {
    /// An empty pipeline (requests flow straight to the terminal handler).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a middleware (runs after the ones already added).
    pub fn push(&mut self, mw: Arc<dyn Middleware>) {
        self.middlewares.push(mw);
    }

    /// Names of installed middlewares, in execution order.
    pub fn names(&self) -> Vec<&str> {
        self.middlewares.iter().map(|m| m.name()).collect()
    }

    /// Run `req` through the chain into `terminal`.
    pub fn execute(&self, req: Request, terminal: &dyn Handler) -> Result<Response> {
        struct Chain<'a> {
            rest: &'a [Arc<dyn Middleware>],
            terminal: &'a dyn Handler,
        }
        impl Handler for Chain<'_> {
            fn call(&self, req: Request) -> Result<Response> {
                match self.rest.split_first() {
                    None => self.terminal.call(req),
                    Some((head, tail)) => {
                        head.handle(req, &Chain { rest: tail, terminal: self.terminal })
                    }
                }
            }
        }
        Chain { rest: &self.middlewares, terminal }.call(req)
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline").field("middlewares", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::ObjectPath;
    use bytes::Bytes;
    use scoop_common::stream;

    struct Tag(&'static str);

    impl Middleware for Tag {
        fn name(&self) -> &str {
            self.0
        }
        fn handle(&self, mut req: Request, next: &dyn Handler) -> Result<Response> {
            let trail = req.headers.get("x-trail").unwrap_or("").to_string();
            req.headers.set("x-trail", format!("{trail}>{}", self.0));
            let resp = next.call(req)?;
            Ok(resp.with_header(format!("x-seen-{}", self.0).as_str(), "1"))
        }
    }

    struct ShortCircuit;

    impl Middleware for ShortCircuit {
        fn name(&self) -> &str {
            "short"
        }
        fn handle(&self, _req: Request, _next: &dyn Handler) -> Result<Response> {
            Ok(Response { status: 403, headers: Default::default(), body: stream::empty() })
        }
    }

    fn get_req() -> Request {
        Request::get(ObjectPath::new("a", "c", "o").unwrap())
    }

    #[test]
    fn executes_in_order_and_wraps_response() {
        let mut p = Pipeline::new();
        p.push(Arc::new(Tag("one")));
        p.push(Arc::new(Tag("two")));
        assert_eq!(p.names(), vec!["one", "two"]);
        let resp = p
            .execute(get_req(), &|req: Request| {
                assert_eq!(req.headers.get("x-trail"), Some(">one>two"));
                Ok(Response::ok(stream::once(Bytes::from_static(b"body"))))
            })
            .unwrap();
        assert_eq!(resp.headers.get("x-seen-one"), Some("1"));
        assert_eq!(resp.headers.get("x-seen-two"), Some("1"));
        assert_eq!(resp.read_body().unwrap(), "body");
    }

    #[test]
    fn empty_pipeline_is_passthrough() {
        let p = Pipeline::new();
        let resp = p
            .execute(get_req(), &|_req: Request| Ok(Response::no_content()))
            .unwrap();
        assert_eq!(resp.status, 204);
    }

    #[test]
    fn middleware_can_short_circuit() {
        let mut p = Pipeline::new();
        p.push(Arc::new(ShortCircuit));
        p.push(Arc::new(Tag("never")));
        let resp = p
            .execute(get_req(), &|_req: Request| {
                panic!("terminal must not run");
            })
            .unwrap();
        assert_eq!(resp.status, 403);
        assert!(resp.headers.get("x-seen-never").is_none());
    }
}
