//! Per-node health tracking and the proxy's circuit breaker.
//!
//! PR 1's replica failover rediscovers a dead or failing node by paying its
//! timeout on *every* GET. The breaker makes that discovery stick: each
//! node carries a closed → open → half-open state machine fed by the
//! outcome of every replica request, and the proxy consults it before
//! dispatching a read so replicas on repeatedly-failing nodes are skipped
//! proactively.
//!
//! * **Closed** — healthy; failures are counted, successes reset the count.
//! * **Open** — after `failure_threshold` consecutive failures the node is
//!   skipped outright for `open_for`. The error that tripped the breaker is
//!   remembered so a GET whose replicas were all short-circuited still
//!   surfaces a *retryable* error, never a fabricated not-found.
//! * **Half-open** — once `open_for` elapses, probe traffic is admitted
//!   again: one success closes the breaker (re-admission is unconditional —
//!   no permanent lockout), one failure re-opens it.
//!
//! The breaker is consulted for reads only. Writes always try every
//! assigned replica: skipping one would silently shrink the write quorum.
//!
//! All transitions take an explicit `now: Instant` (with `Instant::now()`
//! convenience wrappers) so the property tests can drive synthetic time.

use scoop_common::ScoopError;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

// Under `--cfg loom` the lock and the skip counter come from the model
// checker, so `tests/loom.rs` can exhaustively interleave concurrent
// breaker transitions. The loom Mutex mirrors parking_lot's guard-returning
// `lock()`, so the state-machine code below is identical in both builds.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
use loom::sync::Mutex;
#[cfg(not(loom))]
use parking_lot::Mutex;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Circuit-breaker tuning shared by every node's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a node's breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker short-circuits before admitting a probe.
    pub open_for: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_for: Duration::from_millis(50),
        }
    }
}

/// One node's breaker state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// Healthy; tracks the current run of consecutive failures.
    Closed { consecutive_failures: u32 },
    /// Tripped; short-circuits requests until the probe time.
    Open { until: Instant },
    /// Probing; the next outcome decides between closed and open.
    HalfOpen,
}

#[derive(Debug)]
struct NodeState {
    state: State,
    /// Message of the failure that tripped (or last fed) the breaker.
    last_error: Option<String>,
}

impl NodeState {
    fn new() -> NodeState {
        NodeState { state: State::Closed { consecutive_failures: 0 }, last_error: None }
    }
}

/// Cluster-wide per-node health registry. One instance is shared by all
/// proxies so every replica outcome, wherever observed, feeds the same
/// breaker.
#[derive(Debug)]
pub struct NodeHealth {
    config: BreakerConfig,
    nodes: Mutex<HashMap<u32, NodeState>>,
    skips: AtomicU64,
    /// Registry mirror of `skips`. Absent under loom: the model checker
    /// exercises the state machine, not the process-global telemetry.
    #[cfg(not(loom))]
    skips_global: scoop_common::telemetry::Counter,
}

impl NodeHealth {
    /// Build a registry with the given tuning.
    pub fn new(config: BreakerConfig) -> Arc<NodeHealth> {
        Arc::new(NodeHealth {
            config,
            nodes: Mutex::new(HashMap::new()),
            skips: AtomicU64::new(0),
            #[cfg(not(loom))]
            skips_global: scoop_common::telemetry::counter(
                scoop_common::telemetry::names::HEALTH_BREAKER_SKIPS,
            ),
        })
    }

    /// The tuning this registry runs.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Read requests short-circuited by an open breaker.
    pub fn skips(&self) -> u64 {
        self.skips.load(Ordering::Relaxed)
    }

    /// Should a read be dispatched to `node` right now?
    pub fn admit(&self, node: u32) -> bool {
        self.admit_at(node, Instant::now())
    }

    /// [`NodeHealth::admit`] on an explicit clock. An open breaker whose
    /// window has elapsed moves to half-open and admits the probe, so a
    /// recovered node is always re-admitted eventually.
    pub fn admit_at(&self, node: u32, now: Instant) -> bool {
        let mut nodes = self.nodes.lock();
        let entry = nodes.entry(node).or_insert_with(NodeState::new);
        match entry.state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { until } => {
                if now >= until {
                    entry.state = State::HalfOpen;
                    true
                } else {
                    self.skips.fetch_add(1, Ordering::Relaxed);
                    #[cfg(not(loom))]
                    self.skips_global.inc();
                    false
                }
            }
        }
    }

    /// Record a successful replica request on `node`: closes the breaker
    /// from any state and clears the run of failures.
    pub fn record_success(&self, node: u32) {
        let mut nodes = self.nodes.lock();
        let entry = nodes.entry(node).or_insert_with(NodeState::new);
        entry.state = State::Closed { consecutive_failures: 0 };
        entry.last_error = None;
    }

    /// Record a failed replica request on `node`.
    pub fn record_failure(&self, node: u32, error: &ScoopError) {
        self.record_failure_at(node, Instant::now(), error);
    }

    /// [`NodeHealth::record_failure`] on an explicit clock.
    pub fn record_failure_at(&self, node: u32, now: Instant, error: &ScoopError) {
        let mut nodes = self.nodes.lock();
        let entry = nodes.entry(node).or_insert_with(NodeState::new);
        entry.last_error = Some(error.to_string());
        entry.state = match entry.state {
            State::Closed { consecutive_failures } => {
                let failures = consecutive_failures + 1;
                if failures >= self.config.failure_threshold {
                    State::Open { until: now + self.config.open_for }
                } else {
                    State::Closed { consecutive_failures: failures }
                }
            }
            // A failed probe re-opens the breaker for a fresh window.
            State::HalfOpen => State::Open { until: now + self.config.open_for },
            State::Open { until } => State::Open { until },
        };
    }

    /// The error remembered from the node's last failure, rebuilt as a
    /// *retryable* I/O error. A GET whose candidate replicas were all
    /// short-circuited reports this instead of a fabricated not-found, so
    /// upstream retry layers keep treating the condition as transient.
    pub fn last_error(&self, node: u32) -> Option<ScoopError> {
        self.nodes.lock().get(&node).and_then(|s| {
            s.last_error.as_ref().map(|msg| {
                ScoopError::Io(std::io::Error::other(format!(
                    "node {node} circuit open: {msg}"
                )))
            })
        })
    }

    /// True if `node`'s breaker is currently open on the given clock.
    pub fn is_open(&self, node: u32, now: Instant) -> bool {
        matches!(
            self.nodes.lock().get(&node).map(|s| &s.state),
            Some(State::Open { until }) if now < *until
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io_err() -> ScoopError {
        ScoopError::Io(std::io::Error::other("replica timed out"))
    }

    #[test]
    fn trips_after_threshold_and_short_circuits() {
        let health = NodeHealth::new(BreakerConfig::default());
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(health.admit_at(0, t0));
            health.record_failure_at(0, t0, &io_err());
        }
        assert!(!health.admit_at(0, t0), "breaker should be open");
        assert_eq!(health.skips(), 1);
        let err = health.last_error(0).expect("open breaker remembers its error");
        assert!(err.is_retryable(), "remembered error must stay retryable");
        assert!(err.to_string().contains("replica timed out"));
    }

    #[test]
    fn half_open_probe_success_closes() {
        let config = BreakerConfig { failure_threshold: 1, open_for: Duration::from_secs(5) };
        let health = NodeHealth::new(config);
        let t0 = Instant::now();
        health.record_failure_at(7, t0, &io_err());
        assert!(!health.admit_at(7, t0 + Duration::from_secs(1)));
        // Window elapsed: the probe is admitted, its success closes.
        assert!(health.admit_at(7, t0 + Duration::from_secs(6)));
        health.record_success(7);
        assert!(health.admit_at(7, t0 + Duration::from_secs(6)));
        assert!(health.last_error(7).is_none());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let config = BreakerConfig { failure_threshold: 1, open_for: Duration::from_secs(5) };
        let health = NodeHealth::new(config);
        let t0 = Instant::now();
        health.record_failure_at(2, t0, &io_err());
        let probe_time = t0 + Duration::from_secs(6);
        assert!(health.admit_at(2, probe_time));
        health.record_failure_at(2, probe_time, &io_err());
        assert!(!health.admit_at(2, probe_time + Duration::from_secs(1)));
        // ... but the fresh window still expires.
        assert!(health.admit_at(2, probe_time + Duration::from_secs(6)));
    }

    #[test]
    fn unknown_nodes_are_admitted() {
        let health = NodeHealth::new(BreakerConfig::default());
        assert!(health.admit(99));
        assert!(health.last_error(99).is_none());
    }

    #[test]
    fn success_resets_the_failure_run() {
        let health = NodeHealth::new(BreakerConfig { failure_threshold: 2, ..Default::default() });
        let t0 = Instant::now();
        health.record_failure_at(1, t0, &io_err());
        health.record_success(1);
        health.record_failure_at(1, t0, &io_err());
        assert!(health.admit_at(1, t0), "interleaved successes keep the breaker closed");
    }
}
