//! Deterministic fault injection for the storage tier.
//!
//! The chaos harness wraps every device backend in a [`ChaosBackend`] that
//! consults a shared [`FaultInjector`] before each operation. The injector
//! samples a seeded PRNG ([`scoop_common::rng::XorShift64`]), so a run with a
//! fixed [`FaultPlan`] replays the exact same fault sequence — a failing
//! chaos test reproduces byte-for-byte from its seed.
//!
//! Fault classes (Section "Fault model & retry semantics" in DESIGN.md):
//!
//! * **transient errors** — an operation fails once with a retryable
//!   [`ScoopError::Io`], like a dropped connection;
//! * **truncated bodies** — a read returns only a prefix of the payload while
//!   upstream headers still advertise the full length (detected by
//!   `scoop_common::stream::enforce_length`);
//! * **stalled reads** — a read blocks briefly before completing, modelling a
//!   slow disk or an overloaded server;
//! * **down windows** — a node rejects every operation while the injector's
//!   logical clock (a global op counter) is inside a configured window,
//!   modelling a reboot;
//! * **slow nodes** — every read served by a configured node is delayed by a
//!   fixed latency skew (the node still answers correctly), modelling a
//!   degraded disk or an overloaded server. This is the tail-latency class
//!   the proxy's hedged GETs and circuit breaker are built to absorb.
//!
//! Probabilistic faults respect `max_consecutive`: after that many
//! back-to-back injections the next operation is forced through cleanly, so
//! any retry budget larger than the cap is guaranteed to make progress.

use crate::backend::{ObjectMeta, StorageBackend, StoredObject};
use bytes::Bytes;
use parking_lot::Mutex;
use scoop_common::rng::XorShift64;
use scoop_common::{Result, ScoopError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A window of the injector's logical clock during which one node is down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DownWindow {
    /// Node whose backends reject operations.
    pub node: u32,
    /// First op count (inclusive) of the outage.
    pub from_op: u64,
    /// Last op count (exclusive) of the outage.
    pub to_op: u64,
}

/// A node whose reads are uniformly delayed by a latency skew.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowNode {
    /// Node whose reads are delayed.
    pub node: u32,
    /// Added latency per read on that node.
    pub delay: Duration,
}

/// Wire-level fault classes injected at the socket boundary by the TCP
/// data plane (`crate::net`). All rates default to zero, so in-process
/// clusters and plans written before the net plane existed are unaffected.
///
/// * **RST mid-response** — the server aborts the connection after writing
///   a prefix of the response frame;
/// * **partial write then stall** — a response prefix is written, then the
///   connection goes silent until the client's read timeout fires;
/// * **slowloris** — request bytes arrive at the server one at a time with
///   a delay in between, exercising the server's header-time guard;
/// * **garbage frames** — response bytes are corrupted so the client-side
///   decoder rejects the frame;
/// * **half-close** — the server shuts down its write side after reading
///   the request, so the client sees EOF where a response should start.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WireFaults {
    /// Probability the connection is aborted mid-response.
    pub rst_rate: f64,
    /// Probability a response is cut to a prefix followed by a stall.
    pub partial_rate: f64,
    /// How long a partial write stalls before the connection dies.
    pub partial_stall: Duration,
    /// Probability the server reads this request one byte at a time.
    pub slowloris_rate: f64,
    /// Per-byte delay of a slowloris read.
    pub slowloris_delay: Duration,
    /// Probability the response frame is corrupted.
    pub garbage_rate: f64,
    /// Probability the write side is closed before the response.
    pub half_close_rate: f64,
}

impl WireFaults {
    /// True when at least one wire fault class can fire.
    pub fn any(&self) -> bool {
        self.rst_rate > 0.0
            || self.partial_rate > 0.0
            || self.slowloris_rate > 0.0
            || self.garbage_rate > 0.0
            || self.half_close_rate > 0.0
    }
}

/// What faults to inject, with what probability, from what seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed; the injector derives its jitter stream from it.
    pub seed: u64,
    /// Probability that any backend operation fails with a transient error.
    pub error_rate: f64,
    /// Probability that a read returns a truncated body.
    pub truncate_rate: f64,
    /// Probability that a read stalls for [`FaultPlan::stall`] first.
    pub stall_rate: f64,
    /// How long a stalled read blocks.
    pub stall: Duration,
    /// Cap on back-to-back probabilistic faults; keep it strictly below the
    /// retry budget (`RetryPolicy::max_attempts`) or retries can be starved.
    pub max_consecutive: u32,
    /// Scheduled per-node outages on the op-counter clock.
    pub down_windows: Vec<DownWindow>,
    /// Nodes whose every read is delayed by a fixed latency skew.
    pub slow_nodes: Vec<SlowNode>,
    /// Wire-level fault classes applied by the TCP data plane.
    pub wire: WireFaults,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder base).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            error_rate: 0.0,
            truncate_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(1),
            max_consecutive: 2,
            down_windows: Vec::new(),
            slow_nodes: Vec::new(),
            wire: WireFaults::default(),
        }
    }

    /// Preset: transient I/O errors on ~1 in 4 operations.
    pub fn transient_errors(seed: u64) -> Self {
        FaultPlan { error_rate: 0.25, ..FaultPlan::quiet(seed) }
    }

    /// Preset: truncated read bodies on ~1 in 4 reads.
    pub fn truncated_bodies(seed: u64) -> Self {
        FaultPlan { truncate_rate: 0.25, ..FaultPlan::quiet(seed) }
    }

    /// Preset: stalled reads on ~1 in 4 reads.
    pub fn stalled_reads(seed: u64) -> Self {
        FaultPlan { stall_rate: 0.25, ..FaultPlan::quiet(seed) }
    }

    /// Builder: set the transient-error rate.
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Builder: set the truncation rate.
    pub fn with_truncate_rate(mut self, rate: f64) -> Self {
        self.truncate_rate = rate;
        self
    }

    /// Builder: set the stall rate and duration.
    pub fn with_stalls(mut self, rate: f64, stall: Duration) -> Self {
        self.stall_rate = rate;
        self.stall = stall;
        self
    }

    /// Builder: add a per-node down window on the op-counter clock.
    pub fn with_down_window(mut self, node: u32, from_op: u64, to_op: u64) -> Self {
        self.down_windows.push(DownWindow { node, from_op, to_op });
        self
    }

    /// Builder: set the consecutive-fault cap.
    pub fn with_max_consecutive(mut self, cap: u32) -> Self {
        self.max_consecutive = cap;
        self
    }

    /// Builder: delay every read served by `node` by `delay`.
    pub fn with_slow_node(mut self, node: u32, delay: Duration) -> Self {
        self.slow_nodes.push(SlowNode { node, delay });
        self
    }

    /// Builder: abort connections mid-response with probability `rate`.
    pub fn with_wire_rst(mut self, rate: f64) -> Self {
        self.wire.rst_rate = rate;
        self
    }

    /// Builder: cut responses to a prefix + `stall` silence with
    /// probability `rate`.
    pub fn with_wire_partial(mut self, rate: f64, stall: Duration) -> Self {
        self.wire.partial_rate = rate;
        self.wire.partial_stall = stall;
        self
    }

    /// Builder: dribble request reads one byte per `delay` with
    /// probability `rate`.
    pub fn with_wire_slowloris(mut self, rate: f64, delay: Duration) -> Self {
        self.wire.slowloris_rate = rate;
        self.wire.slowloris_delay = delay;
        self
    }

    /// Builder: corrupt response frames with probability `rate`.
    pub fn with_wire_garbage(mut self, rate: f64) -> Self {
        self.wire.garbage_rate = rate;
        self
    }

    /// Builder: half-close connections before the response with
    /// probability `rate`.
    pub fn with_wire_half_close(mut self, rate: f64) -> Self {
        self.wire.half_close_rate = rate;
        self
    }
}

/// Monotonic counters of injected faults, for assertions and reporting.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Transient errors injected.
    pub errors: AtomicU64,
    /// Read bodies truncated.
    pub truncations: AtomicU64,
    /// Reads stalled.
    pub stalls: AtomicU64,
    /// Operations rejected inside a down window.
    pub down_rejections: AtomicU64,
    /// Reads delayed by the slow-node latency skew.
    pub slow_node_delays: AtomicU64,
    /// Operations that passed through unharmed.
    pub clean_ops: AtomicU64,
    /// Connections aborted mid-response (wire).
    pub wire_rsts: AtomicU64,
    /// Responses cut to a prefix followed by a stall (wire).
    pub wire_partials: AtomicU64,
    /// Requests read one byte at a time (wire).
    pub wire_slowloris: AtomicU64,
    /// Response frames corrupted (wire).
    pub wire_garbage: AtomicU64,
    /// Connections half-closed before the response (wire).
    pub wire_half_closes: AtomicU64,
}

/// Point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Transient errors injected.
    pub errors: u64,
    /// Read bodies truncated.
    pub truncations: u64,
    /// Reads stalled.
    pub stalls: u64,
    /// Operations rejected inside a down window.
    pub down_rejections: u64,
    /// Reads delayed by the slow-node latency skew.
    pub slow_node_delays: u64,
    /// Operations that passed through unharmed.
    pub clean_ops: u64,
    /// Connections aborted mid-response (wire).
    pub wire_rsts: u64,
    /// Responses cut to a prefix followed by a stall (wire).
    pub wire_partials: u64,
    /// Requests read one byte at a time (wire).
    pub wire_slowloris: u64,
    /// Response frames corrupted (wire).
    pub wire_garbage: u64,
    /// Connections half-closed before the response (wire).
    pub wire_half_closes: u64,
}

impl FaultStatsSnapshot {
    /// Total faults of every class.
    pub fn total_faults(&self) -> u64 {
        self.errors + self.truncations + self.stalls + self.down_rejections
            + self.slow_node_delays + self.total_wire_faults()
    }

    /// Total wire-level faults across every class.
    pub fn total_wire_faults(&self) -> u64 {
        self.wire_rsts + self.wire_partials + self.wire_slowloris + self.wire_garbage
            + self.wire_half_closes
    }
}

/// What the injector decided for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    TransientError,
    Truncate,
    Stall,
    Down,
    SlowNode,
}

/// What the injector decided for one wire-level exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Serve the exchange cleanly.
    None,
    /// Abort the connection after a prefix of the response.
    Rst,
    /// Write a response prefix, then stall until the peer gives up.
    Partial,
    /// Read the request one byte at a time with a delay per byte.
    Slowloris,
    /// Corrupt the response frame.
    Garbage,
    /// Close the write side before the response.
    HalfClose,
}

/// Shared fault decision engine: one per cluster, consulted by every
/// [`ChaosBackend`].
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<XorShift64>,
    ops: AtomicU64,
    consecutive: Mutex<u32>,
    /// Wire faults track their own consecutive run: backend ops interleave
    /// with exchanges (a clean backend read would reset a shared counter
    /// mid-run), and the transport retry's progress guarantee — "after
    /// `max_consecutive` wire faults the next exchange is clean" — must
    /// hold regardless of what the storage layer is doing.
    wire_consecutive: Mutex<u32>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Build an injector from a plan.
    pub fn new(plan: FaultPlan) -> Arc<FaultInjector> {
        let rng = XorShift64::new(scoop_common::rng::derive_seed(plan.seed, "fault-injector"));
        Arc::new(FaultInjector {
            plan,
            rng: Mutex::new(rng),
            ops: AtomicU64::new(0),
            consecutive: Mutex::new(0),
            wire_consecutive: Mutex::new(0),
            stats: FaultStats::default(),
        })
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters snapshot.
    pub fn stats(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            errors: self.stats.errors.load(Ordering::Relaxed),
            truncations: self.stats.truncations.load(Ordering::Relaxed),
            stalls: self.stats.stalls.load(Ordering::Relaxed),
            down_rejections: self.stats.down_rejections.load(Ordering::Relaxed),
            slow_node_delays: self.stats.slow_node_delays.load(Ordering::Relaxed),
            clean_ops: self.stats.clean_ops.load(Ordering::Relaxed),
            wire_rsts: self.stats.wire_rsts.load(Ordering::Relaxed),
            wire_partials: self.stats.wire_partials.load(Ordering::Relaxed),
            wire_slowloris: self.stats.wire_slowloris.load(Ordering::Relaxed),
            wire_garbage: self.stats.wire_garbage.load(Ordering::Relaxed),
            wire_half_closes: self.stats.wire_half_closes.load(Ordering::Relaxed),
        }
    }

    /// Current logical clock (operations observed so far).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Decide the fate of one backend operation on `node`. `is_read` gates
    /// the read-only fault classes (truncation, stall).
    fn decide(&self, node: u32, is_read: bool) -> Fault {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        // Down windows are scheduled, not sampled: they model a node reboot
        // and are not subject to the consecutive cap (other replicas absorb
        // the outage).
        if self
            .plan
            .down_windows
            .iter()
            .any(|w| w.node == node && op >= w.from_op && op < w.to_op)
        {
            self.stats.down_rejections.fetch_add(1, Ordering::Relaxed);
            return Fault::Down;
        }
        // Slow nodes are scheduled like down windows, not sampled: the skew
        // models a persistently degraded node, so every read it serves is
        // delayed. Delays never fail, so they skip the consecutive cap.
        if is_read && self.plan.slow_nodes.iter().any(|s| s.node == node) {
            self.stats.slow_node_delays.fetch_add(1, Ordering::Relaxed);
            return Fault::SlowNode;
        }
        let mut consecutive = self.consecutive.lock();
        if *consecutive >= self.plan.max_consecutive {
            *consecutive = 0;
            self.stats.clean_ops.fetch_add(1, Ordering::Relaxed);
            return Fault::None;
        }
        let roll = self.rng.lock().next_f64();
        let mut threshold = self.plan.error_rate;
        if roll < threshold {
            *consecutive += 1;
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
            return Fault::TransientError;
        }
        if is_read {
            threshold += self.plan.truncate_rate;
            if roll < threshold {
                *consecutive += 1;
                self.stats.truncations.fetch_add(1, Ordering::Relaxed);
                return Fault::Truncate;
            }
            threshold += self.plan.stall_rate;
            if roll < threshold {
                // A stall delays but does not fail: it does not consume the
                // consecutive-fault budget.
                self.stats.stalls.fetch_add(1, Ordering::Relaxed);
                return Fault::Stall;
            }
        }
        *consecutive = 0;
        self.stats.clean_ops.fetch_add(1, Ordering::Relaxed);
        Fault::None
    }

    /// Decide the fate of one wire-level exchange (request/response pair on
    /// a TCP connection). Applies the `max_consecutive` cap over its own
    /// run of exchanges, so transport retries are guaranteed to make
    /// progress as long as the retry budget exceeds the cap. Slowloris
    /// delays but never fails, so — like stalls — it does not consume the
    /// consecutive budget.
    pub fn decide_wire(&self) -> WireFault {
        if !self.plan.wire.any() {
            return WireFault::None;
        }
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut consecutive = self.wire_consecutive.lock();
        if *consecutive >= self.plan.max_consecutive {
            *consecutive = 0;
            self.stats.clean_ops.fetch_add(1, Ordering::Relaxed);
            return WireFault::None;
        }
        let roll = self.rng.lock().next_f64();
        let wire = &self.plan.wire;
        let mut threshold = wire.rst_rate;
        if roll < threshold {
            *consecutive += 1;
            self.stats.wire_rsts.fetch_add(1, Ordering::Relaxed);
            return WireFault::Rst;
        }
        threshold += wire.partial_rate;
        if roll < threshold {
            *consecutive += 1;
            self.stats.wire_partials.fetch_add(1, Ordering::Relaxed);
            return WireFault::Partial;
        }
        threshold += wire.slowloris_rate;
        if roll < threshold {
            self.stats.wire_slowloris.fetch_add(1, Ordering::Relaxed);
            return WireFault::Slowloris;
        }
        threshold += wire.garbage_rate;
        if roll < threshold {
            *consecutive += 1;
            self.stats.wire_garbage.fetch_add(1, Ordering::Relaxed);
            return WireFault::Garbage;
        }
        threshold += wire.half_close_rate;
        if roll < threshold {
            *consecutive += 1;
            self.stats.wire_half_closes.fetch_add(1, Ordering::Relaxed);
            return WireFault::HalfClose;
        }
        *consecutive = 0;
        self.stats.clean_ops.fetch_add(1, Ordering::Relaxed);
        WireFault::None
    }
}

/// A [`StorageBackend`] decorator that injects the faults its
/// [`FaultInjector`] decides on.
pub struct ChaosBackend {
    inner: Arc<dyn StorageBackend>,
    node: u32,
    injector: Arc<FaultInjector>,
}

impl ChaosBackend {
    /// Wrap `inner` (a backend on `node`) with fault injection.
    pub fn new(
        inner: Arc<dyn StorageBackend>,
        node: u32,
        injector: Arc<FaultInjector>,
    ) -> ChaosBackend {
        ChaosBackend { inner, node, injector }
    }

    fn transient(&self, op: &str) -> ScoopError {
        ScoopError::Io(std::io::Error::other(format!(
            "injected transient {op} failure on node {}",
            self.node
        )))
    }

    fn down(&self) -> ScoopError {
        ScoopError::Io(std::io::Error::other(format!(
            "node {} is down (injected outage)",
            self.node
        )))
    }

    /// Run the pre-operation fault decision for a non-read op.
    fn gate(&self, op: &str) -> Result<()> {
        match self.injector.decide(self.node, false) {
            Fault::Down => Err(self.down()),
            Fault::TransientError => Err(self.transient(op)),
            _ => Ok(()),
        }
    }

    /// Latency skew configured for this node (zero when not a slow node).
    fn slow_delay(&self) -> Duration {
        self.injector
            .plan
            .slow_nodes
            .iter()
            .find(|s| s.node == self.node)
            .map(|s| s.delay)
            .unwrap_or_default()
    }
}

impl StorageBackend for ChaosBackend {
    fn put(&self, key: &str, obj: StoredObject) -> Result<()> {
        self.gate("put")?;
        self.inner.put(key, obj)
    }

    fn get(&self, key: &str) -> Result<StoredObject> {
        match self.injector.decide(self.node, true) {
            Fault::Down => Err(self.down()),
            Fault::TransientError => Err(self.transient("get")),
            Fault::Stall => {
                std::thread::sleep(self.injector.plan.stall);
                self.inner.get(key)
            }
            Fault::SlowNode => {
                std::thread::sleep(self.slow_delay());
                self.inner.get(key)
            }
            Fault::Truncate => {
                let mut obj = self.inner.get(key)?;
                obj.data = obj.data.slice(..obj.data.len() / 2);
                Ok(obj)
            }
            Fault::None => self.inner.get(key),
        }
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        match self.injector.decide(self.node, true) {
            Fault::Down => Err(self.down()),
            Fault::TransientError => Err(self.transient("get_range")),
            Fault::Stall => {
                std::thread::sleep(self.injector.plan.stall);
                self.inner.get_range(key, start, end)
            }
            Fault::SlowNode => {
                std::thread::sleep(self.slow_delay());
                self.inner.get_range(key, start, end)
            }
            Fault::Truncate => {
                let data = self.inner.get_range(key, start, end)?;
                Ok(data.slice(..data.len() / 2))
            }
            Fault::None => self.inner.get_range(key, start, end),
        }
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.gate("head")?;
        self.inner.head(key)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.gate("delete")?;
        self.inner.delete(key)
    }

    // Audit/repair plumbing stays fault-free: the replicator models rsync
    // between object servers, outside the request path under test.
    fn contains(&self, key: &str) -> bool {
        self.inner.contains(key)
    }

    fn keys(&self) -> Vec<String> {
        self.inner.keys()
    }

    fn bytes_used(&self) -> u64 {
        self.inner.bytes_used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use std::collections::BTreeMap;

    fn seeded_obj() -> StoredObject {
        StoredObject::new(Bytes::from(vec![7u8; 1000]), BTreeMap::new())
    }

    fn chaos(plan: FaultPlan) -> (ChaosBackend, Arc<FaultInjector>) {
        let injector = FaultInjector::new(plan);
        let inner = Arc::new(MemBackend::new());
        inner.put("/a/c/o", seeded_obj()).unwrap();
        (ChaosBackend::new(inner, 0, injector.clone()), injector)
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let (b, inj) = chaos(FaultPlan::quiet(1));
        for _ in 0..100 {
            assert_eq!(b.get("/a/c/o").unwrap().data.len(), 1000);
        }
        assert_eq!(inj.stats().total_faults(), 0);
        assert_eq!(inj.stats().clean_ops, 100);
    }

    #[test]
    fn transient_errors_fire_and_respect_consecutive_cap() {
        let (b, inj) = chaos(FaultPlan::transient_errors(42).with_error_rate(1.0));
        let mut failures_in_a_row = 0u32;
        let mut worst = 0u32;
        for _ in 0..200 {
            match b.get("/a/c/o") {
                Err(_) => {
                    failures_in_a_row += 1;
                    worst = worst.max(failures_in_a_row);
                }
                Ok(_) => failures_in_a_row = 0,
            }
        }
        let stats = inj.stats();
        assert!(stats.errors > 0);
        // Even at rate 1.0 the cap forces a success every few ops.
        assert!(worst <= 2, "saw {worst} consecutive failures");
        assert!(stats.clean_ops > 0);
    }

    #[test]
    fn truncation_halves_read_bodies() {
        let (b, inj) = chaos(FaultPlan::truncated_bodies(7).with_truncate_rate(1.0));
        let mut saw_short = false;
        for _ in 0..10 {
            let got = b.get("/a/c/o").unwrap();
            if got.data.len() < 1000 {
                saw_short = true;
            }
        }
        assert!(saw_short);
        assert!(inj.stats().truncations > 0);
        // Writes are unaffected by the truncation class.
        b.put("/a/c/p", seeded_obj()).unwrap();
    }

    #[test]
    fn down_window_rejects_then_recovers() {
        let (b, inj) = chaos(FaultPlan::quiet(3).with_down_window(0, 0, 5));
        for _ in 0..5 {
            assert!(b.get("/a/c/o").is_err());
        }
        assert!(b.get("/a/c/o").is_ok());
        assert_eq!(inj.stats().down_rejections, 5);
    }

    #[test]
    fn down_window_only_hits_its_node() {
        let injector = FaultInjector::new(FaultPlan::quiet(3).with_down_window(9, 0, 100));
        let inner = Arc::new(MemBackend::new());
        inner.put("/a/c/o", seeded_obj()).unwrap();
        let b = ChaosBackend::new(inner, 0, injector);
        assert!(b.get("/a/c/o").is_ok());
    }

    #[test]
    fn injected_errors_are_retryable() {
        let (b, _) = chaos(FaultPlan::transient_errors(42).with_error_rate(1.0));
        let err = loop {
            match b.get("/a/c/o") {
                Err(e) => break e,
                Ok(_) => continue,
            }
        };
        assert!(err.is_retryable());
    }

    #[test]
    fn same_seed_replays_same_fault_sequence() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let (b, _) = chaos(FaultPlan::transient_errors(seed).with_error_rate(0.5));
            (0..50).map(|_| b.get("/a/c/o").is_ok()).collect()
        };
        assert_eq!(outcomes(11), outcomes(11));
        assert_ne!(outcomes(11), outcomes(12));
    }

    #[test]
    fn slow_node_delays_reads_but_serves_full_bodies() {
        let (b, inj) = chaos(FaultPlan::quiet(9).with_slow_node(0, Duration::from_millis(2)));
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            assert_eq!(b.get("/a/c/o").unwrap().data.len(), 1000);
        }
        assert!(t0.elapsed() >= Duration::from_millis(6), "skew never applied");
        let stats = inj.stats();
        assert_eq!(stats.slow_node_delays, 3);
        assert_eq!(stats.errors + stats.truncations, 0);
        // The skew is read-only and per-node: writes here and reads on other
        // nodes pass untouched.
        b.put("/a/c/p", seeded_obj()).unwrap();
        assert_eq!(inj.stats().slow_node_delays, 3);
        let other = ChaosBackend::new(Arc::new(MemBackend::new()), 1, inj.clone());
        let _ = other.get("/missing");
        assert_eq!(inj.stats().slow_node_delays, 3);
    }

    #[test]
    fn stalls_delay_but_succeed() {
        let (b, inj) =
            chaos(FaultPlan::stalled_reads(5).with_stalls(1.0, Duration::from_millis(1)));
        for _ in 0..5 {
            assert!(b.get("/a/c/o").is_ok());
        }
        assert!(inj.stats().stalls > 0);
    }
}
