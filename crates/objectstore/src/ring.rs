//! The consistent-hash ring.
//!
//! Swift "exploits the synergy between a flat object ID space and consistent
//! hashing via a hash-based data structure called *ring*", guaranteeing load
//! balancing and horizontal scaling. This module implements a weighted,
//! zone-aware partition ring with the same shape as Swift's:
//!
//! * The hash space is divided into `2^part_power` **partitions**.
//! * Each partition is assigned `replicas` **devices**, preferring distinct
//!   zones, then distinct nodes, then distinct devices.
//! * Device weights steer proportional partition counts.
//! * [`Ring::rebalance`] reassigns as few partitions as possible when devices
//!   are added or removed (tested below).

use scoop_common::hash::hash64;
use scoop_common::{Result, ScoopError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a storage device within the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

/// A physical device participating in the ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Stable identifier.
    pub id: DeviceId,
    /// Object-server node hosting the device.
    pub node: u32,
    /// Failure-isolation zone (rack / PDU in Swift deployments).
    pub zone: u32,
    /// Relative capacity weight (> 0).
    pub weight: f64,
}

/// Builder for a [`Ring`].
///
/// ```
/// use scoop_objectstore::RingBuilder;
/// let mut builder = RingBuilder::new(8, 3);
/// for node in 0..4 {
///     builder.add_device(node, node % 2, 1.0);
/// }
/// let ring = builder.build().unwrap();
/// let replicas = ring.lookup("/AUTH_gp/meters/jan.csv");
/// assert_eq!(replicas.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RingBuilder {
    part_power: u32,
    replicas: usize,
    devices: Vec<Device>,
}

impl RingBuilder {
    /// Start a builder. `part_power` bounds the partition count at
    /// `2^part_power`; Swift deployments typically use 14–22, tests use less.
    pub fn new(part_power: u32, replicas: usize) -> Self {
        assert!(part_power <= 24, "part_power > 24 would allocate too much");
        assert!(replicas >= 1, "at least one replica required");
        RingBuilder { part_power, replicas, devices: Vec::new() }
    }

    /// Add a device.
    pub fn add_device(&mut self, node: u32, zone: u32, weight: f64) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device { id, node, zone, weight });
        id
    }

    /// Build and balance the ring.
    pub fn build(self) -> Result<Ring> {
        if self.devices.is_empty() {
            return Err(ScoopError::InvalidRequest("ring has no devices".into()));
        }
        if self.devices.iter().any(|d| d.weight <= 0.0) {
            return Err(ScoopError::InvalidRequest(
                "device weights must be positive".into(),
            ));
        }
        let mut ring = Ring {
            part_power: self.part_power,
            replicas: self.replicas.min(self.devices.len()),
            devices: self.devices,
            part2dev: Vec::new(),
        };
        ring.assign_all();
        Ok(ring)
    }
}

/// The built ring: partition → replica devices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ring {
    part_power: u32,
    replicas: usize,
    devices: Vec<Device>,
    /// `part2dev[partition]` lists `replicas` distinct devices.
    part2dev: Vec<Vec<DeviceId>>,
}

impl Ring {
    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        1usize << self.part_power
    }

    /// Replica count.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Partition for a ring key (e.g. [`crate::ObjectPath::ring_key`]).
    pub fn partition_of(&self, key: &str) -> usize {
        (hash64(key.as_bytes()) >> (64 - self.part_power)) as usize
    }

    /// Devices responsible for a key, primary first. Empty only when the
    /// assignment table has no entry for the key's partition (a transient
    /// rebalance window) — callers treat that as "no replicas reachable",
    /// never a panic.
    pub fn lookup(&self, key: &str) -> &[DeviceId] {
        self.devices_of_partition(self.partition_of(key))
    }

    /// Devices assigned to a raw partition index; empty for out-of-range
    /// partitions rather than panicking.
    pub fn devices_of_partition(&self, part: usize) -> &[DeviceId] {
        self.part2dev.get(part).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Position of a device id within the device table.
    fn index_of(&self, id: DeviceId) -> usize {
        self.devices
            .iter()
            .position(|d| d.id == id)
            // lint:allow(the ring only hands out device ids from its own
            // table; a miss here is a ring-construction bug, not a runtime
            // condition a caller could handle)
            .expect("device id present in ring")
    }

    /// The device record for an id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[self.index_of(id)]
    }

    /// Per-device assigned partition-replica counts.
    pub fn assignment_counts(&self) -> HashMap<DeviceId, usize> {
        let mut counts: HashMap<DeviceId, usize> =
            self.devices.iter().map(|d| (d.id, 0)).collect();
        for replicas in &self.part2dev {
            for d in replicas {
                *counts.entry(*d).or_default() += 1;
            }
        }
        counts
    }

    /// Desired replica-assignments per device, by weight share.
    fn desired_counts(&self) -> Vec<f64> {
        let total_weight: f64 = self.devices.iter().map(|d| d.weight).sum();
        let total_assignments = (self.partitions() * self.replicas) as f64;
        self.devices
            .iter()
            .map(|d| total_assignments * d.weight / total_weight)
            .collect()
    }

    /// Assign every partition from scratch (initial build).
    fn assign_all(&mut self) {
        self.part2dev = vec![Vec::new(); self.partitions()];
        let desired = self.desired_counts();
        let mut current = vec![0usize; self.devices.len()];
        for part in 0..self.partitions() {
            let mut replicas = Self::pick_devices(
                &self.devices,
                &desired,
                &mut current,
                self.replicas,
                part,
                &[],
            );
            Self::rotate_primary(part, &mut replicas);
            self.part2dev[part] = replicas;
        }
    }

    /// Rotate the replica list by a per-partition hash so the *primary* role
    /// (tried first on reads) spreads uniformly over a partition's devices.
    /// `checked_rem` makes an empty replica set (drastic rebalance /
    /// all-nodes-down windows) a deterministic no-op instead of a `% 0`
    /// panic.
    fn rotate_primary(part: usize, replicas: &mut [DeviceId]) {
        if let Some(r) = hash64(&(part as u64).to_le_bytes()).checked_rem(replicas.len() as u64) {
            replicas.rotate_left(r as usize);
        }
    }

    /// Pick `want` devices for a partition, preferring (in order): devices the
    /// partition already uses staying put (`keep`), under-filled devices, zone
    /// diversity, node diversity. `desired`/`current` are indexed by position
    /// in `devices`.
    fn pick_devices(
        devices: &[Device],
        desired: &[f64],
        current: &mut [usize],
        want: usize,
        part: usize,
        keep: &[DeviceId],
    ) -> Vec<DeviceId> {
        let pos_of = |id: DeviceId| devices.iter().position(|d| d.id == id);
        let mut chosen: Vec<DeviceId> = Vec::with_capacity(want);
        // Retain existing assignments first (minimal movement on rebalance),
        // but only while the device remains under its desired share.
        for &d in keep {
            if chosen.len() >= want {
                break;
            }
            if let Some(i) = pos_of(d) {
                if (current[i] as f64) < desired[i].ceil() {
                    chosen.push(d);
                    current[i] += 1;
                }
            }
        }
        while chosen.len() < want {
            let used_zones: Vec<u32> = chosen
                .iter()
                .filter_map(|d| pos_of(*d).map(|i| devices[i].zone))
                .collect();
            let used_nodes: Vec<u32> = chosen
                .iter()
                .filter_map(|d| pos_of(*d).map(|i| devices[i].node))
                .collect();
            // Score: fill deficit (desired - current), with diversity bonuses.
            // Deterministic tie-break via a part+device hash to spread load.
            let best = devices
                .iter()
                .enumerate()
                .filter(|(_, d)| !chosen.contains(&d.id))
                .map(|(i, d)| {
                    let deficit = desired[i] - current[i] as f64;
                    let zone_bonus = if used_zones.contains(&d.zone) { 0.0 } else { 1e6 };
                    let node_bonus = if used_nodes.contains(&d.node) { 0.0 } else { 1e3 };
                    let tiebreak = (hash64(format!("{part}:{}", d.id.0).as_bytes()) % 1000)
                        as f64
                        * 1e-9;
                    (i, d.id, deficit + zone_bonus + node_bonus + tiebreak)
                })
                .max_by(|a, b| a.2.total_cmp(&b.2))
                .map(|(i, id, _)| (i, id));
            match best {
                Some((i, id)) => {
                    current[i] += 1;
                    chosen.push(id);
                }
                None => break,
            }
        }
        chosen
    }

    /// Rebalance after device membership changes: keeps each partition's
    /// surviving assignments where possible and only reassigns what must move.
    ///
    /// `new_devices` replaces the device table; ids of surviving devices must
    /// be preserved by the caller.
    pub fn rebalance(&mut self, new_devices: Vec<Device>) -> Result<usize> {
        if new_devices.is_empty() {
            return Err(ScoopError::InvalidRequest("ring has no devices".into()));
        }
        let old = std::mem::replace(&mut self.devices, new_devices);
        self.replicas = self.replicas.min(self.devices.len());
        let live: std::collections::HashSet<DeviceId> =
            self.devices.iter().map(|d| d.id).collect();
        let desired = self.desired_counts();
        let mut current = vec![0usize; self.devices.len()];
        let mut moved = 0usize;
        let old_assignments = std::mem::take(&mut self.part2dev);
        self.part2dev = Vec::with_capacity(old_assignments.len());
        for (part, old_reps) in old_assignments.into_iter().enumerate() {
            let keep: Vec<DeviceId> = old_reps
                .iter()
                .copied()
                .filter(|d| live.contains(d))
                .collect();
            let mut picked = Self::pick_devices(
                &self.devices,
                &desired,
                &mut current,
                self.replicas,
                part,
                &keep,
            );
            moved += picked.iter().filter(|d| !old_reps.contains(d)).count();
            Self::rotate_primary(part, &mut picked);
            self.part2dev.push(picked);
        }
        drop(old);
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_ring(nodes: u32, devs_per_node: u32, part_power: u32, replicas: usize) -> Ring {
        let mut b = RingBuilder::new(part_power, replicas);
        for n in 0..nodes {
            for _ in 0..devs_per_node {
                b.add_device(n, n % 4, 1.0);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn every_partition_has_distinct_replicas() {
        let ring = build_ring(8, 4, 10, 3);
        for part in 0..ring.partitions() {
            let devs = ring.devices_of_partition(part);
            assert_eq!(devs.len(), 3);
            let mut uniq = devs.to_vec();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "partition {part} has duplicate devices");
            // Zone diversity: with 4 zones and 3 replicas, all distinct.
            let zones: std::collections::HashSet<u32> =
                devs.iter().map(|d| ring.device(*d).zone).collect();
            assert_eq!(zones.len(), 3, "partition {part} lacks zone diversity");
        }
    }

    #[test]
    fn balanced_within_tolerance() {
        let ring = build_ring(10, 3, 12, 3);
        let counts = ring.assignment_counts();
        let expected = ring.partitions() * 3 / 30;
        for (dev, count) in counts {
            assert!(
                (count as f64) > expected as f64 * 0.8
                    && (count as f64) < expected as f64 * 1.2,
                "device {dev:?}: {count} assignments (expected ~{expected})"
            );
        }
    }

    #[test]
    fn weights_steer_share() {
        let mut b = RingBuilder::new(12, 2);
        b.add_device(0, 0, 1.0);
        b.add_device(1, 1, 1.0);
        b.add_device(2, 2, 2.0); // double weight
        b.add_device(3, 3, 1.0);
        let ring = b.build().unwrap();
        let counts = ring.assignment_counts();
        let heavy = counts[&DeviceId(2)] as f64;
        let light = counts[&DeviceId(0)] as f64;
        let ratio = heavy / light;
        assert!((1.5..3.0).contains(&ratio), "weight ratio {ratio}");
    }

    #[test]
    fn lookup_is_deterministic_and_uniform() {
        let ring = build_ring(6, 2, 10, 3);
        let a = ring.lookup("/acct/cont/obj-1").to_vec();
        assert_eq!(ring.lookup("/acct/cont/obj-1"), a.as_slice());
        // Distribution across primary devices.
        let mut counts: HashMap<DeviceId, usize> = HashMap::new();
        for i in 0..12_000 {
            let key = format!("/acct/cont/obj-{i}");
            *counts.entry(ring.lookup(&key)[0]).or_default() += 1;
        }
        let expected = 12_000 / 12;
        for (dev, c) in counts {
            assert!(
                c > expected / 2 && c < expected * 2,
                "device {dev:?} got {c} primaries"
            );
        }
    }

    #[test]
    fn rebalance_moves_minimally_on_add() {
        let mut ring = build_ring(6, 2, 10, 3);
        let before: Vec<Vec<DeviceId>> = (0..ring.partitions())
            .map(|p| ring.devices_of_partition(p).to_vec())
            .collect();
        // Add one device on a new node.
        let mut devices = ring.devices().to_vec();
        devices.push(Device {
            id: DeviceId(devices.len() as u32),
            node: 6,
            zone: 2,
            weight: 1.0,
        });
        let moved = ring.rebalance(devices).unwrap();
        let total = ring.partitions() * 3;
        // Ideal movement is total/13 ≈ 7.7%; allow 3x headroom.
        assert!(
            (moved as f64) < total as f64 * 0.25,
            "moved {moved} of {total} assignments"
        );
        // Every partition still has 3 distinct replicas.
        for p in 0..ring.partitions() {
            let devs = ring.devices_of_partition(p);
            assert_eq!(devs.len(), 3);
            let mut u = devs.to_vec();
            u.sort();
            u.dedup();
            assert_eq!(u.len(), 3);
        }
        // And most assignments survived.
        let kept: usize = (0..ring.partitions())
            .map(|p| {
                ring.devices_of_partition(p)
                    .iter()
                    .filter(|d| before[p].contains(d))
                    .count()
            })
            .sum();
        assert!(kept as f64 > total as f64 * 0.75, "kept only {kept}/{total}");
    }

    #[test]
    fn rebalance_handles_device_removal() {
        let mut ring = build_ring(4, 2, 8, 3);
        let victim = DeviceId(0);
        let devices: Vec<Device> = ring
            .devices()
            .iter()
            .filter(|d| d.id != victim)
            .cloned()
            .collect();
        ring.rebalance(devices).unwrap();
        for p in 0..ring.partitions() {
            assert!(
                !ring.devices_of_partition(p).contains(&victim),
                "partition {p} still references removed device"
            );
            assert_eq!(ring.devices_of_partition(p).len(), 3);
        }
    }

    #[test]
    fn degenerate_assignments_degrade_without_panicking() {
        let ring = build_ring(4, 2, 8, 3);
        // Out-of-range partitions answer with no replicas, not a panic.
        assert!(ring.devices_of_partition(usize::MAX).is_empty());
        assert!(ring.devices_of_partition(ring.partitions()).is_empty());
        // Rotating an empty replica set is a deterministic no-op.
        let mut empty: Vec<DeviceId> = Vec::new();
        Ring::rotate_primary(7, &mut empty);
        assert!(empty.is_empty());
        // Single-replica sets are stable under rotation.
        let mut one = vec![DeviceId(3)];
        Ring::rotate_primary(7, &mut one);
        assert_eq!(one, vec![DeviceId(3)]);
    }

    #[test]
    fn builder_validation() {
        assert!(RingBuilder::new(4, 1).build().is_err());
        let mut b = RingBuilder::new(4, 1);
        b.add_device(0, 0, -1.0);
        assert!(b.build().is_err());
        // Replicas clamp to device count.
        let mut b = RingBuilder::new(4, 5);
        b.add_device(0, 0, 1.0);
        b.add_device(1, 1, 1.0);
        let ring = b.build().unwrap();
        assert_eq!(ring.replicas(), 2);
    }
}
