//! Pluggable device storage backends.
//!
//! An object server owns one backend per device. The in-memory backend backs
//! tests and experiments; the disk backend persists objects under a directory
//! per device, the way Swift lays objects out under `/srv/node/<device>`.

use bytes::Bytes;
use parking_lot::RwLock;
use scoop_common::hash::fingerprint_hex;
use scoop_common::{Result, ScoopError};
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;

/// A stored object: payload plus system/user metadata.
#[derive(Debug, Clone)]
pub struct StoredObject {
    /// Object payload.
    pub data: Bytes,
    /// Content fingerprint (assigned at PUT).
    pub etag: String,
    /// User metadata (`x-object-meta-*` headers, lowercased keys).
    pub metadata: BTreeMap<String, String>,
}

impl StoredObject {
    /// Create an object, computing its ETag.
    pub fn new(data: Bytes, metadata: BTreeMap<String, String>) -> Self {
        let etag = fingerprint_hex(&data);
        StoredObject { data, etag, metadata }
    }
}

/// Metadata-only view returned by HEAD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Payload length in bytes.
    pub size: u64,
    /// Content fingerprint.
    pub etag: String,
    /// User metadata.
    pub metadata: BTreeMap<String, String>,
}

/// Clamp a requested `[start, end)` range against an object of `len` bytes.
///
/// This is the single range-semantics contract shared by every backend:
/// `start` and `end` are clamped to `len`, and an inverted range (end before
/// start) collapses to the empty range at the clamped start. Past-EOF and
/// overlong requests therefore return the available tail (possibly empty)
/// rather than erroring, on memory and disk alike.
pub fn clamp_range(len: u64, start: u64, end: u64) -> (u64, u64) {
    let s = start.min(len);
    let e = end.min(len).max(s);
    (s, e)
}

/// Device-local storage operations.
pub trait StorageBackend: Send + Sync {
    /// Store (or replace) an object.
    fn put(&self, key: &str, obj: StoredObject) -> Result<()>;
    /// Fetch a whole object.
    fn get(&self, key: &str) -> Result<StoredObject>;
    /// Fetch `[start, end)` of an object's payload.
    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        let obj = self.get(key)?;
        let (s, e) = clamp_range(obj.data.len() as u64, start, end);
        Ok(obj.data.slice(s as usize..e as usize))
    }
    /// Metadata only.
    fn head(&self, key: &str) -> Result<ObjectMeta>;
    /// Remove an object. Missing keys are an error (`NotFound`).
    fn delete(&self, key: &str) -> Result<()>;
    /// True when the key is present.
    fn contains(&self, key: &str) -> bool;
    /// All stored keys (used by the replicator's audit pass).
    fn keys(&self) -> Vec<String>;
    /// Total payload bytes stored.
    fn bytes_used(&self) -> u64;
}

/// In-memory backend.
#[derive(Debug, Default)]
pub struct MemBackend {
    objects: RwLock<BTreeMap<String, StoredObject>>,
}

impl MemBackend {
    /// Create an empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemBackend {
    fn put(&self, key: &str, obj: StoredObject) -> Result<()> {
        self.objects.write().insert(key.to_string(), obj);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<StoredObject> {
        self.objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| ScoopError::NotFound(format!("object {key}")))
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        let guard = self.objects.read();
        let obj = guard
            .get(key)
            .ok_or_else(|| ScoopError::NotFound(format!("object {key}")))?;
        Ok(ObjectMeta {
            size: obj.data.len() as u64,
            etag: obj.etag.clone(),
            metadata: obj.metadata.clone(),
        })
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.objects
            .write()
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| ScoopError::NotFound(format!("object {key}")))
    }

    fn contains(&self, key: &str) -> bool {
        self.objects.read().contains_key(key)
    }

    fn keys(&self) -> Vec<String> {
        self.objects.read().keys().cloned().collect()
    }

    fn bytes_used(&self) -> u64 {
        self.objects
            .read()
            .values()
            .map(|o| o.data.len() as u64)
            .sum()
    }
}

/// Disk-persisted backend: one data file + one metadata sidecar per object,
/// named by the key's fingerprint, under the device directory.
#[derive(Debug)]
pub struct DiskBackend {
    dir: PathBuf,
    /// Index: key → (file stem, size, etag, metadata). Rebuilt on open.
    index: RwLock<BTreeMap<String, DiskEntry>>,
}

#[derive(Debug, Clone)]
struct DiskEntry {
    stem: String,
    size: u64,
    etag: String,
    metadata: BTreeMap<String, String>,
}

impl DiskBackend {
    /// Open (creating if needed) a device directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let backend = DiskBackend { dir, index: RwLock::new(BTreeMap::new()) };
        backend.rebuild_index()?;
        Ok(backend)
    }

    fn rebuild_index(&self) -> Result<()> {
        let mut index = self.index.write();
        index.clear();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(stem) = name.strip_suffix(".meta") {
                let meta_raw = std::fs::read_to_string(entry.path())?;
                if let Some(parsed) = Self::parse_meta(stem, &meta_raw) {
                    index.insert(parsed.0, parsed.1);
                }
            }
        }
        Ok(())
    }

    /// Sidecar format: line 1 key, line 2 etag, line 3 size, then `k\tv` pairs.
    fn render_meta(key: &str, entry: &DiskEntry) -> String {
        let mut out = format!("{key}\n{}\n{}\n", entry.etag, entry.size);
        for (k, v) in &entry.metadata {
            out.push_str(k);
            out.push('\t');
            out.push_str(v);
            out.push('\n');
        }
        out
    }

    fn parse_meta(stem: &str, raw: &str) -> Option<(String, DiskEntry)> {
        let mut lines = raw.lines();
        let key = lines.next()?.to_string();
        let etag = lines.next()?.to_string();
        let size: u64 = lines.next()?.parse().ok()?;
        let mut metadata = BTreeMap::new();
        for line in lines {
            if let Some((k, v)) = line.split_once('\t') {
                metadata.insert(k.to_string(), v.to_string());
            }
        }
        Some((key, DiskEntry { stem: stem.to_string(), size, etag, metadata }))
    }

    fn data_path(&self, stem: &str) -> PathBuf {
        self.dir.join(format!("{stem}.data"))
    }

    fn meta_path(&self, stem: &str) -> PathBuf {
        self.dir.join(format!("{stem}.meta"))
    }
}

impl StorageBackend for DiskBackend {
    fn put(&self, key: &str, obj: StoredObject) -> Result<()> {
        let stem = scoop_common::hash::fingerprint_hex(key.as_bytes());
        let entry = DiskEntry {
            stem: stem.clone(),
            size: obj.data.len() as u64,
            etag: obj.etag.clone(),
            metadata: obj.metadata.clone(),
        };
        std::fs::write(self.data_path(&stem), &obj.data)?;
        std::fs::write(self.meta_path(&stem), Self::render_meta(key, &entry))?;
        self.index.write().insert(key.to_string(), entry);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<StoredObject> {
        let entry = {
            let guard = self.index.read();
            guard
                .get(key)
                .cloned()
                .ok_or_else(|| ScoopError::NotFound(format!("object {key}")))?
        };
        let data = std::fs::read(self.data_path(&entry.stem))?;
        Ok(StoredObject {
            data: Bytes::from(data),
            etag: entry.etag,
            metadata: entry.metadata,
        })
    }

    fn get_range(&self, key: &str, start: u64, end: u64) -> Result<Bytes> {
        let entry = {
            let guard = self.index.read();
            guard
                .get(key)
                .cloned()
                .ok_or_else(|| ScoopError::NotFound(format!("object {key}")))?
        };
        let mut f = std::fs::File::open(self.data_path(&entry.stem))?;
        // Clamp against the file's *actual* length, not the index entry: a
        // stale sidecar (crash between data and meta writes) must not make the
        // disk backend return different bytes than the memory backend would
        // for the same stored payload.
        let len = f.seek(SeekFrom::End(0))?;
        let (s, e) = clamp_range(len, start, end);
        f.seek(SeekFrom::Start(s))?;
        let mut buf = Vec::new();
        f.take(e.saturating_sub(s)).read_to_end(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        let guard = self.index.read();
        let entry = guard
            .get(key)
            .ok_or_else(|| ScoopError::NotFound(format!("object {key}")))?;
        Ok(ObjectMeta {
            size: entry.size,
            etag: entry.etag.clone(),
            metadata: entry.metadata.clone(),
        })
    }

    fn delete(&self, key: &str) -> Result<()> {
        let entry = self
            .index
            .write()
            .remove(key)
            .ok_or_else(|| ScoopError::NotFound(format!("object {key}")))?;
        let _ = std::fs::remove_file(self.data_path(&entry.stem));
        let _ = std::fs::remove_file(self.meta_path(&entry.stem));
        Ok(())
    }

    fn contains(&self, key: &str) -> bool {
        self.index.read().contains_key(key)
    }

    fn keys(&self) -> Vec<String> {
        self.index.read().keys().cloned().collect()
    }

    fn bytes_used(&self) -> u64 {
        self.index.read().values().map(|e| e.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn StorageBackend) {
        let mut meta = BTreeMap::new();
        meta.insert("x-object-meta-kind".to_string(), "csv".to_string());
        let obj = StoredObject::new(Bytes::from_static(b"hello world"), meta.clone());
        let etag = obj.etag.clone();
        backend.put("/a/c/o1", obj).unwrap();
        assert!(backend.contains("/a/c/o1"));
        assert!(!backend.contains("/a/c/o2"));

        let got = backend.get("/a/c/o1").unwrap();
        assert_eq!(got.data, "hello world");
        assert_eq!(got.etag, etag);
        assert_eq!(got.metadata, meta);

        let head = backend.head("/a/c/o1").unwrap();
        assert_eq!(head.size, 11);
        assert_eq!(head.etag, etag);

        assert_eq!(backend.get_range("/a/c/o1", 6, 11).unwrap(), "world");
        assert_eq!(backend.get_range("/a/c/o1", 6, 999).unwrap(), "world");
        assert_eq!(backend.get_range("/a/c/o1", 999, 1000).unwrap().len(), 0);
        // Inverted and empty ranges collapse identically on every backend.
        assert_eq!(backend.get_range("/a/c/o1", 8, 3).unwrap().len(), 0);
        assert_eq!(backend.get_range("/a/c/o1", 5, 5).unwrap().len(), 0);
        assert_eq!(backend.get_range("/a/c/o1", 0, 0).unwrap().len(), 0);
        assert_eq!(backend.get_range("/a/c/o1", 0, u64::MAX).unwrap(), "hello world");

        assert_eq!(backend.keys(), vec!["/a/c/o1".to_string()]);
        assert_eq!(backend.bytes_used(), 11);

        backend.delete("/a/c/o1").unwrap();
        assert!(backend.get("/a/c/o1").is_err());
        assert!(backend.delete("/a/c/o1").is_err());
        assert_eq!(backend.bytes_used(), 0);
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn disk_backend_contract() {
        let dir = std::env::temp_dir().join(format!("scoop-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&DiskBackend::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_backend_survives_reopen() {
        let dir =
            std::env::temp_dir().join(format!("scoop-disk-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let b = DiskBackend::open(&dir).unwrap();
            let mut meta = BTreeMap::new();
            meta.insert("x-object-meta-owner".to_string(), "gp".to_string());
            b.put("/a/c/persist", StoredObject::new(Bytes::from_static(b"abc"), meta))
                .unwrap();
        }
        let b = DiskBackend::open(&dir).unwrap();
        let got = b.get("/a/c/persist").unwrap();
        assert_eq!(got.data, "abc");
        assert_eq!(got.metadata["x-object-meta-owner"], "gp");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clamp_range_contract() {
        assert_eq!(clamp_range(10, 2, 6), (2, 6));
        assert_eq!(clamp_range(10, 2, 999), (2, 10));
        assert_eq!(clamp_range(10, 999, 1000), (10, 10));
        assert_eq!(clamp_range(10, 8, 3), (8, 8));
        assert_eq!(clamp_range(0, 0, 5), (0, 0));
        assert_eq!(clamp_range(10, 0, u64::MAX), (0, 10));
    }

    #[test]
    fn disk_range_read_tolerates_stale_index_size() {
        let dir =
            std::env::temp_dir().join(format!("scoop-disk-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = DiskBackend::open(&dir).unwrap();
        b.put(
            "/a/c/o",
            StoredObject::new(Bytes::from_static(b"0123456789"), BTreeMap::new()),
        )
        .unwrap();
        // Truncate the data file behind the index's back, simulating a crash
        // between the data write and the sidecar write.
        let stem = scoop_common::hash::fingerprint_hex("/a/c/o".as_bytes());
        std::fs::write(dir.join(format!("{stem}.data")), b"0123").unwrap();
        // The read clamps to the file's actual length instead of erroring.
        assert_eq!(b.get_range("/a/c/o", 0, 10).unwrap(), "0123");
        assert_eq!(b.get_range("/a/c/o", 2, 999).unwrap(), "23");
        assert_eq!(b.get_range("/a/c/o", 8, 9).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_overwrites() {
        let b = MemBackend::new();
        b.put(
            "/a/c/o",
            StoredObject::new(Bytes::from_static(b"v1"), BTreeMap::new()),
        )
        .unwrap();
        b.put(
            "/a/c/o",
            StoredObject::new(Bytes::from_static(b"v2-longer"), BTreeMap::new()),
        )
        .unwrap();
        assert_eq!(b.get("/a/c/o").unwrap().data, "v2-longer");
        assert_eq!(b.keys().len(), 1);
    }
}
