//! Token authentication.
//!
//! Stands in for the Keystone identity service of the paper's testbed: users
//! register under an account with a secret key, exchange it for a bearer
//! token, and proxies validate the token against the account being accessed.

use parking_lot::RwLock;
use scoop_common::hash::hash64;
use scoop_common::{Result, ScoopError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The auth service shared by all proxies.
#[derive(Debug, Default)]
pub struct AuthService {
    /// (account, user) → key.
    users: RwLock<HashMap<(String, String), String>>,
    /// token → account.
    tokens: RwLock<HashMap<String, String>>,
    counter: AtomicU64,
}

impl AuthService {
    /// Create an empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or rotate the key of) a user within an account.
    pub fn register_user(&self, account: &str, user: &str, key: &str) {
        self.users
            .write()
            .insert((account.to_string(), user.to_string()), key.to_string());
    }

    /// Exchange credentials for a bearer token.
    pub fn issue_token(&self, account: &str, user: &str, key: &str) -> Result<String> {
        let users = self.users.read();
        match users.get(&(account.to_string(), user.to_string())) {
            Some(k) if k == key => {}
            _ => {
                return Err(ScoopError::Unauthorized(format!(
                    "bad credentials for {account}:{user}"
                )))
            }
        }
        drop(users);
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let token = format!(
            "AUTH_tk{:016x}",
            hash64(format!("{account}:{user}:{n}").as_bytes())
        );
        self.tokens
            .write()
            .insert(token.clone(), account.to_string());
        Ok(token)
    }

    /// Resolve a token to its account.
    pub fn validate(&self, token: &str) -> Option<String> {
        self.tokens.read().get(token).cloned()
    }

    /// Revoke a token.
    pub fn revoke(&self, token: &str) -> bool {
        self.tokens.write().remove(token).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_lifecycle() {
        let auth = AuthService::new();
        auth.register_user("AUTH_gp", "analyst", "s3cret");
        assert!(auth.issue_token("AUTH_gp", "analyst", "wrong").is_err());
        assert!(auth.issue_token("AUTH_gp", "nobody", "s3cret").is_err());
        let tok = auth.issue_token("AUTH_gp", "analyst", "s3cret").unwrap();
        assert_eq!(auth.validate(&tok).as_deref(), Some("AUTH_gp"));
        assert!(auth.revoke(&tok));
        assert!(auth.validate(&tok).is_none());
        assert!(!auth.revoke(&tok));
    }

    #[test]
    fn tokens_are_unique_per_issue() {
        let auth = AuthService::new();
        auth.register_user("a", "u", "k");
        let t1 = auth.issue_token("a", "u", "k").unwrap();
        let t2 = auth.issue_token("a", "u", "k").unwrap();
        assert_ne!(t1, t2);
        assert_eq!(auth.validate(&t1).as_deref(), Some("a"));
        assert_eq!(auth.validate(&t2).as_deref(), Some("a"));
    }

    #[test]
    fn key_rotation_invalidates_old_key() {
        let auth = AuthService::new();
        auth.register_user("a", "u", "old");
        auth.register_user("a", "u", "new");
        assert!(auth.issue_token("a", "u", "old").is_err());
        assert!(auth.issue_token("a", "u", "new").is_ok());
    }
}
