//! Cluster assembly and the client API.
//!
//! [`SwiftCluster`] wires together the auth service, container service, ring,
//! object servers and proxies; [`SwiftClient`] is the HTTP-client equivalent
//! the connector (and tests) talk to. Defaults mirror the paper's OSIC
//! testbed: 6 proxies and 29 object servers with 10 devices each, 3-replica
//! object ring.

use crate::auth::AuthService;
use crate::backend::{DiskBackend, MemBackend, StorageBackend};
use crate::fault::{ChaosBackend, FaultInjector, FaultPlan, FaultStatsSnapshot};
use crate::health::{BreakerConfig, NodeHealth};
use crate::middleware::Pipeline;
use crate::net::{wire, HttpPool, NetHandle, NetOptions, NetServer, PoolConfig};
use crate::objserver::{ObjectServer, UPLOAD_TOKEN_HEADER};
use crate::path::ObjectPath;
use crate::proxy::{ContainerService, ObjectRecord, ProxyServer};
use crate::replication::{RepairReport, Replicator};
use crate::request::{ByteRange, Headers, Method, Request, Response};
use crate::ring::{DeviceId, Ring, RingBuilder};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use scoop_common::telemetry::{self, names};
use scoop_common::{Deadline, Result, RetryPolicy, ScoopError};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where device data lives.
#[derive(Debug, Clone, Default)]
pub enum BackendKind {
    /// In-memory devices (default; used by experiments and tests).
    #[default]
    Memory,
    /// One directory per device under the given root.
    Disk(PathBuf),
}

/// Cluster shape and behaviour.
#[derive(Debug, Clone)]
pub struct SwiftConfig {
    /// Number of proxy servers.
    pub proxies: usize,
    /// Number of object servers (storage nodes).
    pub object_servers: usize,
    /// Devices per object server.
    pub devices_per_server: usize,
    /// Ring partition power (partitions = 2^part_power).
    pub part_power: u32,
    /// Object replica count.
    pub replicas: usize,
    /// Failure-isolation zones to spread nodes across.
    pub zones: u32,
    /// Whether proxies enforce token auth.
    pub auth_enabled: bool,
    /// Device storage kind.
    pub backend: BackendKind,
    /// Optional chaos plan: when set, every device backend is wrapped in a
    /// [`ChaosBackend`] driven by one shared, seeded [`FaultInjector`].
    pub fault_plan: Option<FaultPlan>,
    /// Optional per-node circuit breakers shared by all proxies: replicas
    /// on nodes whose breaker is open are skipped proactively on reads.
    pub breaker: Option<BreakerConfig>,
    /// Optional hedged GETs: race a second replica after this long without
    /// a first response, taking whichever byte stream answers first.
    pub hedge_after: Option<Duration>,
}

impl Default for SwiftConfig {
    fn default() -> Self {
        SwiftConfig {
            proxies: 2,
            object_servers: 4,
            devices_per_server: 2,
            part_power: 8,
            replicas: 3,
            zones: 4,
            auth_enabled: false,
            backend: BackendKind::Memory,
            fault_plan: None,
            breaker: None,
            hedge_after: None,
        }
    }
}

impl SwiftConfig {
    /// The paper's OSIC testbed shape: 6 proxies, 29 object servers with 10
    /// devices each, 3-replica ring.
    pub fn osic_testbed() -> Self {
        SwiftConfig {
            proxies: 6,
            object_servers: 29,
            devices_per_server: 10,
            part_power: 12,
            replicas: 3,
            zones: 5,
            auth_enabled: false,
            backend: BackendKind::Memory,
            fault_plan: None,
            breaker: None,
            hedge_after: None,
        }
    }
}

/// The assembled cluster.
pub struct SwiftCluster {
    config: SwiftConfig,
    ring: Arc<RwLock<Ring>>,
    servers: Arc<HashMap<u32, Arc<ObjectServer>>>,
    proxies: Vec<Arc<ProxyServer>>,
    containers: Arc<ContainerService>,
    auth: Arc<AuthService>,
    next_proxy: AtomicUsize,
    fault_injector: Option<Arc<FaultInjector>>,
    health: Option<Arc<NodeHealth>>,
    /// Lazily-started TCP front end (one per cluster, shared by every
    /// TCP-transport client); shut down when the cluster drops.
    net: Mutex<Option<Arc<NetHandle>>>,
}

impl SwiftCluster {
    /// Build a cluster from a config.
    pub fn new(config: SwiftConfig) -> Result<Arc<SwiftCluster>> {
        let mut builder = RingBuilder::new(config.part_power, config.replicas);
        let mut device_map: HashMap<u32, Vec<DeviceId>> = HashMap::new();
        for node in 0..config.object_servers as u32 {
            let zone = node % config.zones.max(1);
            for _ in 0..config.devices_per_server {
                let dev = builder.add_device(node, zone, 1.0);
                device_map.entry(node).or_default().push(dev);
            }
        }
        let ring = Arc::new(RwLock::new(builder.build()?));

        let fault_injector = config.fault_plan.clone().map(FaultInjector::new);
        let mut servers = HashMap::new();
        for (node, devs) in &device_map {
            let mut backends: HashMap<DeviceId, Arc<dyn StorageBackend>> = HashMap::new();
            for d in devs {
                let base: Arc<dyn StorageBackend> = match &config.backend {
                    BackendKind::Memory => Arc::new(MemBackend::new()),
                    BackendKind::Disk(root) => {
                        let dir = root.join(format!("node-{node}")).join(format!("dev-{}", d.0));
                        Arc::new(DiskBackend::open(dir)?)
                    }
                };
                let backend = match &fault_injector {
                    Some(inj) => Arc::new(ChaosBackend::new(base, *node, inj.clone())) as _,
                    None => base,
                };
                backends.insert(*d, backend);
            }
            servers.insert(*node, Arc::new(ObjectServer::with_backends(*node, backends)));
        }
        let servers = Arc::new(servers);
        let containers = Arc::new(ContainerService::new());
        let auth = Arc::new(AuthService::new());

        // One breaker registry for the whole cluster: every proxy's replica
        // outcomes train the same per-node state machines.
        let health = config.breaker.map(NodeHealth::new);
        let proxies = (0..config.proxies as u32)
            .map(|id| {
                let mut proxy = ProxyServer::new(
                    id,
                    ring.clone(),
                    servers.clone(),
                    containers.clone(),
                    auth.clone(),
                    config.auth_enabled,
                );
                if let Some(h) = &health {
                    proxy = proxy.with_health(h.clone());
                }
                if let Some(after) = config.hedge_after {
                    proxy = proxy.with_hedging(after);
                }
                Arc::new(proxy)
            })
            .collect();

        Ok(Arc::new(SwiftCluster {
            config,
            ring,
            servers,
            proxies,
            containers,
            auth,
            next_proxy: AtomicUsize::new(0),
            fault_injector,
            health,
            net: Mutex::new(None),
        }))
    }

    /// Start (or fetch) the cluster's TCP front end. Idempotent: the first
    /// call binds a loopback listener in front of the proxies; later calls
    /// (regardless of options) return the same handle.
    pub fn serve_net(&self, opts: NetOptions) -> Result<Arc<NetHandle>> {
        // Double-checked so `NetServer::serve` (binds a listener, spawns
        // workers — it blocks) never runs while `net` is held. Two racing
        // first calls may both bind; the loser's handle drops and its
        // listener shuts down, which only costs a discarded ephemeral
        // port.
        if let Some(h) = self.net.lock().as_ref() {
            return Ok(h.clone());
        }
        let handle = Arc::new(NetServer::serve(
            self.proxies.clone(),
            self.containers.clone(),
            self.fault_injector.clone(),
            opts,
        )?);
        let mut guard = self.net.lock();
        if let Some(h) = guard.as_ref() {
            return Ok(h.clone());
        }
        *guard = Some(handle.clone());
        Ok(handle)
    }

    /// The chaos injector, when the cluster was built with a fault plan.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.fault_injector.as_ref()
    }

    /// Injected-fault counters (zeroes when no fault plan is active).
    pub fn fault_stats(&self) -> FaultStatsSnapshot {
        self.fault_injector
            .as_ref()
            .map(|i| i.stats())
            .unwrap_or_default()
    }

    /// Total read failovers to another replica, summed over all proxies.
    pub fn replica_failovers(&self) -> u64 {
        self.proxies
            .iter()
            .map(|p| p.stats.replica_failovers.get())
            .sum()
    }

    /// The shared per-node breaker registry, when breakers are enabled.
    pub fn node_health(&self) -> Option<&Arc<NodeHealth>> {
        self.health.as_ref()
    }

    /// Replica reads short-circuited by an open breaker (cluster-wide).
    pub fn breaker_skips(&self) -> u64 {
        self.health.as_ref().map(|h| h.skips()).unwrap_or(0)
    }

    /// Hedge requests launched, summed over all proxies.
    pub fn hedged_gets(&self) -> u64 {
        self.proxies
            .iter()
            .map(|p| p.stats.hedged_gets.get())
            .sum()
    }

    /// Hedged reads won by a hedge (not the first replica), summed over
    /// all proxies.
    pub fn hedge_wins(&self) -> u64 {
        self.proxies
            .iter()
            .map(|p| p.stats.hedge_wins.get())
            .sum()
    }

    /// Cluster configuration.
    pub fn config(&self) -> &SwiftConfig {
        &self.config
    }

    /// The shared auth service (register users, issue tokens).
    pub fn auth(&self) -> &AuthService {
        &self.auth
    }

    /// The shared container service.
    pub fn containers(&self) -> &ContainerService {
        &self.containers
    }

    /// The object ring.
    pub fn ring(&self) -> Arc<RwLock<Ring>> {
        self.ring.clone()
    }

    /// Object server by node id.
    pub fn object_server(&self, node: u32) -> Option<Arc<ObjectServer>> {
        self.servers.get(&node).cloned()
    }

    /// All object servers.
    pub fn object_servers(&self) -> Vec<Arc<ObjectServer>> {
        let mut v: Vec<_> = self.servers.values().cloned().collect();
        v.sort_by_key(|s| s.id);
        v
    }

    /// All proxies.
    pub fn proxies(&self) -> &[Arc<ProxyServer>] {
        &self.proxies
    }

    /// Install an object-stage middleware pipeline on every object server.
    pub fn set_object_pipeline(&self, pipeline: Pipeline) {
        for s in self.servers.values() {
            s.set_pipeline(pipeline.clone());
        }
    }

    /// Install a proxy-stage middleware pipeline on every proxy.
    pub fn set_proxy_pipeline(&self, pipeline: Pipeline) {
        for p in &self.proxies {
            p.set_pipeline(pipeline.clone());
        }
    }

    /// Round-robin proxy selection (stands in for the testbed's HAProxy
    /// load balancer).
    pub fn next_proxy(&self) -> Arc<ProxyServer> {
        let i = self.next_proxy.fetch_add(1, Ordering::Relaxed) % self.proxies.len();
        self.proxies[i].clone()
    }

    /// Handle a raw request through the load balancer.
    pub fn handle(&self, req: Request) -> Result<Response> {
        self.next_proxy().handle(req)
    }

    /// Run a replication audit/repair pass.
    pub fn repair(&self) -> Result<RepairReport> {
        Replicator::new(self.ring.clone(), self.servers.clone(), self.containers.clone())
            .repair()
    }

    /// Mark an object server up/down (failure injection).
    pub fn set_server_down(&self, node: u32, down: bool) -> Result<()> {
        self.servers
            .get(&node)
            .map(|s| s.set_down(down))
            .ok_or_else(|| ScoopError::NotFound(format!("object server {node}")))
    }

    /// Total payload bytes stored across all devices (incl. replicas).
    pub fn bytes_stored(&self) -> u64 {
        self.servers
            .values()
            .flat_map(|s| {
                s.device_ids()
                    .into_iter()
                    .filter_map(|d| s.backend(d).ok())
                    .map(|b| b.bytes_used())
                    .collect::<Vec<_>>()
            })
            .sum()
    }

    /// Open an authenticated client session.
    pub fn client(self: &Arc<Self>, account: &str, user: &str, key: &str) -> Result<SwiftClient> {
        let token = if self.config.auth_enabled {
            Some(self.auth.issue_token(account, user, key)?)
        } else {
            None
        };
        Ok(SwiftClient::assemble(self.clone(), account, token))
    }

    /// Open an unauthenticated client (only valid when auth is disabled).
    pub fn anonymous_client(self: &Arc<Self>, account: &str) -> SwiftClient {
        SwiftClient::assemble(self.clone(), account, None)
    }
}

impl std::fmt::Debug for SwiftCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwiftCluster")
            .field("proxies", &self.proxies.len())
            .field("object_servers", &self.servers.len())
            .field("replicas", &self.config.replicas)
            .finish()
    }
}

/// How a [`SwiftClient`] reaches the proxy tier.
#[derive(Clone)]
enum Transport {
    /// Direct in-process calls (the historical path; zero framing).
    InProcess,
    /// Real HTTP/1.1 frames over pooled loopback TCP connections.
    Tcp(Arc<HttpPool>),
}

/// A client session bound to an account.
#[derive(Clone)]
pub struct SwiftClient {
    cluster: Arc<SwiftCluster>,
    account: String,
    token: Option<String>,
    retry: RetryPolicy,
    retries: Arc<AtomicU64>,
    deadline: Arc<Mutex<Deadline>>,
    /// Trace ID stamped on every request (shared across clones).
    trace: Arc<Mutex<Option<String>>>,
    /// Registry mirror of `retries` (registered at assembly so a snapshot
    /// always carries the metric, even before the first retry).
    retries_global: telemetry::Counter,
    transport: Transport,
}

/// Process-wide upload counter: tokens must be unique across every client
/// (two clients re-writing one object must never share a token, or the
/// second write would be mistaken for a replay and dropped).
static NEXT_UPLOAD_ID: AtomicU64 = AtomicU64::new(0);

impl SwiftClient {
    fn assemble(cluster: Arc<SwiftCluster>, account: &str, token: Option<String>) -> SwiftClient {
        // `SCOOP_TRANSPORT=tcp` flips every client onto the TCP data plane,
        // so the existing e2e suites run unmodified over real sockets. A
        // failed listener bind falls back to in-process rather than
        // panicking inside test setup.
        let transport = if std::env::var("SCOOP_TRANSPORT").map(|v| v == "tcp").unwrap_or(false) {
            match cluster.serve_net(NetOptions::default()) {
                Ok(h) => Transport::Tcp(HttpPool::new(h.addr(), PoolConfig::default())),
                Err(_) => Transport::InProcess,
            }
        } else {
            Transport::InProcess
        };
        SwiftClient {
            cluster,
            account: account.to_string(),
            token,
            retry: RetryPolicy::none(),
            retries: Arc::new(AtomicU64::new(0)),
            deadline: Arc::new(Mutex::new(Deadline::none())),
            trace: Arc::new(Mutex::new(None)),
            retries_global: telemetry::counter(names::CLIENT_RETRIES),
            transport,
        }
    }

    /// Builder: switch this client onto the TCP data plane with default
    /// server/pool options, starting the cluster's front end if needed.
    pub fn over_tcp(self) -> Result<SwiftClient> {
        self.over_tcp_with(NetOptions::default(), PoolConfig::default())
    }

    /// Builder: TCP transport with explicit server options and pool config.
    pub fn over_tcp_with(mut self, opts: NetOptions, cfg: PoolConfig) -> Result<SwiftClient> {
        let handle = self.cluster.serve_net(opts)?;
        self.transport = Transport::Tcp(HttpPool::new(handle.addr(), cfg));
        Ok(self)
    }

    /// True when requests ride real sockets.
    pub fn is_tcp(&self) -> bool {
        matches!(self.transport, Transport::Tcp(_))
    }

    /// The connection pool behind the TCP transport, for tests and reports.
    pub fn transport_pool(&self) -> Option<&Arc<HttpPool>> {
        match &self.transport {
            Transport::Tcp(pool) => Some(pool),
            Transport::InProcess => None,
        }
    }

    /// One request/response exchange over whichever transport is in force.
    fn dispatch(&self, req: Request) -> Result<Response> {
        match &self.transport {
            Transport::InProcess => self.cluster.handle(req),
            Transport::Tcp(pool) => pool.send(&req),
        }
    }

    /// The account this client operates on.
    pub fn account(&self) -> &str {
        &self.account
    }

    /// The cluster behind this client.
    pub fn cluster(&self) -> &Arc<SwiftCluster> {
        &self.cluster
    }

    /// Builder: re-dispatch retryably-failed requests under `policy` with
    /// exponential backoff + jitter. Retry covers the request/response
    /// exchange; errors surfacing mid-body-stream are the consumer's to
    /// handle (the connector resumes them with ranged GETs).
    pub fn with_retry(mut self, policy: RetryPolicy) -> SwiftClient {
        self.retry = policy;
        self
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Requests re-dispatched after a retryable failure, over this client's
    /// lifetime (shared across clones).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Set the time budget stamped on every subsequent request (shared
    /// across clones of this client). [`Deadline::none()`] clears it.
    pub fn set_deadline(&self, deadline: Deadline) {
        *self.deadline.lock() = deadline;
    }

    /// Set the trace ID stamped (as `x-scoop-trace`) on every subsequent
    /// request, shared across clones of this client. `None` clears it.
    pub fn set_trace(&self, trace: Option<String>) {
        *self.trace.lock() = trace;
    }

    /// The trace ID in force, if any.
    pub fn trace(&self) -> Option<String> {
        self.trace.lock().clone()
    }

    /// Send a request, attaching the auth token; retryable failures are
    /// re-dispatched per the client's [`RetryPolicy`]. The client's deadline
    /// (if set) is stamped on the request, bounds backoff sleeps, and stops
    /// re-dispatch once expired — the last real error surfaces, not a
    /// synthetic timeout.
    pub fn request(&self, mut req: Request) -> Result<Response> {
        if let Some(tok) = &self.token {
            req.headers.set(scoop_common::headers::AUTH_TOKEN, tok.clone());
        }
        let trace = self.trace.lock().clone();
        if let Some(t) = &trace {
            req.headers.set(scoop_common::headers::TRACE, t.clone());
        }
        let _span = telemetry::span(
            trace.as_deref(),
            telemetry::layers::CLIENT,
            format!("{:?} {}", req.method, req.path.ring_key()),
        );
        req.deadline = req.deadline.earliest(*self.deadline.lock());
        let deadline = req.deadline;
        deadline.check("client dispatch")?;
        let mut rng = scoop_common::rng::XorShift64::new(self.retry.seed);
        let mut attempt = 0u32;
        loop {
            match self.dispatch(req.clone()) {
                Ok(resp) => return Ok(resp),
                Err(e)
                    if e.is_retryable()
                        && attempt + 1 < self.retry.max_attempts
                        && !deadline.expired() =>
                {
                    std::thread::sleep(deadline.clamp_sleep(self.retry.backoff(attempt, &mut rng)));
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.retries_global.inc();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Stamp auth token and trace on a raw (non-object) request's headers.
    fn raw_headers(&self) -> Headers {
        let mut h = Headers::new();
        if let Some(tok) = &self.token {
            h.set(scoop_common::headers::AUTH_TOKEN, tok.clone());
        }
        if let Some(t) = self.trace.lock().as_ref() {
            h.set(scoop_common::headers::TRACE, t.clone());
        }
        h
    }

    /// Snapshot the client's deadline. The guard is scoped to this frame,
    /// so callers can sleep or dispatch on sockets without holding
    /// `SwiftClient.deadline` across the blocking call.
    fn current_deadline(&self) -> Deadline {
        *self.deadline.lock()
    }

    /// One raw (non-object) exchange under the client's retry policy.
    /// Container creates and listings are idempotent, so re-dispatch after
    /// a retryable wire failure is always safe.
    fn raw_retrying(
        &self,
        pool: &Arc<HttpPool>,
        method: Method,
        target: &str,
        headers: Headers,
    ) -> Result<(u16, Headers, bytes::Bytes)> {
        let deadline = self.current_deadline();
        deadline.check("raw dispatch")?;
        let mut rng = scoop_common::rng::XorShift64::new(self.retry.seed);
        let mut attempt = 0u32;
        loop {
            match pool.send_raw(method, target, headers.clone(), deadline) {
                Ok(out) => return Ok(out),
                Err(e)
                    if e.is_retryable()
                        && attempt + 1 < self.retry.max_attempts
                        && !deadline.expired() =>
                {
                    std::thread::sleep(deadline.clamp_sleep(self.retry.backoff(attempt, &mut rng)));
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.retries_global.inc();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Create a container.
    pub fn create_container(&self, container: &str) -> Result<()> {
        match &self.transport {
            Transport::InProcess => {
                self.cluster.containers.create_container(&self.account, container);
                Ok(())
            }
            Transport::Tcp(pool) => {
                let target = format!(
                    "/{}/{}",
                    wire::encode_segment(&self.account),
                    wire::encode_segment(container)
                );
                let (status, _, _) =
                    self.raw_retrying(pool, Method::Put, &target, self.raw_headers())?;
                if status == 201 {
                    Ok(())
                } else {
                    Err(ScoopError::Internal(format!(
                        "container create answered unexpected status {status}"
                    )))
                }
            }
        }
    }

    /// Store an object. Each upload carries a unique idempotency token, so a
    /// PUT re-dispatched by the retry loop after a lost ack cannot store (or
    /// count toward replica quorum) twice.
    pub fn put_object(&self, container: &str, object: &str, data: Bytes) -> Result<Response> {
        let path = ObjectPath::new(self.account.clone(), container, object)?;
        let token = format!("upload-{}", NEXT_UPLOAD_ID.fetch_add(1, Ordering::Relaxed));
        self.request(Request::put(path, data).with_header(UPLOAD_TOKEN_HEADER, token))
    }

    /// Fetch a whole object.
    pub fn get_object(&self, container: &str, object: &str) -> Result<Response> {
        let path = ObjectPath::new(self.account.clone(), container, object)?;
        self.request(Request::get(path))
    }

    /// Delete an object.
    pub fn delete_object(&self, container: &str, object: &str) -> Result<Response> {
        let path = ObjectPath::new(self.account.clone(), container, object)?;
        self.request(Request::delete(path))
    }

    /// `GET /info`: the telemetry snapshot served by whichever proxy the
    /// load balancer picks — the Swift recon/info analogue, no auth (the
    /// snapshot carries operational counters, not object data). On the TCP
    /// transport a wire failure degrades to `503` rather than erroring: the
    /// snapshot is best-effort operational data.
    pub fn info(&self) -> Response {
        match &self.transport {
            Transport::InProcess => self.cluster.next_proxy().info(),
            Transport::Tcp(pool) => {
                match pool.send_raw(Method::Get, "/info", self.raw_headers(), *self.deadline.lock())
                {
                    Ok((status, headers, body)) => {
                        wire::response_from_parts(status, headers, body)
                    }
                    Err(_) => Response::unavailable(),
                }
            }
        }
    }

    /// `GET /metrics`: the live Prometheus text rendering of the telemetry
    /// registry. In-process transports render the local snapshot directly;
    /// over TCP the request crosses the wire so the text reflects whichever
    /// proxy answered. Best-effort like [`SwiftClient::info`].
    pub fn metrics_text(&self) -> Result<String> {
        match &self.transport {
            Transport::InProcess => Ok(telemetry::snapshot().to_prometheus()),
            Transport::Tcp(pool) => {
                let (status, _, body) = pool.send_raw(
                    Method::Get,
                    "/metrics",
                    self.raw_headers(),
                    *self.deadline.lock(),
                )?;
                if status != 200 {
                    return Err(ScoopError::Internal(format!(
                        "/metrics answered unexpected status {status}"
                    )));
                }
                Ok(String::from_utf8_lossy(&body).into_owned())
            }
        }
    }

    /// `GET /trace/{id}`: the JSON span dump for one trace. Over TCP the
    /// spans come from the server's store; the caller's own client-side
    /// spans for the same trace live in the local store (`trace_spans`).
    pub fn trace_json(&self, trace: &str) -> Result<String> {
        match &self.transport {
            Transport::InProcess => Ok(telemetry::trace_to_json(trace)),
            Transport::Tcp(pool) => {
                let target = format!("/trace/{}", wire::encode_segment(trace));
                let (status, _, body) = pool.send_raw(
                    Method::Get,
                    &target,
                    self.raw_headers(),
                    *self.deadline.lock(),
                )?;
                if status != 200 {
                    return Err(ScoopError::Internal(format!(
                        "/trace answered unexpected status {status}"
                    )));
                }
                Ok(String::from_utf8_lossy(&body).into_owned())
            }
        }
    }

    /// `GET /events`: the wide-event (slow-query) ring as JSON.
    pub fn events_json(&self) -> Result<String> {
        match &self.transport {
            Transport::InProcess => Ok(telemetry::events_to_json(&telemetry::query_events())),
            Transport::Tcp(pool) => {
                let (status, _, body) = pool.send_raw(
                    Method::Get,
                    "/events",
                    self.raw_headers(),
                    *self.deadline.lock(),
                )?;
                if status != 200 {
                    return Err(ScoopError::Internal(format!(
                        "/events answered unexpected status {status}"
                    )));
                }
                Ok(String::from_utf8_lossy(&body).into_owned())
            }
        }
    }

    /// Object metadata.
    pub fn head_object(&self, container: &str, object: &str) -> Result<Response> {
        let path = ObjectPath::new(self.account.clone(), container, object)?;
        self.request(Request::head(path))
    }

    /// Container listing.
    pub fn list(&self, container: &str, prefix: Option<&str>) -> Result<Vec<ObjectRecord>> {
        match &self.transport {
            Transport::InProcess => {
                self.cluster.containers.list_objects(&self.account, container, prefix)
            }
            Transport::Tcp(pool) => {
                let target = format!(
                    "/{}/{}",
                    wire::encode_segment(&self.account),
                    wire::encode_segment(container)
                );
                let mut headers = self.raw_headers();
                if let Some(p) = prefix {
                    headers.set(scoop_common::headers::LIST_PREFIX, p.to_string());
                }
                let (_, _, body) = self.raw_retrying(pool, Method::Get, &target, headers)?;
                wire::decode_listing(&body)
            }
        }
    }

    /// Fetch several byte ranges of one object. Over TCP the batch is
    /// *pipelined*: every GET frame is written back-to-back on one pooled
    /// connection and the responses are read in order — one round trip of
    /// latency for the whole batch. In-process the ranges dispatch
    /// sequentially (there is no wire to amortize). Retryable wire failures
    /// re-dispatch the whole batch under the client's [`RetryPolicy`]
    /// (GETs are idempotent, so a replayed batch is safe).
    pub fn get_ranges(
        &self,
        container: &str,
        object: &str,
        ranges: &[ByteRange],
    ) -> Result<Vec<Response>> {
        let path = ObjectPath::new(self.account.clone(), container, object)?;
        match &self.transport {
            Transport::InProcess => ranges
                .iter()
                .map(|r| self.request(Request::get(path.clone()).with_range(*r)))
                .collect(),
            Transport::Tcp(pool) => {
                let deadline = self.current_deadline();
                deadline.check("pipelined dispatch")?;
                let trace = self.trace.lock().clone();
                let _span = telemetry::span(
                    trace.as_deref(),
                    telemetry::layers::CLIENT,
                    format!("pipelined GET x{} {}", ranges.len(), path.ring_key()),
                );
                let reqs: Vec<Request> = ranges
                    .iter()
                    .map(|r| {
                        let mut req =
                            Request::get(path.clone()).with_range(*r).with_deadline(deadline);
                        if let Some(tok) = &self.token {
                            req.headers.set(scoop_common::headers::AUTH_TOKEN, tok.clone());
                        }
                        if let Some(t) = &trace {
                            req.headers.set(scoop_common::headers::TRACE, t.clone());
                        }
                        req
                    })
                    .collect();
                let mut rng = scoop_common::rng::XorShift64::new(self.retry.seed);
                let mut attempt = 0u32;
                loop {
                    match pool.send_pipelined(&reqs) {
                        Ok(responses) => return Ok(responses),
                        Err(e)
                            if e.is_retryable()
                                && attempt + 1 < self.retry.max_attempts
                                && !deadline.expired() =>
                        {
                            std::thread::sleep(
                                deadline.clamp_sleep(self.retry.backoff(attempt, &mut rng)),
                            );
                            attempt += 1;
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            self.retries_global.inc();
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_end_to_end() {
        let cluster = SwiftCluster::new(SwiftConfig::default()).unwrap();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "a.csv", Bytes::from_static(b"x,y\n1,2\n"))
            .unwrap();
        let resp = client.get_object("meters", "a.csv").unwrap();
        assert_eq!(resp.read_body().unwrap(), "x,y\n1,2\n");
        assert_eq!(client.list("meters", None).unwrap().len(), 1);
        // 3 replicas stored.
        assert_eq!(cluster.bytes_stored(), 8 * 3);
        client.delete_object("meters", "a.csv").unwrap();
        assert_eq!(cluster.bytes_stored(), 0);
    }

    #[test]
    fn authenticated_flow() {
        let cluster = SwiftCluster::new(SwiftConfig {
            auth_enabled: true,
            ..Default::default()
        })
        .unwrap();
        cluster.auth().register_user("AUTH_gp", "analyst", "pw");
        assert!(cluster.client("AUTH_gp", "analyst", "bad").is_err());
        let client = cluster.client("AUTH_gp", "analyst", "pw").unwrap();
        client.create_container("c").unwrap();
        client.put_object("c", "o", Bytes::from_static(b"d")).unwrap();
        assert_eq!(
            client.get_object("c", "o").unwrap().read_body().unwrap(),
            "d"
        );
        // Anonymous client on the same cluster is rejected.
        let anon = cluster.anonymous_client("AUTH_gp");
        assert!(anon.get_object("c", "o").is_err());
    }

    #[test]
    fn osic_shape() {
        let cluster = SwiftCluster::new(SwiftConfig {
            part_power: 8, // keep test fast; shape fields below still OSIC
            ..SwiftConfig::osic_testbed()
        })
        .unwrap();
        assert_eq!(cluster.proxies().len(), 6);
        assert_eq!(cluster.object_servers().len(), 29);
        assert_eq!(cluster.ring().read().devices().len(), 290);
    }

    #[test]
    fn survives_node_failure_and_repairs() {
        let cluster = SwiftCluster::new(SwiftConfig::default()).unwrap();
        let client = cluster.anonymous_client("a");
        client.create_container("c").unwrap();
        for i in 0..25 {
            client
                .put_object("c", &format!("o{i}"), Bytes::from(vec![b'z'; 100]))
                .unwrap();
        }
        cluster.set_server_down(1, true).unwrap();
        // All objects remain readable through surviving replicas.
        for i in 0..25 {
            assert!(client.get_object("c", &format!("o{i}")).is_ok(), "o{i}");
        }
        // Writes during the outage under-replicate; repair fixes them.
        for i in 25..40 {
            client
                .put_object("c", &format!("o{i}"), Bytes::from(vec![b'w'; 100]))
                .unwrap();
        }
        cluster.set_server_down(1, false).unwrap();
        let report = cluster.repair().unwrap();
        assert_eq!(report.objects_lost, 0);
        let clean = cluster.repair().unwrap();
        assert_eq!(clean.replicas_restored, 0);
        assert_eq!(cluster.bytes_stored(), 40 * 100 * 3);
    }

    #[test]
    fn get_fails_over_past_replicas_that_missed_the_put() {
        // Regression: a PUT that reached write quorum while one node was
        // down leaves that node without the object. Before repair runs, a
        // GET probing the stale replica first used to abort with NotFound
        // instead of failing over to the replicas that hold the object.
        let cluster = SwiftCluster::new(SwiftConfig::default()).unwrap();
        let client = cluster.anonymous_client("a");
        client.create_container("c").unwrap();
        for node in 0..4 {
            cluster.set_server_down(node, true).unwrap();
            client
                .put_object("c", &format!("o{node}"), Bytes::from(vec![b'a' + node as u8; 64]))
                .unwrap();
            cluster.set_server_down(node, false).unwrap();
        }
        // No repair pass: every object is missing exactly one replica.
        for node in 0..4 {
            let body = client
                .get_object("c", &format!("o{node}"))
                .unwrap()
                .read_body()
                .unwrap();
            assert_eq!(body, Bytes::from(vec![b'a' + node as u8; 64]), "o{node}");
        }
        // A genuinely absent object still 404s after probing all replicas.
        let err = client.get_object("c", "ghost").unwrap_err();
        assert_eq!(err.kind(), "not_found");
    }

    #[test]
    fn round_robin_spreads_over_proxies() {
        let cluster = SwiftCluster::new(SwiftConfig::default()).unwrap();
        let a = cluster.next_proxy().id;
        let b = cluster.next_proxy().id;
        assert_ne!(a, b);
    }

    #[test]
    fn breaker_skips_downed_node_then_readmits_it() {
        let cluster = SwiftCluster::new(SwiftConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                open_for: Duration::from_millis(20),
            }),
            ..Default::default()
        })
        .unwrap();
        let client = cluster.anonymous_client("a");
        client.create_container("c").unwrap();
        for i in 0..20 {
            client
                .put_object("c", &format!("o{i}"), Bytes::from(vec![b'x'; 32]))
                .unwrap();
        }
        cluster.set_server_down(0, true).unwrap();
        // Repeated reads train the breaker on node 0; once open, replicas
        // there are skipped without being probed — reads still succeed.
        for _ in 0..3 {
            for i in 0..20 {
                assert!(client.get_object("c", &format!("o{i}")).is_ok(), "o{i}");
            }
        }
        assert!(cluster.breaker_skips() > 0, "breaker never skipped node 0");
        // Recovery: after `open_for`, the half-open probe re-admits node 0
        // and successful reads close the breaker again.
        cluster.set_server_down(0, false).unwrap();
        std::thread::sleep(Duration::from_millis(25));
        for i in 0..20 {
            assert!(client.get_object("c", &format!("o{i}")).is_ok(), "o{i}");
        }
        let health = cluster.node_health().unwrap();
        assert!(!health.is_open(0, std::time::Instant::now()));
    }

    #[test]
    fn hedged_get_races_past_a_slow_first_replica() {
        // Find which node serves the first replica of the object, then make
        // only that node slow: the hedge should win with a fast replica.
        let probe = SwiftCluster::new(SwiftConfig::default()).unwrap();
        let key = ObjectPath::new("a", "c", "o.csv").unwrap().ring_key();
        let first_dev = probe.ring().read().lookup(&key)[0];
        let slow_node = probe.ring().read().device(first_dev).node;

        let cluster = SwiftCluster::new(SwiftConfig {
            fault_plan: Some(
                FaultPlan::quiet(7).with_slow_node(slow_node, Duration::from_millis(40)),
            ),
            hedge_after: Some(Duration::from_millis(2)),
            ..Default::default()
        })
        .unwrap();
        let client = cluster.anonymous_client("a");
        client.create_container("c").unwrap();
        client.put_object("c", "o.csv", Bytes::from_static(b"hedged")).unwrap();
        let body = client.get_object("c", "o.csv").unwrap().read_body().unwrap();
        assert_eq!(body, "hedged");
        assert!(cluster.hedged_gets() > 0, "no hedge was launched");
        assert!(cluster.hedge_wins() > 0, "hedge never beat the slow replica");
    }

    #[test]
    fn disk_backed_cluster_roundtrip() {
        let root =
            std::env::temp_dir().join(format!("scoop-swift-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cluster = SwiftCluster::new(SwiftConfig {
            backend: BackendKind::Disk(root.clone()),
            object_servers: 3,
            devices_per_server: 1,
            part_power: 4,
            ..Default::default()
        })
        .unwrap();
        let client = cluster.anonymous_client("a");
        client.create_container("c").unwrap();
        client
            .put_object("c", "o.csv", Bytes::from_static(b"persisted"))
            .unwrap();
        assert_eq!(
            client.get_object("c", "o.csv").unwrap().read_body().unwrap(),
            "persisted"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
