//! A from-scratch, Swift-like object store.
//!
//! This crate reproduces the parts of OpenStack Swift that Scoop's data path
//! depends on (Section III-B of the paper):
//!
//! * A flat `/account/container/object` namespace ([`path`]).
//! * A consistent-hash **ring** mapping objects to devices across zones with
//!   weighted balancing and minimal movement on rebalance ([`ring`]).
//! * A **two-tier architecture**: proxy servers (authentication, routing,
//!   replication fan-out) and object servers (device-local storage)
//!   ([`proxy`], [`objserver`]).
//! * A WSGI-like **middleware pipeline** on both tiers — the hook the Storlet
//!   engine uses to intercept requests ([`middleware`]).
//! * HTTP-shaped requests/responses with headers, metadata and byte ranges
//!   ([`request`]).
//! * Token **authentication** ([`auth`]), **replication** with failure
//!   injection and repair ([`replication`]), and pluggable storage
//!   **backends** (memory / disk) ([`backend`]).
//! * A deterministic **fault-injection** layer ([`fault`]) that wraps device
//!   backends with seeded transient errors, truncated bodies, stalled reads,
//!   per-node down windows and slow-node latency skew for the chaos suite.
//! * Per-node **health tracking** ([`health`]): the closed → open →
//!   half-open circuit breaker the proxies consult before replica reads.
//! * A real **TCP data plane** ([`net`]): an HTTP/1.1 server in front of
//!   the proxies plus a pooled keep-alive client transport, with wire-level
//!   chaos (RST, partial writes, slowloris, garbage frames, half-close)
//!   injected at the socket boundary.
//!
//! The top-level entry point is [`swift::SwiftCluster`], which assembles the
//! tiers exactly like the paper's testbed (6 proxies, 29 object servers, 10
//! devices each) and exposes a client API.

pub mod auth;
pub mod backend;
pub mod fault;
pub mod health;
pub mod hedge;
pub mod middleware;
pub mod net;
pub mod objserver;
pub mod path;
pub mod proxy;
pub mod replication;
pub mod request;
pub mod ring;
pub mod swift;

pub use fault::{
    ChaosBackend, DownWindow, FaultInjector, FaultPlan, FaultStatsSnapshot, SlowNode, WireFault,
    WireFaults,
};
pub use health::{BreakerConfig, NodeHealth};
pub use net::{HttpPool, NetHandle, NetOptions, PoolConfig};
pub use path::ObjectPath;
pub use request::{Method, Request, Response};
pub use ring::{DeviceId, Ring, RingBuilder};
pub use swift::{SwiftClient, SwiftCluster, SwiftConfig};
