//! Store-level chaos suite: the Swift-like store, wrapped in the
//! fault-injection harness, must keep serving byte-identical data under
//! every fault class — transient I/O errors, truncated bodies, stalled
//! reads, and per-node down windows — with the retry/failover counters
//! proving the faults actually fired.
//!
//! Every test is single-threaded over a seeded [`FaultPlan`], so a failure
//! reproduces exactly from its seed.

use bytes::Bytes;
use scoop_common::{stream, RetryPolicy};
use scoop_objectstore::{FaultPlan, SwiftClient, SwiftCluster, SwiftConfig};
use std::sync::Arc;
use std::time::Duration;

const N_OBJECTS: usize = 12;

/// Base seeds are fixed for day-to-day reproducibility; the CI seed matrix
/// exports `SCOOP_CHAOS_SEED` to perturb every plan, so each matrix leg
/// explores a different deterministic fault sequence. A matrix failure
/// reproduces locally by exporting the same value.
fn seed(base: u64) -> u64 {
    match std::env::var("SCOOP_CHAOS_SEED") {
        Ok(s) => {
            let mix: u64 = s.parse().expect("SCOOP_CHAOS_SEED must be a u64");
            base ^ mix.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        }
        Err(_) => base,
    }
}

/// Deterministic per-object payload (sizes straddle several chunks).
fn payload(i: usize) -> Bytes {
    let len = 700 + i * 137;
    Bytes::from((0..len).map(|b| ((b * 31 + i * 7) % 251) as u8).collect::<Vec<u8>>())
}

/// Build a cluster under `plan`, load the fixture through a retrying
/// client, and hand both back.
fn chaos_cluster(plan: Option<FaultPlan>) -> (Arc<SwiftCluster>, SwiftClient) {
    let cluster = SwiftCluster::new(SwiftConfig {
        fault_plan: plan,
        ..SwiftConfig::default()
    })
    .unwrap();
    let client = cluster
        .anonymous_client("AUTH_chaos")
        .with_retry(RetryPolicy::default());
    client.create_container("data").unwrap();
    for i in 0..N_OBJECTS {
        client
            .put_object("data", &format!("o{i}"), payload(i))
            .unwrap();
    }
    (cluster, client)
}

/// GET an object and verify the body against the advertised length,
/// re-issuing the request on a retryable failure — the client-side
/// equivalent of the connector's resuming reads. Returns the body and how
/// many re-issues were needed.
fn get_verified(client: &SwiftClient, object: &str) -> (Bytes, u64) {
    let mut reissues = 0u64;
    loop {
        let result = client
            .get_object("data", object)
            .and_then(|resp| {
                let expected: u64 = resp
                    .headers
                    .get("content-length")
                    .expect("GET responses advertise content-length")
                    .parse()
                    .unwrap();
                stream::collect(stream::enforce_length(resp.body, expected))
            });
        match result {
            Ok(body) => return (body, reissues),
            Err(e) if e.is_retryable() && reissues < 16 => reissues += 1,
            Err(e) => panic!("GET {object} failed beyond retry budget: {e}"),
        }
    }
}

/// Read every object back and compare against both the source payload and
/// a fault-free cluster. Returns total verified-GET re-issues.
fn assert_byte_identical(client: &SwiftClient, reference: &SwiftClient) -> u64 {
    let mut reissues = 0;
    for i in 0..N_OBJECTS {
        let name = format!("o{i}");
        let (body, r) = get_verified(client, &name);
        reissues += r;
        assert_eq!(body, payload(i), "object {name} corrupted under faults");
        let (ref_body, _) = get_verified(reference, &name);
        assert_eq!(body, ref_body, "object {name} diverges from fault-free run");
    }
    reissues
}

#[test]
fn transient_errors_are_absorbed_by_failover_and_retry() {
    let (reference, ref_client) = chaos_cluster(None);
    let (cluster, client) = chaos_cluster(Some(FaultPlan::transient_errors(seed(0xA11CE))));
    let _ = reference;
    assert_byte_identical(&client, &ref_client);

    let stats = cluster.fault_stats();
    assert!(stats.errors > 0, "no transient errors fired: {stats:?}");
    // Recovery engaged somewhere in the stack: replica failover at proxies
    // and/or request re-dispatch at the client.
    assert!(
        cluster.replica_failovers() + client.retries() > 0,
        "faults fired but nothing retried (failovers {}, client retries {})",
        cluster.replica_failovers(),
        client.retries(),
    );
}

#[test]
fn truncated_bodies_are_detected_and_reread() {
    let (_reference, ref_client) = chaos_cluster(None);
    let (cluster, client) = chaos_cluster(Some(FaultPlan::truncated_bodies(seed(0xBEEF))));
    // One pass samples only a dozen-odd reads, so an arbitrary matrix seed
    // can come up clean; soak until a truncation fires and is re-read.
    let mut reissues = 0;
    for _ in 0..10 {
        reissues += assert_byte_identical(&client, &ref_client);
        if cluster.fault_stats().truncations > 0 && reissues > 0 {
            break;
        }
    }

    let stats = cluster.fault_stats();
    assert!(stats.truncations > 0, "no truncations fired: {stats:?}");
    // A truncated body passes the request/response exchange and only
    // surfaces once the stream is length-checked — the re-read counter is
    // the proof that detection, not luck, produced identical bytes.
    assert!(reissues > 0, "truncations fired but no GET was re-read");
}

#[test]
fn stalled_reads_delay_but_never_corrupt() {
    let (_reference, ref_client) = chaos_cluster(None);
    let (cluster, client) = chaos_cluster(Some(
        FaultPlan::stalled_reads(seed(0x57A11)).with_stalls(0.25, Duration::from_micros(200)),
    ));
    // Stalls delay but never fail, so soaking extra passes is cheap; keep
    // reading until the plan actually fires one.
    for _ in 0..10 {
        assert_byte_identical(&client, &ref_client);
        if cluster.fault_stats().stalls > 0 {
            break;
        }
    }

    let stats = cluster.fault_stats();
    assert!(stats.stalls > 0, "no stalls fired: {stats:?}");
    assert_eq!(stats.errors, 0);
}

#[test]
fn node_down_window_is_covered_by_surviving_replicas() {
    let (_reference, ref_client) = chaos_cluster(None);
    // Node 0 is down for the entire run: writes reach quorum on the other
    // replicas, reads fail over past the dead node.
    let (cluster, client) =
        chaos_cluster(Some(FaultPlan::quiet(seed(0xD0)).with_down_window(0, 0, u64::MAX)));
    assert_byte_identical(&client, &ref_client);

    let stats = cluster.fault_stats();
    assert!(stats.down_rejections > 0, "down window never hit: {stats:?}");
    assert!(
        cluster.replica_failovers() > 0,
        "reads never failed over around the dead node"
    );
}

#[test]
fn mixed_fault_soak_stays_consistent() {
    let (_reference, ref_client) = chaos_cluster(None);
    let plan = FaultPlan::quiet(seed(0x5C00F ^ 0x5EED))
        .with_error_rate(0.15)
        .with_truncate_rate(0.1)
        .with_stalls(0.05, Duration::from_micros(100))
        .with_down_window(1, 40, 120);
    let (cluster, client) = chaos_cluster(Some(plan));
    // Several passes, interleaving rereads with overwrites.
    for round in 0..3 {
        assert_byte_identical(&client, &ref_client);
        let _ = round;
    }
    let stats = cluster.fault_stats();
    assert!(stats.total_faults() > 0, "soak injected nothing: {stats:?}");
}

#[test]
fn deletes_survive_faults_without_resurrection() {
    // Regression companion to the DELETE-quorum fix: under transient
    // faults a delete either reaches write quorum (and the object is gone
    // everywhere that matters) or fails loudly — never a half-delete that
    // a later failover resurrects.
    let (_cluster, client) = chaos_cluster(Some(FaultPlan::transient_errors(seed(0xDE1))));
    for i in 0..N_OBJECTS {
        let name = format!("o{i}");
        let listed = |client: &SwiftClient| {
            client
                .list("data", None)
                .unwrap()
                .iter()
                .any(|r| r.name == name)
        };
        match client.delete_object("data", &name) {
            // Acked ⇒ write quorum reached ⇒ the listing entry is gone and
            // a majority of replicas dropped the object, so no later
            // failover or repair pass can serve it back.
            Ok(_) => assert!(!listed(&client), "deleted {name} still listed"),
            // Refused ⇒ below quorum ⇒ the listing entry must survive;
            // the delete visibly failed instead of half-applying.
            Err(e) => {
                assert!(listed(&client), "failed delete of {name} dropped the listing: {e}");
            }
        }
    }
}
