//! TCP data-plane suite: the HTTP/1.1 front end, the pooled client
//! transport, and the wire-level fault classes.
//!
//! The transport must be invisible to request semantics — every test here
//! drives the same `SwiftClient` API the in-process suites use, over real
//! loopback sockets, and asserts (a) byte identity, (b) pool lifecycle
//! invariants (no socket leak, keep-alive reuse, poisoned-connection
//! eviction), and (c) that every wire fault class both fires (counter
//! nonzero) and maps into the existing error taxonomy.

use bytes::Bytes;
use scoop_common::{stream, Deadline, RetryPolicy};
use scoop_objectstore::request::ByteRange;
use scoop_objectstore::{
    FaultPlan, NetOptions, PoolConfig, SwiftClient, SwiftCluster, SwiftConfig,
};
use std::sync::Arc;
use std::time::Duration;

/// Mirror of the chaos suite's seed mixer so the CI seed matrix perturbs
/// the wire fault sequences too.
fn seed(base: u64) -> u64 {
    match std::env::var("SCOOP_CHAOS_SEED") {
        Ok(s) => {
            let mix: u64 = s.parse().expect("SCOOP_CHAOS_SEED must be a u64");
            base ^ mix.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        }
        Err(_) => base,
    }
}

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|b| ((b * 131 + 7) % 251) as u8).collect::<Vec<u8>>())
}

/// A TCP-transport client over a cluster with `plan`, fixture loaded.
fn tcp_rig(plan: Option<FaultPlan>) -> (Arc<SwiftCluster>, SwiftClient) {
    let cluster = SwiftCluster::new(SwiftConfig {
        fault_plan: plan,
        ..SwiftConfig::default()
    })
    .unwrap();
    let client = cluster
        .anonymous_client("AUTH_net")
        .with_retry(RetryPolicy::default())
        .over_tcp()
        .unwrap();
    assert!(client.is_tcp(), "over_tcp must flip the transport");
    client.create_container("data").unwrap();
    (cluster, client)
}

#[test]
fn tcp_transport_preserves_request_semantics() {
    let (_cluster, client) = tcp_rig(None);
    let body = payload(200_000);
    client.put_object("data", "big dir/o 1.csv", body.clone()).unwrap();

    // Whole-object GET is byte-identical and advertises its length.
    let resp = client.get_object("data", "big dir/o 1.csv").unwrap();
    assert_eq!(resp.status, 200);
    let advertised: u64 = resp.headers.get("content-length").unwrap().parse().unwrap();
    let got = stream::collect(stream::enforce_length(resp.body, advertised)).unwrap();
    assert_eq!(got, body, "TCP GET corrupted the object");

    // HEAD carries metadata without a body.
    let head = client.head_object("data", "big dir/o 1.csv").unwrap();
    assert_eq!(head.headers.get("content-length").unwrap(), body.len().to_string());

    // Ranged GET (suffix form crosses the wire untouched).
    let resp = client
        .request(
            scoop_objectstore::Request::get(
                scoop_objectstore::ObjectPath::new("AUTH_net", "data", "big dir/o 1.csv").unwrap(),
            )
            .with_header("range", "bytes=-100"),
        )
        .unwrap();
    assert_eq!(resp.status, 206);
    let tail = resp.read_body().unwrap();
    assert_eq!(&tail[..], &body[body.len() - 100..]);

    // Listings (names with spaces percent-encode through the listing body).
    let records = client.list("data", None).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].name, "big dir/o 1.csv");
    assert_eq!(records[0].size, body.len() as u64);

    // /info serves over the same plane.
    let info = client.info();
    assert_eq!(info.status, 200);

    // Error taxonomy survives the wire: a missing object is `not_found`,
    // non-retryable, with the kind rebuilt from the x-scoop-error header.
    let err = client.get_object("data", "nope").unwrap_err();
    assert_eq!(err.kind(), "not_found");
    assert!(!err.is_retryable());

    // An unsatisfiable range is a 416 response, not an error.
    let resp = client
        .request(
            scoop_objectstore::Request::get(
                scoop_objectstore::ObjectPath::new("AUTH_net", "data", "big dir/o 1.csv").unwrap(),
            )
            .with_header("range", format!("bytes={}-", body.len() + 10)),
        )
        .unwrap();
    assert_eq!(resp.status, 416);

    // DELETE then GET: gone.
    client.delete_object("data", "big dir/o 1.csv").unwrap();
    assert_eq!(client.get_object("data", "big dir/o 1.csv").unwrap_err().kind(), "not_found");
}

#[test]
fn pool_reuses_keepalive_connections_and_reaps_idle_ones() {
    let cluster = SwiftCluster::new(SwiftConfig::default()).unwrap();
    let client = cluster
        .anonymous_client("AUTH_net")
        .over_tcp_with(
            NetOptions::default(),
            PoolConfig { idle_timeout: Duration::from_millis(80), ..PoolConfig::default() },
        )
        .unwrap();
    client.create_container("data").unwrap();
    client.put_object("data", "o", payload(4_000)).unwrap();

    for _ in 0..24 {
        let resp = client.get_object("data", "o").unwrap();
        resp.read_body().unwrap();
    }
    let pool = client.transport_pool().unwrap();
    let snap = pool.snapshot();
    // Sequential exchanges ride one keep-alive connection: far fewer dials
    // than requests, and the reuse counter proves it.
    assert!(snap.reuses >= 20, "keep-alive not reused: {snap:?}");
    assert!(snap.dials <= 4, "sequential GETs dialed per-request: {snap:?}");
    assert!(snap.open >= 1 && snap.open <= 4, "socket count ran away: {snap:?}");

    // Idle reaper: past the idle window every pooled socket is closed —
    // N queries must not leak N sockets.
    std::thread::sleep(Duration::from_millis(120));
    pool.reap_idle();
    let snap = pool.snapshot();
    assert_eq!(snap.idle, 0, "idle reaper left sockets pooled: {snap:?}");
    assert_eq!(snap.open, 0, "sockets leaked past the idle reaper: {snap:?}");

    // The pool recovers transparently: next request dials fresh.
    client.get_object("data", "o").unwrap().read_body().unwrap();
    assert!(pool.snapshot().dials > snap.dials);
}

#[test]
fn mid_stream_reset_poisons_the_connection_instead_of_pooling_it() {
    // Every exchange RSTs mid-response (capped by max_consecutive, so
    // retries eventually land). The poisoned connections must be evicted,
    // never returned to the idle list.
    let plan = FaultPlan::quiet(seed(0x4E7)).with_wire_rst(1.0);
    let (cluster, client) = tcp_rig(Some(plan));
    let body = payload(50_000);
    client.put_object("data", "o", body.clone()).unwrap();

    let mut verified = 0;
    for _ in 0..12 {
        if let Ok(resp) = client.get_object("data", "o") {
            if let Ok(got) = resp.read_body() {
                assert_eq!(got, body, "reset mid-body produced wrong bytes");
                verified += 1;
            }
        }
    }
    assert!(verified > 0, "no GET ever survived the RST storm");

    let stats = cluster.fault_stats();
    assert!(stats.wire_rsts > 0, "no RST fired: {stats:?}");
    let snap = client.transport_pool().unwrap().snapshot();
    assert!(snap.evictions > 0, "poisoned connections were not evicted: {snap:?}");
    // Every socket a fault killed is gone; only clean keep-alives pool.
    assert!(
        snap.idle as i64 <= snap.open,
        "idle list holds closed sockets: {snap:?}"
    );
}

#[test]
fn every_wire_fault_class_fires_and_is_absorbed() {
    let plan = FaultPlan::quiet(seed(0x717E))
        .with_wire_rst(0.12)
        .with_wire_partial(0.12, Duration::from_millis(2))
        .with_wire_slowloris(0.12, Duration::from_micros(300))
        .with_wire_garbage(0.12)
        .with_wire_half_close(0.12);
    let (cluster, client) = tcp_rig(Some(plan));
    let body = payload(9_000);
    client.put_object("data", "o", body.clone()).unwrap();

    // Soak until every class has fired at least once. Each GET is verified
    // end to end: wire faults may fail a request loudly but never corrupt.
    for round in 0..400 {
        match client.get_object("data", "o").and_then(|r| r.read_body()) {
            Ok(got) => assert_eq!(got, body, "round {round}: wire fault corrupted bytes"),
            Err(e) => assert!(
                e.is_retryable() || e.kind() == "deadline",
                "round {round}: wire fault mapped outside the taxonomy: {e}"
            ),
        }
        let s = cluster.fault_stats();
        if s.wire_rsts > 0
            && s.wire_partials > 0
            && s.wire_slowloris > 0
            && s.wire_garbage > 0
            && s.wire_half_closes > 0
        {
            break;
        }
    }
    let stats = cluster.fault_stats();
    assert!(stats.wire_rsts > 0, "RST never fired: {stats:?}");
    assert!(stats.wire_partials > 0, "partial write never fired: {stats:?}");
    assert!(stats.wire_slowloris > 0, "slowloris never fired: {stats:?}");
    assert!(stats.wire_garbage > 0, "garbage frame never fired: {stats:?}");
    assert!(stats.wire_half_closes > 0, "half-close never fired: {stats:?}");
    assert!(stats.total_wire_faults() >= 5);
}

#[test]
fn puts_replayed_after_wire_faults_never_double_store() {
    // PUT failures under wire faults surface as retryable I/O; the client's
    // re-dispatch rides the x-upload-token dedup. The object must end up
    // stored exactly once with the final bytes, and listings stay sane.
    let plan = FaultPlan::quiet(seed(0x9D7)).with_wire_rst(0.3).with_wire_half_close(0.2);
    let (_cluster, client) = tcp_rig(Some(plan));
    let body = payload(12_345);
    let mut stored = 0;
    for i in 0..20 {
        if client.put_object("data", "p", body.clone()).is_ok() {
            stored += 1;
        }
        let _ = i;
    }
    assert!(stored > 0, "no PUT ever landed under wire faults");
    let records = client.list("data", None).unwrap();
    assert_eq!(records.len(), 1, "replayed PUTs multiplied the object");
    assert_eq!(records[0].size, body.len() as u64);
    // The verification GET itself runs under the fault plan: re-issue on
    // retryable wire errors, exactly like the connector's resuming reads.
    let mut reissues = 0;
    let got = loop {
        match client.get_object("data", "p").and_then(|r| r.read_body()) {
            Ok(got) => break got,
            Err(e) if e.is_retryable() && reissues < 16 => reissues += 1,
            Err(e) => panic!("verification GET failed beyond retry budget: {e}"),
        }
    };
    assert_eq!(got, body);
}

#[test]
fn deadline_expiry_mid_body_is_the_deadline_error_not_generic_io() {
    let (_cluster, client) = tcp_rig(None);
    client.put_object("data", "o", payload(300_000)).unwrap();

    // Pull one chunk inside budget, then let the budget lapse between
    // chunks: the next read must surface the *deadline* kind (non-retryable
    // fail-fast), not a generic I/O timeout that a retry loop would chew on.
    client.set_deadline(Deadline::within(Duration::from_millis(60)));
    let resp = client.get_object("data", "o").unwrap();
    let mut body = resp.body;
    let first = body.next().expect("body has at least one chunk").unwrap();
    assert!(!first.is_empty());
    std::thread::sleep(Duration::from_millis(90));
    let err = loop {
        match body.next() {
            Some(Ok(_)) => continue, // buffered chunks may still drain
            Some(Err(e)) => break e,
            None => panic!("body completed after its budget lapsed"),
        }
    };
    assert_eq!(err.kind(), "deadline", "mid-body expiry surfaced as: {err}");
    assert!(!err.is_retryable());
    client.set_deadline(Deadline::none());

    // And the poisoned mid-frame connection was not pooled for reuse.
    let snap = client.transport_pool().unwrap().snapshot();
    assert!(snap.evictions > 0, "mid-frame connection was pooled: {snap:?}");
}

#[test]
fn pipelined_range_gets_share_one_connection() {
    let (_cluster, client) = tcp_rig(None);
    let body = payload(100_000);
    client.put_object("data", "o", body.clone()).unwrap();

    let before = client.transport_pool().unwrap().snapshot();
    let ranges: Vec<ByteRange> = (0..8)
        .map(|i| ByteRange { start: i * 10_000, end: Some(i * 10_000 + 9_999) })
        .collect();
    let responses = client.get_ranges("data", "o", &ranges).unwrap();
    assert_eq!(responses.len(), 8);
    for (i, resp) in responses.into_iter().enumerate() {
        assert_eq!(resp.status, 206);
        let got = resp.read_body().unwrap();
        assert_eq!(&got[..], &body[i * 10_000..(i + 1) * 10_000], "range {i} wrong");
    }
    let after = client.transport_pool().unwrap().snapshot();
    // Eight ranged GETs, one connection: at most one extra dial.
    assert!(
        after.dials <= before.dials + 1,
        "pipelined ranges dialed per-request: {before:?} -> {after:?}"
    );
}

/// Observability smoke over a chaos-seeded wire: traced GETs under active
/// wire faults must still merge server spans through the trailer, and the
/// live `/metrics`, `/trace/{id}` and `/events` endpoints must answer over
/// the same degraded transport — with the per-fault-class counters the
/// faults just incremented visible in the Prometheus text.
#[test]
fn observability_endpoints_serve_over_a_chaos_seeded_wire() {
    use scoop_common::telemetry;

    let plan = FaultPlan::quiet(seed(0x0B5E))
        .with_wire_rst(0.08)
        .with_wire_partial(0.08, Duration::from_millis(2))
        .with_wire_garbage(0.08);
    let (cluster, client) = tcp_rig(Some(plan));
    let body = payload(20_000);
    client.put_object("data", "obs", body.clone()).unwrap();

    let trace = telemetry::new_trace_id();
    client.set_trace(Some(trace.clone()));
    // Soak traced GETs until at least one wire fault has fired; each
    // success must still deliver exact bytes despite the chaos.
    for round in 0..200 {
        match client.get_object("data", "obs").and_then(|r| r.read_body()) {
            Ok(got) => assert_eq!(got, body, "round {round}: corrupted under chaos"),
            Err(e) => assert!(
                e.is_retryable() || e.kind() == "deadline",
                "round {round}: fault outside the taxonomy: {e}"
            ),
        }
        if round >= 20 && cluster.fault_stats().total_wire_faults() > 0 {
            break;
        }
    }
    assert!(cluster.fault_stats().total_wire_faults() > 0, "chaos never fired");

    // Server spans crossed back through the trailer and were merged into
    // the local store tagged remote — chaos must not unthread the trace.
    let spans = telemetry::trace_spans(&trace);
    assert!(
        spans.iter().any(|s| s.remote && s.layer == telemetry::layers::PROXY),
        "no remote proxy span survived the chaos soak: {spans:?}"
    );
    assert!(
        spans.iter().any(|s| s.remote && s.layer == telemetry::layers::OBJSERVER),
        "no remote objserver span survived the chaos soak: {spans:?}"
    );
    assert!(
        spans.iter().any(|s| !s.remote && s.layer == telemetry::layers::CLIENT),
        "no local client span recorded: {spans:?}"
    );

    // The endpoints ride the same faulty wire; a fetch may lose its own
    // connection to a fault, so each gets a few attempts.
    let fetch = |f: &dyn Fn() -> scoop_common::Result<String>| -> String {
        for _ in 0..20 {
            if let Ok(text) = f() {
                return text;
            }
        }
        panic!("endpoint never answered through the chaos");
    };
    let metrics = fetch(&|| client.metrics_text());
    let stats = cluster.fault_stats();
    for (count, name) in [
        (stats.wire_rsts, telemetry::names::NET_WIRE_FAULTS_RST),
        (stats.wire_partials, telemetry::names::NET_WIRE_FAULTS_PARTIAL),
        (stats.wire_garbage, telemetry::names::NET_WIRE_FAULTS_GARBAGE),
    ] {
        if count > 0 {
            assert!(
                metrics.contains(name),
                "/metrics missing fired fault-class series {name}"
            );
        }
    }
    for name in [
        telemetry::names::NET_WIRE_FAULTS,
        telemetry::names::NET_POOL_CHECKOUT_WAIT_US,
        telemetry::names::NET_POOL_IN_FLIGHT,
    ] {
        assert!(metrics.contains(name), "/metrics missing {name}");
    }

    let trace_body = fetch(&|| client.trace_json(&trace));
    assert!(
        trace_body.contains(&trace),
        "/trace/{{id}} must echo the trace ID: {trace_body}"
    );
    assert!(
        trace_body.contains(telemetry::layers::OBJSERVER),
        "/trace/{{id}} must carry the server-side spans: {trace_body}"
    );
}
