//! Property test: ranged reads are backend-agnostic.
//!
//! The memory and disk backends share one clamping contract
//! ([`scoop_objectstore::backend::clamp_range`]); this test pins it from the
//! outside by throwing arbitrary objects and arbitrary — including inverted,
//! empty, and past-EOF — ranges at both backends and requiring byte-identical
//! answers, plus agreement with the contract function itself.

use bytes::Bytes;
use proptest::prelude::*;
use scoop_objectstore::backend::{
    clamp_range, DiskBackend, MemBackend, StorageBackend, StoredObject,
};
use std::collections::BTreeMap;

/// Map a drawn `(selector, raw)` pair to an offset biased toward the
/// interesting edges of an object of length `len`: boundaries, off-by-ones,
/// u64 extremes, and uniform draws a little past EOF.
fn edge(len: u64, selector: u8, raw: u64) -> u64 {
    match selector % 6 {
        0 => 0,
        1 => len.saturating_sub(1),
        2 => len,
        3 => len.saturating_add(1),
        4 => u64::MAX,
        _ => raw % len.saturating_add(16),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_and_disk_agree_on_any_range(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        draws in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u8>(), any::<u64>()),
            1..24,
        ),
        seed in any::<u64>(),
    ) {
        let len = data.len() as u64;
        let ranges: Vec<(u64, u64)> = draws
            .into_iter()
            .map(|(s_sel, s_raw, e_sel, e_raw)| {
                (edge(len, s_sel, s_raw), edge(len, e_sel, e_raw))
            })
            .collect();
        let mem = MemBackend::new();
        let dir = std::env::temp_dir()
            .join(format!("scoop-range-prop-{}-{seed:x}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = DiskBackend::open(&dir).unwrap();
        let obj = StoredObject::new(Bytes::from(data.clone()), BTreeMap::new());
        mem.put("/a/c/o", obj.clone()).unwrap();
        disk.put("/a/c/o", obj).unwrap();

        for (start, end) in ranges {
            let from_mem = mem.get_range("/a/c/o", start, end).unwrap();
            let from_disk = disk.get_range("/a/c/o", start, end).unwrap();
            prop_assert_eq!(
                &from_mem, &from_disk,
                "memory and disk diverge on [{}, {}) over {} bytes",
                start, end, len
            );
            // Both must equal the contract: the clamped slice of the object.
            let (s, e) = clamp_range(len, start, end);
            prop_assert_eq!(&from_mem[..], &data[s as usize..e as usize]);
            // Degenerate ranges are empty, never an error or a fabricated
            // prefix of the object.
            if start >= end || start >= len {
                prop_assert!(from_mem.is_empty());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
