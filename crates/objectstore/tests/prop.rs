//! Property-based tests for the ring, byte-range handling, and the
//! per-node circuit breaker.

use proptest::prelude::*;
use scoop_objectstore::request::ByteRange;
use scoop_objectstore::ring::{Device, DeviceId, RingBuilder};
use scoop_objectstore::{BreakerConfig, NodeHealth};
use std::time::{Duration, Instant};

/// One step in a synthetic breaker history.
#[derive(Debug, Clone)]
enum BreakerEvent {
    /// A replica request on the node failed retryably.
    Fail,
    /// A replica request on the node succeeded.
    Succeed,
    /// The clock advances by this many milliseconds.
    Advance(u64),
}

fn breaker_event() -> impl Strategy<Value = BreakerEvent> {
    // Uniform union; `Fail` appears twice to bias histories toward
    // tripped breakers (the interesting regime for these properties).
    prop_oneof![
        Just(BreakerEvent::Fail),
        Just(BreakerEvent::Fail),
        Just(BreakerEvent::Succeed),
        (0u64..120).prop_map(BreakerEvent::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any cluster shape, every partition gets `replicas` distinct
    /// devices and assignments stay within a 2x balance envelope.
    #[test]
    fn ring_invariants(
        nodes in 3u32..10,
        devs_per_node in 1u32..4,
        part_power in 4u32..9,
        replicas in 1usize..4,
    ) {
        let mut b = RingBuilder::new(part_power, replicas);
        for n in 0..nodes {
            for _ in 0..devs_per_node {
                b.add_device(n, n % 3, 1.0);
            }
        }
        let ring = b.build().unwrap();
        let eff_replicas = ring.replicas();
        prop_assert!(eff_replicas <= (nodes * devs_per_node) as usize);
        for part in 0..ring.partitions() {
            let devs = ring.devices_of_partition(part);
            prop_assert_eq!(devs.len(), eff_replicas);
            let mut uniq = devs.to_vec();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), eff_replicas, "partition {} duplicates", part);
        }
        let counts = ring.assignment_counts();
        let expected =
            ring.partitions() as f64 * eff_replicas as f64 / (nodes * devs_per_node) as f64;
        for (_, c) in counts {
            prop_assert!((c as f64) < expected * 2.0 + 4.0);
        }
    }

    /// Rebalancing after adding one device keeps every partition fully
    /// replicated with distinct devices and moves < 40% of assignments.
    #[test]
    fn rebalance_keeps_invariants(
        nodes in 3u32..8,
        part_power in 4u32..8,
    ) {
        let mut b = RingBuilder::new(part_power, 3);
        for n in 0..nodes {
            b.add_device(n, n % 3, 1.0);
            b.add_device(n, n % 3, 1.0);
        }
        let mut ring = b.build().unwrap();
        let mut devices: Vec<Device> = ring.devices().to_vec();
        devices.push(Device {
            id: DeviceId(devices.len() as u32),
            node: nodes,
            zone: 1,
            weight: 1.0,
        });
        let moved = ring.rebalance(devices).unwrap();
        let total = ring.partitions() * 3;
        prop_assert!((moved as f64) < total as f64 * 0.4, "moved {}/{}", moved, total);
        for part in 0..ring.partitions() {
            let devs = ring.devices_of_partition(part);
            let mut uniq = devs.to_vec();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), 3);
        }
    }

    /// No permanent lockout: whatever failure/success history a node has,
    /// once it recovers (the open window elapses with no further failures)
    /// the breaker admits a probe again, and a successful probe closes it.
    /// Along the way, every short-circuited read must still have a
    /// *retryable* remembered error to surface — never a silent skip.
    #[test]
    fn breaker_always_readmits_a_recovered_node(
        events in proptest::collection::vec(breaker_event(), 1..40),
        threshold in 1u32..5,
        open_ms in 1u64..80,
    ) {
        let config = BreakerConfig {
            failure_threshold: threshold,
            open_for: Duration::from_millis(open_ms),
        };
        let health = NodeHealth::new(config);
        let node = 0u32;
        let err = scoop_common::ScoopError::Io(std::io::Error::other("injected"));
        let base = Instant::now();
        let mut now = base;
        for ev in &events {
            match ev {
                BreakerEvent::Fail => {
                    if health.admit_at(node, now) {
                        health.record_failure_at(node, now, &err);
                    } else {
                        // Open-state short-circuit: the proxy folds the
                        // remembered error into its failover bookkeeping,
                        // so it must exist and must stay retryable.
                        let remembered = health.last_error(node);
                        prop_assert!(remembered.is_some(), "skip lost its error");
                        prop_assert!(
                            remembered.unwrap().is_retryable(),
                            "remembered error must be retryable"
                        );
                    }
                }
                BreakerEvent::Succeed => {
                    if health.admit_at(node, now) {
                        health.record_success(node);
                    }
                }
                BreakerEvent::Advance(ms) => now += Duration::from_millis(*ms),
            }
        }
        // Recovery: after a full quiet open window the node is admitted…
        let after_window = now + config.open_for;
        prop_assert!(
            health.admit_at(node, after_window),
            "recovered node was locked out"
        );
        // …and one successful probe closes the breaker durably.
        health.record_success(node);
        prop_assert!(health.admit_at(node, after_window));
        prop_assert!(!health.is_open(node, after_window));
        prop_assert!(health.last_error(node).is_none());
    }

    /// Byte-range parse/render round-trips and resolution is always within
    /// bounds and well-ordered.
    #[test]
    fn byte_range_roundtrip_and_resolve(
        start in 0u64..10_000,
        extra in proptest::option::of(0u64..10_000),
        len in 0u64..20_000,
    ) {
        let range = ByteRange { start, end: extra.map(|e| start + e) };
        let parsed = ByteRange::parse(&range.to_header()).unwrap();
        prop_assert_eq!(parsed, range);
        let (s, e) = range.resolve(len);
        prop_assert!(s <= e);
        prop_assert!(e <= len);
    }
}
