//! Property tests for the HTTP/1.1 wire codec (`net::wire`).
//!
//! The codec owns its framing headers (`content-length` on requests,
//! `transfer-encoding` on responses, the deadline budget) and promises that
//! `encode → frame → decode → re-encode` reproduces the exact wire bytes:
//! arbitrary header sets (including every `x-scoop-*` constant), binary
//! bodies, suffix ranges and 416 responses must all survive the round trip
//! byte-identically. These properties hold the codec to that contract so a
//! pooled, pipelined connection can never desynchronize on a frame the
//! types can legally express.

use bytes::Bytes;
use proptest::prelude::*;
use scoop_common::{headers, Deadline};
use scoop_objectstore::net::wire::{
    self, BodyFraming, FrameReader, StartLine, Target,
};
use scoop_objectstore::request::{Headers, Method, Request, Response};
use scoop_objectstore::ObjectPath;
use std::io::Cursor;
use std::time::Duration;

type Frame = FrameReader<Cursor<Vec<u8>>>;

/// Uniform choice from a static slice (the vendored proptest has no
/// `sample::select`).
fn select<T: Copy + 'static>(items: &'static [T]) -> impl Strategy<Value = T> {
    (0usize..items.len()).prop_map(move |i| items[i])
}

/// Every wire-crossing header constant; arbitrary subsets ride generated
/// frames so no constant can silently stop surviving the codec.
const SCOOP_HEADERS: &[&str] = &[
    headers::AUTH_TOKEN,
    headers::UPLOAD_TOKEN,
    headers::BACKEND_STAGE,
    headers::RUN_STORLET,
    headers::STORLET_PARAMETERS,
    headers::STORLET_RUN_ON,
    headers::STORLET_RANGE,
    headers::STORLET_INVOKED,
    headers::STORLET_DEGRADED,
    headers::OBJECT_LENGTH,
    headers::TRACE,
    headers::ERROR_KIND,
    headers::LIST_PREFIX,
    headers::STREAM_ERROR,
    "x-object-meta-owner", // OBJECT_META_PREFIX + a user suffix
];

/// A header value that survives the decoder's `trim()` untouched: printable
/// ASCII with no leading/trailing whitespace (values with control bytes are
/// rejected by the encoder, values with outer whitespace are canonicalized
/// — neither can be byte-identical, so neither is generated).
fn header_value() -> impl Strategy<Value = String> {
    "[ -~]{0,26}".prop_map(|s| s.trim().to_string())
}

/// A header name the codec does not own. `transfer-encoding` is framing
/// (stripped by the decoder); everything else crosses verbatim.
fn header_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,16}".prop_filter("framing header names are codec-owned", |n| {
        n != "transfer-encoding"
    })
}

/// An arbitrary header map: generated names plus a subset of the
/// `x-scoop-*` constants, each with an arbitrary value. Also seeds *stale*
/// copies of the request framing headers (`content-length`, the deadline
/// budget) at some probability — the encoder must skip them and write
/// canonical values, so a stale map entry can never lie about the body.
fn header_map(with_stale_framing: bool) -> impl Strategy<Value = Headers> {
    let named = proptest::collection::vec((header_name(), header_value()), 0..6);
    let scoop = proptest::collection::vec((select(SCOOP_HEADERS), header_value()), 0..4);
    let stale = if with_stale_framing {
        proptest::option::of(0u64..u64::MAX).boxed()
    } else {
        Just(None).boxed()
    };
    (named, scoop, stale).prop_map(|(named, scoop, stale)| {
        let mut h = Headers::new();
        for (name, value) in named {
            h.set(&name, value);
        }
        for (name, value) in scoop {
            h.set(name, value);
        }
        if let Some(n) = stale {
            h.set("content-length", n.to_string());
            h.set(headers::DEADLINE_MS, n.to_string());
        }
        h
    })
}

/// A path segment exercising the percent-escaper: spaces, `%`, `+`/`=`/`&`,
/// non-ASCII bytes.
fn segment() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 %._+&=ïü-]{1,12}"
        .prop_filter("segments must hold a non-space byte", |s| !s.trim().is_empty())
}

/// An object path, including pseudo-directory `/` in object names.
fn object_path() -> impl Strategy<Value = ObjectPath> {
    (segment(), segment(), proptest::collection::vec(segment(), 1..3)).prop_map(
        |(account, container, object)| {
            ObjectPath::new(account, container, object.join("/")).unwrap()
        },
    )
}

const METHODS: &[Method] =
    &[Method::Get, Method::Put, Method::Delete, Method::Head, Method::Post];

/// An arbitrary request: binary body on PUT/POST, optional range header
/// (bounded or suffix form) on the rest.
fn request() -> impl Strategy<Value = Request> {
    (
        select(METHODS),
        object_path(),
        header_map(true),
        proptest::collection::vec(any::<u8>(), 1..2048),
        proptest::option::of(prop_oneof![
            (0u64..1000, 1u64..1000).prop_map(|(a, b)| format!("bytes={a}-{}", a + b)),
            (1u64..100_000).prop_map(|n| format!("bytes=-{n}")), // suffix form
        ]),
    )
        .prop_map(|(method, path, headers, body, range)| {
            let body = matches!(method, Method::Put | Method::Post)
                .then(|| Bytes::from(body));
            let mut req = Request { method, path, headers, body, deadline: Deadline::none() };
            if let Some(r) = range {
                req = req.with_header("range", r);
            }
            req
        })
}

/// Decode one request frame and reassemble the [`Request`].
fn decode_request(bytes: &[u8]) -> Request {
    let mut r = FrameReader::new(Cursor::new(bytes.to_vec()));
    let head = r.read_head().unwrap().expect("frame must hold a head");
    let framing = Frame::body_framing(&head).unwrap();
    let StartLine::Request { method, target } = head.start else {
        panic!("request frame decoded as a response")
    };
    let Target::Object(path) = wire::decode_target(&target).unwrap() else {
        panic!("object request decoded as a non-object target")
    };
    let body = match framing {
        BodyFraming::ContentLength(n) => Some(r.read_exact_body(n).unwrap()),
        BodyFraming::None => None,
        BodyFraming::Chunked => panic!("requests are content-length framed"),
    };
    assert!(r.is_drained(), "decode must consume the whole frame");
    wire::request_from_parts(method, path, head.headers, body).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any request round-trips byte-identically: the re-encoded decode of a
    /// frame *is* that frame, however adversarial the header map (stale
    /// framing entries, every `x-scoop-*` constant, suffix ranges) and
    /// however binary the body.
    #[test]
    fn request_frames_roundtrip_byte_identically(req in request()) {
        let bytes = wire::encode_request(&req).unwrap();
        let decoded = decode_request(&bytes);
        prop_assert_eq!(decoded.method, req.method);
        prop_assert_eq!(&decoded.path, &req.path);
        prop_assert_eq!(decoded.body.as_ref(), req.body.as_ref());
        // Every non-framing header crossed verbatim.
        for (name, value) in req.headers.iter() {
            if name == "content-length" || name == headers::DEADLINE_MS {
                continue;
            }
            prop_assert_eq!(decoded.headers.get(name), Some(value), "header {}", name);
        }
        // The codec owns the deadline budget: a stale map entry must not
        // resurrect as a deadline on the decoded request.
        prop_assert!(!decoded.deadline.is_set());
        prop_assert!(!decoded.headers.contains(headers::DEADLINE_MS));
        let reencoded = wire::encode_request(&decoded).unwrap();
        prop_assert_eq!(reencoded, bytes, "encode → decode → encode must be byte-identical");
    }

    /// A live deadline crosses as a shrinking budget: the decoded request
    /// carries a deadline no larger than the encoder's, and re-encoding
    /// reproduces the frame except for that one (time-dependent) header.
    #[test]
    fn deadline_budgets_only_shrink_across_hops(
        path in object_path(),
        budget_ms in 2_000u64..3_600_000,
    ) {
        let req = Request::get(path)
            .with_deadline(Deadline::within(Duration::from_millis(budget_ms)));
        let bytes = wire::encode_request(&req).unwrap();
        let decoded = decode_request(&bytes);
        prop_assert!(decoded.deadline.is_set());
        let rem = decoded.deadline.remaining().unwrap();
        prop_assert!(rem <= Duration::from_millis(budget_ms), "budgets never grow");
        prop_assert!(rem > Duration::from_millis(budget_ms / 2), "budget lost too much in codec");
        // Byte-identity modulo the budget line, which legitimately shrinks
        // with wall-clock time between the two encodes.
        let strip = |frame: &[u8]| -> Vec<u8> {
            let text = std::str::from_utf8(frame).unwrap().to_string();
            text.lines()
                .filter(|l| !l.starts_with(headers::DEADLINE_MS))
                .collect::<Vec<_>>()
                .join("\r\n")
                .into_bytes()
        };
        let reencoded = wire::encode_request(&decoded).unwrap();
        prop_assert_eq!(strip(&reencoded), strip(&bytes));
        prop_assert!(
            reencoded.windows(headers::DEADLINE_MS.len())
                .any(|w| w == headers::DEADLINE_MS.as_bytes()),
            "the budget header must survive re-encode"
        );
    }

    /// Any chunked response round-trips byte-identically, chunk boundaries
    /// included: re-framing the decoded head and chunks reproduces the wire
    /// bytes exactly, and the decoded header map mirrors the encoder's
    /// input (`transfer-encoding` owned by the codec, semantic
    /// `content-length` untouched).
    #[test]
    fn response_frames_roundtrip_byte_identically(
        status in select(&[200u16, 201, 204, 206, 404, 409, 503]),
        headers_map in header_map(false),
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..512), 0..5),
    ) {
        let mut bytes = wire::encode_response_head(status, &headers_map).unwrap();
        for chunk in &chunks {
            wire::write_chunk(&mut bytes, chunk).unwrap();
        }
        wire::finish_chunks(&mut bytes).unwrap();

        let mut r = FrameReader::new(Cursor::new(bytes.clone()));
        let head = r.read_head().unwrap().unwrap();
        prop_assert_eq!(Frame::body_framing(&head).unwrap(), BodyFraming::Chunked);
        let StartLine::Status(code) = head.start else {
            panic!("response frame decoded as a request")
        };
        prop_assert_eq!(code, status);
        prop_assert!(!head.headers.contains("transfer-encoding"));
        let mut decoded_chunks = Vec::new();
        while let Some(chunk) = r.read_chunk().unwrap() {
            decoded_chunks.push(chunk);
        }
        prop_assert!(r.is_drained());
        prop_assert_eq!(decoded_chunks.len(), chunks.len(), "chunk boundaries must survive");
        for (got, want) in decoded_chunks.iter().zip(&chunks) {
            prop_assert_eq!(&got[..], &want[..]);
        }
        for (name, value) in headers_map.iter() {
            prop_assert_eq!(head.headers.get(name), Some(value), "header {}", name);
        }

        let mut reencoded = wire::encode_response_head(status, &head.headers).unwrap();
        for chunk in &decoded_chunks {
            wire::write_chunk(&mut reencoded, chunk).unwrap();
        }
        wire::finish_chunks(&mut reencoded).unwrap();
        prop_assert_eq!(reencoded, bytes, "encode → decode → encode must be byte-identical");
    }

    /// 416 responses survive the wire: the RFC 7233 `bytes */total` form is
    /// preserved for any object size and the empty body still frames as a
    /// clean chunked terminator.
    #[test]
    fn range_not_satisfiable_roundtrips(total in 0u64..u64::MAX) {
        let resp = Response::range_not_satisfiable(total);
        let mut bytes = wire::encode_response_head(resp.status, &resp.headers).unwrap();
        wire::finish_chunks(&mut bytes).unwrap();

        let mut r = FrameReader::new(Cursor::new(bytes.clone()));
        let head = r.read_head().unwrap().unwrap();
        let StartLine::Status(code) = head.start else { panic!("not a response") };
        prop_assert_eq!(code, 416);
        let want = format!("bytes */{total}");
        prop_assert_eq!(head.headers.get("content-range"), Some(want.as_str()));
        prop_assert!(r.read_chunk().unwrap().is_none(), "416 bodies are empty");
        prop_assert!(r.is_drained());
        let mut reencoded = wire::encode_response_head(code, &head.headers).unwrap();
        wire::finish_chunks(&mut reencoded).unwrap();
        prop_assert_eq!(reencoded, bytes);
    }

    /// A mid-stream failure after any prefix of data chunks crosses as a
    /// trailer that rebuilds the exact error kind and message, for every
    /// kind in the taxonomy — retryability survives the wire even when the
    /// status line is long gone.
    #[test]
    fn stream_error_trailers_preserve_the_taxonomy(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..256), 0..4),
        kind in select(&["io", "not_found", "csv", "storlet", "compute", "deadline", "internal"]),
        msg in "[!-~][ -~]{0,20}".prop_map(|s| s.trim_end().to_string()),
    ) {
        let failure = wire::error_from_kind(kind, msg.clone());
        let mut bytes = Vec::new();
        for chunk in &chunks {
            wire::write_chunk(&mut bytes, chunk).unwrap();
        }
        wire::finish_chunks_with_error(&mut bytes, &failure).unwrap();

        let mut r = FrameReader::new(Cursor::new(bytes));
        for chunk in &chunks {
            prop_assert_eq!(&r.read_chunk().unwrap().unwrap()[..], &chunk[..]);
        }
        let err = r.read_chunk().unwrap_err();
        prop_assert_eq!(err.kind(), kind, "trailer must preserve the error kind");
        prop_assert_eq!(err.is_retryable(), failure.is_retryable());
        prop_assert!(err.to_string().contains(&msg), "trailer must preserve the message");
        prop_assert!(r.is_drained(), "an error trailer still completes the frame");
    }
}
