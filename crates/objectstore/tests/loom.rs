//! Model-checked concurrency suite: run with
//! `RUSTFLAGS="--cfg loom" cargo test -p scoop-objectstore --test loom`.
//!
//! Each test wraps a scenario in `loom::model`, which executes it under
//! *every* interleaving of the participating threads' synchronization
//! operations (sequentially-consistent memory model — see the vendored
//! `loom` crate docs for the model's limits). Two subsystems are covered:
//!
//! * the circuit breaker (`health::NodeHealth`) — concurrent failure
//!   recording, probe admission across the open→half-open boundary, and
//!   the probe-success/probe-failure race;
//! * the hedged-GET race (`hedge::race`) — both replicas finishing in
//!   either order, interleaved with the hedge timer firing or not.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc as LoomArc;
use loom::thread;
use scoop_common::{Deadline, ScoopError};
use scoop_objectstore::health::{BreakerConfig, NodeHealth};
use scoop_objectstore::hedge::{self, Attempt};
use std::time::{Duration, Instant};

fn io_err(msg: &str) -> ScoopError {
    ScoopError::Io(std::io::Error::other(msg.to_string()))
}

/// Two threads record failures concurrently against a threshold of 2: no
/// interleaving may lose an update — the breaker must end up open, and a
/// read arriving afterwards must be short-circuited with the retryable
/// error preserved.
#[test]
fn breaker_concurrent_failures_trip_exactly() {
    loom::model(|| {
        let health = NodeHealth::new(BreakerConfig {
            failure_threshold: 2,
            open_for: Duration::from_secs(5),
        });
        let t0 = Instant::now();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let h = health.clone();
                thread::spawn(move || h.record_failure_at(7, t0, &io_err("replica down")))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            health.is_open(7, t0 + Duration::from_secs(1)),
            "two concurrent failures at threshold 2 must trip the breaker"
        );
        assert!(!health.admit_at(7, t0 + Duration::from_secs(1)));
        let err = health.last_error(7).expect("open breaker remembers its error");
        assert!(err.is_retryable(), "remembered error must stay retryable");
    });
}

/// Closed→open→half-open under concurrent probes: once the open window
/// elapses, two concurrent readers race to probe. Every interleaving must
/// admit both (half-open does not limit probes here, and flipping
/// open→half-open must not deadlock or lose the state), and a subsequent
/// success must close the breaker.
#[test]
fn breaker_open_to_half_open_concurrent_probes() {
    loom::model(|| {
        let health = NodeHealth::new(BreakerConfig {
            failure_threshold: 1,
            open_for: Duration::from_secs(5),
        });
        let t0 = Instant::now();
        health.record_failure_at(3, t0, &io_err("replica down"));
        assert!(!health.admit_at(3, t0 + Duration::from_secs(1)));
        let probe_time = t0 + Duration::from_secs(6);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let h = health.clone();
                thread::spawn(move || h.admit_at(3, probe_time))
            })
            .collect();
        for h in handles {
            assert!(
                h.join().unwrap(),
                "an elapsed open window must admit every probe"
            );
        }
        health.record_success(3);
        assert!(health.admit_at(3, probe_time));
        assert!(health.last_error(3).is_none());
    });
}

/// Half-open probe success races a concurrent failure: whichever order the
/// model picks, the breaker must land in a *consistent* state — closed
/// with no remembered error, or open with one — never a torn mix.
#[test]
fn breaker_probe_success_failure_race_is_consistent() {
    loom::model(|| {
        let health = NodeHealth::new(BreakerConfig {
            failure_threshold: 1,
            open_for: Duration::from_secs(5),
        });
        let t0 = Instant::now();
        health.record_failure_at(9, t0, &io_err("first failure"));
        let probe_time = t0 + Duration::from_secs(6);
        assert!(health.admit_at(9, probe_time));

        let ok = {
            let h = health.clone();
            thread::spawn(move || h.record_success(9))
        };
        let bad = {
            let h = health.clone();
            thread::spawn(move || h.record_failure_at(9, probe_time, &io_err("probe failed")))
        };
        ok.join().unwrap();
        bad.join().unwrap();

        let open = health.is_open(9, probe_time + Duration::from_secs(1));
        let remembered = health.last_error(9);
        if open {
            assert!(
                remembered.is_some(),
                "an open breaker must remember the error that tripped it"
            );
        } else {
            assert!(
                remembered.is_none(),
                "a closed breaker must not carry a stale error"
            );
            assert!(health.admit_at(9, probe_time + Duration::from_secs(1)));
        }
    });
}

/// Hedged GET with two successful replicas finishing in either order:
/// every interleaving (including the hedge timer firing before or after
/// the first result) must yield exactly one winner whose payload matches
/// its index, and both attempts must still run to completion (the loser
/// trains the breaker in the background).
#[test]
fn hedged_get_single_winner_either_order() {
    loom::model(|| {
        let completions = LoomArc::new(AtomicUsize::new(0));
        let attempts: Vec<Attempt<usize>> = (0..2usize)
            .map(|idx| {
                let completions = completions.clone();
                Box::new(move || {
                    completions.fetch_add(1, Ordering::SeqCst);
                    Ok(idx)
                }) as Attempt<usize>
            })
            .collect();
        let outcome = hedge::race(
            attempts,
            Duration::from_millis(1),
            Deadline::none(),
            "o1",
            None,
        );
        let (winner, value) = outcome.result.expect("two healthy replicas must produce a winner");
        assert_eq!(value, winner, "winner payload must come from the winning attempt");
        assert!(winner < 2);
        assert!(outcome.hedges_launched <= 1, "at most one hedge for two replicas");
        assert_eq!(outcome.failovers, 0);
        // The loser may still be running when race() returns; its
        // completion is only guaranteed once the model drains all threads,
        // which loom checks implicitly (no thread may be left blocked).
        assert!(completions.load(Ordering::SeqCst) >= 1);
    });
}

/// Hedged GET where the first replica fails retryably and the second
/// succeeds: in every interleaving the success must win (never be masked
/// by the earlier failure). Replica 1 is launched either by the hedge
/// timer or by the failover path — and if the winner returns before the
/// failure is drained, the failover is legitimately never counted.
#[test]
fn hedged_get_failure_never_masks_success() {
    loom::model(|| {
        let trained = LoomArc::new(AtomicUsize::new(0));
        let mut attempts: Vec<Attempt<usize>> = Vec::new();
        let t0 = trained.clone();
        attempts.push(Box::new(move || {
            t0.fetch_add(1, Ordering::SeqCst);
            Err(io_err("replica 0 down"))
        }));
        let t1 = trained.clone();
        attempts.push(Box::new(move || {
            t1.fetch_add(1, Ordering::SeqCst);
            Ok(41usize)
        }));
        let outcome = hedge::race(
            attempts,
            Duration::from_millis(1),
            Deadline::none(),
            "o2",
            None,
        );
        let (winner, value) = outcome.result.expect("the healthy replica must win");
        assert_eq!((winner, value), (1, 41));
        assert!(outcome.failovers <= 1, "one failed replica is at most one failover");
        assert!(outcome.hedges_launched <= 1);
        assert!(
            outcome.failovers + outcome.hedges_launched >= 1,
            "replica 1 must have been launched by the hedge timer or the failover path"
        );
    });
}

/// Both replicas fail retryably: the race must terminate in every
/// interleaving (no lost wake-up between the last failure and the
/// receiver) and surface a retryable error — never a fabricated 404 and
/// never a hang.
#[test]
fn hedged_get_all_failures_surface_retryable_error() {
    loom::model(|| {
        let attempts: Vec<Attempt<usize>> = (0..2)
            .map(|idx| {
                Box::new(move || Err(io_err(&format!("replica {idx} down")))) as Attempt<usize>
            })
            .collect();
        let outcome = hedge::race(
            attempts,
            Duration::from_millis(1),
            Deadline::none(),
            "o3",
            None,
        );
        let err = outcome.result.expect_err("all replicas failed");
        assert!(err.is_retryable(), "surviving error must stay retryable: {err}");
        assert_eq!(outcome.failovers, 2);
    });
}
