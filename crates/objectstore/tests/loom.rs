//! Model-checked concurrency suite: run with
//! `RUSTFLAGS="--cfg loom" cargo test -p scoop-objectstore --test loom`.
//!
//! Each test wraps a scenario in `loom::model`, which executes it under
//! *every* interleaving of the participating threads' synchronization
//! operations (sequentially-consistent memory model — see the vendored
//! `loom` crate docs for the model's limits). Two subsystems are covered:
//!
//! * the circuit breaker (`health::NodeHealth`) — concurrent failure
//!   recording, probe admission across the open→half-open boundary, and
//!   the probe-success/probe-failure race;
//! * the hedged-GET race (`hedge::race`) — both replicas finishing in
//!   either order, interleaved with the hedge timer firing or not;
//! * the connection pool's idle-list protocol (`net::pool::HttpPool`) —
//!   checkout and checkin racing the idle reaper. The real `Conn` owns a
//!   `TcpStream`, which cannot exist inside the model, so [`PoolModel`]
//!   mirrors `pool.rs`'s exact lock/gauge discipline (reap-then-pop under
//!   the idle mutex, `Drop`-settled `open`/`in_flight` counters) over
//!   plain ids; the invariants checked are the pool's: a connection is
//!   never both handed out and reaped, every eviction is counted exactly
//!   once, and `open == in_flight + idle` at quiescence.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc as LoomArc;
use loom::thread;
use scoop_common::{Deadline, ScoopError};
use scoop_objectstore::health::{BreakerConfig, NodeHealth};
use scoop_objectstore::hedge::{self, Attempt};
use std::time::{Duration, Instant};

fn io_err(msg: &str) -> ScoopError {
    ScoopError::Io(std::io::Error::other(msg.to_string()))
}

/// Two threads record failures concurrently against a threshold of 2: no
/// interleaving may lose an update — the breaker must end up open, and a
/// read arriving afterwards must be short-circuited with the retryable
/// error preserved.
#[test]
fn breaker_concurrent_failures_trip_exactly() {
    loom::model(|| {
        let health = NodeHealth::new(BreakerConfig {
            failure_threshold: 2,
            open_for: Duration::from_secs(5),
        });
        let t0 = Instant::now();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let h = health.clone();
                thread::spawn(move || h.record_failure_at(7, t0, &io_err("replica down")))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            health.is_open(7, t0 + Duration::from_secs(1)),
            "two concurrent failures at threshold 2 must trip the breaker"
        );
        assert!(!health.admit_at(7, t0 + Duration::from_secs(1)));
        let err = health.last_error(7).expect("open breaker remembers its error");
        assert!(err.is_retryable(), "remembered error must stay retryable");
    });
}

/// Closed→open→half-open under concurrent probes: once the open window
/// elapses, two concurrent readers race to probe. Every interleaving must
/// admit both (half-open does not limit probes here, and flipping
/// open→half-open must not deadlock or lose the state), and a subsequent
/// success must close the breaker.
#[test]
fn breaker_open_to_half_open_concurrent_probes() {
    loom::model(|| {
        let health = NodeHealth::new(BreakerConfig {
            failure_threshold: 1,
            open_for: Duration::from_secs(5),
        });
        let t0 = Instant::now();
        health.record_failure_at(3, t0, &io_err("replica down"));
        assert!(!health.admit_at(3, t0 + Duration::from_secs(1)));
        let probe_time = t0 + Duration::from_secs(6);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let h = health.clone();
                thread::spawn(move || h.admit_at(3, probe_time))
            })
            .collect();
        for h in handles {
            assert!(
                h.join().unwrap(),
                "an elapsed open window must admit every probe"
            );
        }
        health.record_success(3);
        assert!(health.admit_at(3, probe_time));
        assert!(health.last_error(3).is_none());
    });
}

/// Half-open probe success races a concurrent failure: whichever order the
/// model picks, the breaker must land in a *consistent* state — closed
/// with no remembered error, or open with one — never a torn mix.
#[test]
fn breaker_probe_success_failure_race_is_consistent() {
    loom::model(|| {
        let health = NodeHealth::new(BreakerConfig {
            failure_threshold: 1,
            open_for: Duration::from_secs(5),
        });
        let t0 = Instant::now();
        health.record_failure_at(9, t0, &io_err("first failure"));
        let probe_time = t0 + Duration::from_secs(6);
        assert!(health.admit_at(9, probe_time));

        let ok = {
            let h = health.clone();
            thread::spawn(move || h.record_success(9))
        };
        let bad = {
            let h = health.clone();
            thread::spawn(move || h.record_failure_at(9, probe_time, &io_err("probe failed")))
        };
        ok.join().unwrap();
        bad.join().unwrap();

        let open = health.is_open(9, probe_time + Duration::from_secs(1));
        let remembered = health.last_error(9);
        if open {
            assert!(
                remembered.is_some(),
                "an open breaker must remember the error that tripped it"
            );
        } else {
            assert!(
                remembered.is_none(),
                "a closed breaker must not carry a stale error"
            );
            assert!(health.admit_at(9, probe_time + Duration::from_secs(1)));
        }
    });
}

/// Hedged GET with two successful replicas finishing in either order:
/// every interleaving (including the hedge timer firing before or after
/// the first result) must yield exactly one winner whose payload matches
/// its index, and both attempts must still run to completion (the loser
/// trains the breaker in the background).
#[test]
fn hedged_get_single_winner_either_order() {
    loom::model(|| {
        let completions = LoomArc::new(AtomicUsize::new(0));
        let attempts: Vec<Attempt<usize>> = (0..2usize)
            .map(|idx| {
                let completions = completions.clone();
                Box::new(move || {
                    completions.fetch_add(1, Ordering::SeqCst);
                    Ok(idx)
                }) as Attempt<usize>
            })
            .collect();
        let outcome = hedge::race(
            attempts,
            Duration::from_millis(1),
            Deadline::none(),
            "o1",
            None,
        );
        let (winner, value) = outcome.result.expect("two healthy replicas must produce a winner");
        assert_eq!(value, winner, "winner payload must come from the winning attempt");
        assert!(winner < 2);
        assert!(outcome.hedges_launched <= 1, "at most one hedge for two replicas");
        assert_eq!(outcome.failovers, 0);
        // The loser may still be running when race() returns; its
        // completion is only guaranteed once the model drains all threads,
        // which loom checks implicitly (no thread may be left blocked).
        assert!(completions.load(Ordering::SeqCst) >= 1);
    });
}

/// Hedged GET where the first replica fails retryably and the second
/// succeeds: in every interleaving the success must win (never be masked
/// by the earlier failure). Replica 1 is launched either by the hedge
/// timer or by the failover path — and if the winner returns before the
/// failure is drained, the failover is legitimately never counted.
#[test]
fn hedged_get_failure_never_masks_success() {
    loom::model(|| {
        let trained = LoomArc::new(AtomicUsize::new(0));
        let mut attempts: Vec<Attempt<usize>> = Vec::new();
        let t0 = trained.clone();
        attempts.push(Box::new(move || {
            t0.fetch_add(1, Ordering::SeqCst);
            Err(io_err("replica 0 down"))
        }));
        let t1 = trained.clone();
        attempts.push(Box::new(move || {
            t1.fetch_add(1, Ordering::SeqCst);
            Ok(41usize)
        }));
        let outcome = hedge::race(
            attempts,
            Duration::from_millis(1),
            Deadline::none(),
            "o2",
            None,
        );
        let (winner, value) = outcome.result.expect("the healthy replica must win");
        assert_eq!((winner, value), (1, 41));
        assert!(outcome.failovers <= 1, "one failed replica is at most one failover");
        assert!(outcome.hedges_launched <= 1);
        assert!(
            outcome.failovers + outcome.hedges_launched >= 1,
            "replica 1 must have been launched by the hedge timer or the failover path"
        );
    });
}

/// Both replicas fail retryably: the race must terminate in every
/// interleaving (no lost wake-up between the last failure and the
/// receiver) and surface a retryable error — never a fabricated 404 and
/// never a hang.
#[test]
fn hedged_get_all_failures_surface_retryable_error() {
    loom::model(|| {
        let attempts: Vec<Attempt<usize>> = (0..2)
            .map(|idx| {
                Box::new(move || Err(io_err(&format!("replica {idx} down")))) as Attempt<usize>
            })
            .collect();
        let outcome = hedge::race(
            attempts,
            Duration::from_millis(1),
            Deadline::none(),
            "o3",
            None,
        );
        let err = outcome.result.expect_err("all replicas failed");
        assert!(err.is_retryable(), "surviving error must stay retryable: {err}");
        assert_eq!(outcome.failovers, 2);
    });
}

// ---- connection-pool idle-list protocol ---------------------------------

use loom::sync::Mutex as LoomMutex;

/// Faithful model of `HttpPool`'s idle-list protocol: `(id, stale)` pairs
/// stand in for pooled `Conn`s, and the counters follow the same settle
/// points as the real pool (`dial` increments `open`, dropping a reaped or
/// evicted connection decrements it, `checkout`/`checkin` flip
/// `in_flight`).
struct PoolModel {
    idle: LoomMutex<Vec<(u64, bool)>>,
    open: AtomicUsize,
    in_flight: AtomicUsize,
    evictions: AtomicUsize,
    dials: AtomicUsize,
}

impl PoolModel {
    fn new(idle: Vec<(u64, bool)>) -> PoolModel {
        let open = idle.len();
        PoolModel {
            idle: LoomMutex::new(idle),
            open: AtomicUsize::new(open),
            in_flight: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            dials: AtomicUsize::new(0),
        }
    }

    /// `HttpPool::reap_idle`: drop stale idle connections under the lock.
    fn reap_idle(&self) {
        let mut idle = self.idle.lock();
        let before = idle.len();
        idle.retain(|(_, stale)| !*stale);
        let reaped = before - idle.len();
        if reaped > 0 {
            self.evictions.fetch_add(reaped, Ordering::SeqCst);
            // Conn::drop settles the open gauge for each reaped conn.
            self.open.fetch_sub(reaped, Ordering::SeqCst);
        }
    }

    /// `HttpPool::checkout`: reap, pop the freshest idle conn, else dial.
    fn checkout(&self) -> u64 {
        self.reap_idle();
        let popped = self.idle.lock().pop();
        let id = match popped {
            Some((id, _)) => id,
            None => {
                let n = self.dials.fetch_add(1, Ordering::SeqCst);
                self.open.fetch_add(1, Ordering::SeqCst);
                100 + n as u64
            }
        };
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        id
    }

    /// `HttpPool::checkin`: pool at a clean boundary, evict on overflow.
    fn checkin(&self, id: u64, max_idle: usize) {
        {
            let mut idle = self.idle.lock();
            if idle.len() < max_idle {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                idle.push((id, false));
                return;
            }
        }
        // Overflow: evicted; Conn::drop settles both gauges.
        self.evictions.fetch_add(1, Ordering::SeqCst);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.open.fetch_sub(1, Ordering::SeqCst);
    }

    fn idle_len(&self) -> usize {
        self.idle.lock().len()
    }
}

/// Checkout races the idle reaper over one stale and one fresh idle conn:
/// in every interleaving the stale conn is reaped exactly once and never
/// handed out, the fresh conn is reused (no dial), and the gauges agree
/// (`open == in_flight + idle`).
#[test]
fn pool_checkout_races_idle_reaper() {
    loom::model(|| {
        let pool = LoomArc::new(PoolModel::new(vec![(1, true), (2, false)]));
        let a = {
            let p = pool.clone();
            thread::spawn(move || p.checkout())
        };
        let b = {
            let p = pool.clone();
            thread::spawn(move || p.reap_idle())
        };
        let got = a.join().unwrap();
        b.join().unwrap();

        assert_eq!(got, 2, "the stale conn must never be handed out");
        assert_eq!(pool.dials.load(Ordering::SeqCst), 0, "fresh idle conn must be reused");
        assert_eq!(pool.evictions.load(Ordering::SeqCst), 1, "stale conn reaped exactly once");
        assert_eq!(pool.in_flight.load(Ordering::SeqCst), 1);
        assert_eq!(pool.idle_len(), 0);
        assert_eq!(
            pool.open.load(Ordering::SeqCst),
            pool.in_flight.load(Ordering::SeqCst) + pool.idle_len(),
            "open gauge must equal in_flight + idle at quiescence"
        );
    });
}

/// Checkin races the idle reaper: the conn being returned is fresh and
/// must never be reaped, while the stale idle conn is reaped exactly once
/// — whichever side of the checkin the reap lands on.
#[test]
fn pool_checkin_races_idle_reaper() {
    loom::model(|| {
        let pool = LoomArc::new(PoolModel::new(vec![(8, true)]));
        // Conn 7 is in flight (dialed earlier).
        pool.open.fetch_add(1, Ordering::SeqCst);
        pool.in_flight.fetch_add(1, Ordering::SeqCst);

        let a = {
            let p = pool.clone();
            thread::spawn(move || p.checkin(7, 4))
        };
        let b = {
            let p = pool.clone();
            thread::spawn(move || p.reap_idle())
        };
        a.join().unwrap();
        b.join().unwrap();

        assert_eq!(pool.evictions.load(Ordering::SeqCst), 1, "only the stale conn is evicted");
        assert_eq!(pool.in_flight.load(Ordering::SeqCst), 0, "checkin must settle in_flight");
        let idle = pool.idle.lock();
        assert_eq!(&*idle, &[(7, false)], "the returned conn must survive the reaper");
        drop(idle);
        assert_eq!(pool.open.load(Ordering::SeqCst), 1);
    });
}

/// Two concurrent checkouts against a single idle conn: exactly one
/// reuses it and the other dials — no interleaving may hand the same conn
/// to both threads or lose a dial.
#[test]
fn pool_concurrent_checkouts_never_share_a_conn() {
    loom::model(|| {
        let pool = LoomArc::new(PoolModel::new(vec![(3, false)]));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let p = pool.clone();
                thread::spawn(move || p.checkout())
            })
            .collect();
        let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        assert_ne!(ids[0], ids[1], "one conn handed to two checkouts");
        assert!(ids.contains(&3), "the idle conn must be reused by someone");
        assert_eq!(pool.dials.load(Ordering::SeqCst), 1, "the other checkout dials");
        assert_eq!(pool.in_flight.load(Ordering::SeqCst), 2);
        assert_eq!(pool.open.load(Ordering::SeqCst), 2);
        assert_eq!(pool.idle_len(), 0);
    });
}
