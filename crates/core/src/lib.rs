//! Scoop — pushdown of SQL projections and selections into an object store.
//!
//! This is the top-level crate of the reproduction of *"Too Big to Eat:
//! Boosting Analytics Data Ingestion from Object Stores with Scoop"* (ICDE
//! 2017). It assembles every substrate built in this workspace into the
//! system the paper describes:
//!
//! ```text
//!  Spark-like session ──sql()──▶ Catalyst extraction ──▶ tasks
//!        │                                            (worker pool)
//!        ▼ per task                                        │
//!  Stocator-like connector ── GET + X-Run-Storlet ────────▶│
//!        │                                                 ▼
//!  Swift-like cluster: proxies ─▶ object servers ─▶ storlet engine
//!                                   └─ CSVStorlet filters the byte range
//! ```
//!
//! Quick start:
//!
//! ```
//! use scoop_core::{ScoopContext, ScoopConfig, ExecutionMode};
//! use scoop_workload::{GeneratorConfig, MeterDataset};
//!
//! let ctx = ScoopContext::new(ScoopConfig::default()).unwrap();
//! // Generate & upload a small meter dataset.
//! let mut gen = MeterDataset::new(&GeneratorConfig {
//!     meters: 20, ..Default::default()
//! });
//! ctx.upload_csv("meters", vec![("jan.csv".into(), gen.csv_object(500))], None)
//!     .unwrap();
//! // Run the same query with and without pushdown.
//! let sql = "SELECT vid, sum(index) as total FROM meters \
//!            WHERE city LIKE 'Rotterdam' GROUP BY vid ORDER BY vid";
//! let vanilla = ctx.query("meters", sql, ExecutionMode::Vanilla).unwrap();
//! let scoop = ctx.query("meters", sql, ExecutionMode::Pushdown).unwrap();
//! assert_eq!(vanilla.result, scoop.result);
//! assert!(scoop.metrics.bytes_transferred < vanilla.metrics.bytes_transferred);
//! ```
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md for the index, EXPERIMENTS.md for the
//! paper-vs-measured record).

pub mod context;
pub mod experiments;

pub use context::{EtlSpec, ScoopConfig, ScoopContext, UploadReport};
pub use scoop_compute::{ExecutionMode, JobMetrics, QueryOutcome};
