//! The assembled Scoop deployment: object store + storlet engine + analytics.

use bytes::Bytes;
use scoop_common::{Result, ScoopError};
use scoop_compute::{ExecutionMode, QueryOutcome, Session, TableFormat};
use scoop_connector::{RunOn, SwiftConnector};
use scoop_csv::Schema;
use scoop_objectstore::middleware::Pipeline;
use scoop_objectstore::request::Request;
use scoop_objectstore::{ObjectPath, SwiftClient, SwiftCluster, SwiftConfig};
use scoop_storlets::middleware::{encode_params, headers};
use scoop_storlets::{PolicyStore, StorletEngine, StorletMiddleware};
use std::collections::HashMap;
use std::sync::Arc;

/// Deployment configuration.
#[derive(Debug, Clone)]
pub struct ScoopConfig {
    /// Object-store shape.
    pub swift: SwiftConfig,
    /// Compute-side worker threads.
    pub workers: usize,
    /// Partition-discovery chunk size in bytes.
    pub chunk_size: u64,
    /// Tenant account.
    pub account: String,
    /// Storlet execution stage for pushdown GETs.
    pub run_on: RunOn,
    /// Route the assembled client over the TCP data plane (real HTTP/1.1
    /// frames on pooled loopback sockets) instead of in-process calls.
    /// Equivalent to `SCOOP_TRANSPORT=tcp`, but per-deployment rather than
    /// process-global, so parallel tests can mix transports.
    pub transport_tcp: bool,
}

impl Default for ScoopConfig {
    fn default() -> Self {
        ScoopConfig {
            swift: SwiftConfig::default(),
            workers: 4,
            chunk_size: 512 * 1024,
            account: "AUTH_gridpocket".to_string(),
            run_on: RunOn::ObjectNode,
            transport_tcp: false,
        }
    }
}

/// What a dataset upload did.
#[derive(Debug, Clone, Default)]
pub struct UploadReport {
    /// Objects stored.
    pub objects: usize,
    /// Raw bytes offered by the client.
    pub bytes_in: u64,
    /// Bytes actually stored (differs when a PUT-path ETL ran).
    pub bytes_stored: u64,
}

/// PUT-path ETL request (the paper's upload-time cleansing).
#[derive(Debug, Clone)]
pub struct EtlSpec {
    /// Storlet pipeline (e.g. `"etlcleanse"`).
    pub storlets: String,
    /// Invocation parameters.
    pub params: HashMap<String, String>,
}

/// The deployed system.
pub struct ScoopContext {
    cluster: Arc<SwiftCluster>,
    engine: Arc<StorletEngine>,
    policy: Arc<PolicyStore>,
    client: SwiftClient,
    config: ScoopConfig,
}

impl ScoopContext {
    /// Assemble the cluster, deploy the built-in storlets, install the
    /// storlet middleware on both tiers.
    pub fn new(config: ScoopConfig) -> Result<Arc<ScoopContext>> {
        let cluster = SwiftCluster::new(config.swift.clone())?;
        let engine = Arc::new(StorletEngine::with_builtin_filters());
        let policy = Arc::new(PolicyStore::new());
        let mut object_pipeline = Pipeline::new();
        object_pipeline.push(Arc::new(StorletMiddleware::new(engine.clone())));
        cluster.set_object_pipeline(object_pipeline);
        let mut proxy_pipeline = Pipeline::new();
        proxy_pipeline.push(Arc::new(StorletMiddleware::with_policy(
            engine.clone(),
            policy.clone(),
        )));
        cluster.set_proxy_pipeline(proxy_pipeline);
        let mut client = cluster.anonymous_client(&config.account);
        if config.transport_tcp {
            client = client.over_tcp()?;
        }
        Ok(Arc::new(ScoopContext { cluster, engine, policy, client, config }))
    }

    /// The underlying object-store cluster.
    pub fn cluster(&self) -> &Arc<SwiftCluster> {
        &self.cluster
    }

    /// The storlet engine (deploy custom filters, read stats).
    pub fn engine(&self) -> &Arc<StorletEngine> {
        &self.engine
    }

    /// The policy store (tiers, auto-apply rules).
    pub fn policy(&self) -> &Arc<PolicyStore> {
        &self.policy
    }

    /// An object-store client bound to the configured account.
    pub fn client(&self) -> &SwiftClient {
        &self.client
    }

    /// The configuration.
    pub fn config(&self) -> &ScoopConfig {
        &self.config
    }

    /// Upload CSV objects into a container, optionally through a PUT-path
    /// ETL storlet pipeline.
    pub fn upload_csv(
        &self,
        container: &str,
        objects: Vec<(String, Bytes)>,
        etl: Option<&EtlSpec>,
    ) -> Result<UploadReport> {
        self.client.create_container(container)?;
        let mut report = UploadReport::default();
        for (name, data) in objects {
            report.objects += 1;
            report.bytes_in += data.len() as u64;
            let path = ObjectPath::new(self.config.account.clone(), container, name)?;
            let mut req = Request::put(path, data);
            if let Some(etl) = etl {
                req = req
                    .with_header(headers::RUN_STORLET, etl.storlets.clone())
                    .with_header(headers::PARAMETERS, encode_params(&etl.params));
            }
            let resp = self.client.request(req)?;
            if !resp.is_success() {
                return Err(ScoopError::Io(std::io::Error::other(format!(
                    "PUT failed with status {}",
                    resp.status
                ))));
            }
        }
        report.bytes_stored = self.cluster.bytes_stored() / self.config.swift.replicas as u64;
        Ok(report)
    }

    /// Build an analytics session in the given execution mode, with the
    /// table registered over `container`.
    pub fn session(&self, container: &str, mode: ExecutionMode) -> Session {
        self.session_with_schema(container, mode, None)
    }

    /// Like [`ScoopContext::session`], with an explicit table schema.
    pub fn session_with_schema(
        &self,
        container: &str,
        mode: ExecutionMode,
        schema: Option<Schema>,
    ) -> Session {
        let (connector, pushdown, format): (Arc<SwiftConnector>, bool, TableFormat) = match mode
        {
            ExecutionMode::Vanilla => (
                SwiftConnector::without_pushdown(self.client.clone()),
                false,
                TableFormat::Csv { has_header: true },
            ),
            ExecutionMode::Pushdown => (
                SwiftConnector::with_run_on(self.client.clone(), self.config.run_on),
                true,
                TableFormat::Csv { has_header: true },
            ),
            ExecutionMode::Columnar => (
                SwiftConnector::without_pushdown(self.client.clone()),
                false,
                TableFormat::Columnar,
            ),
        };
        let session = Session::new(connector, self.config.workers)
            .with_chunk_size(self.config.chunk_size)
            .with_pushdown(pushdown);
        session.register_table(container, container, None, format, schema);
        session
    }

    /// One-shot: run `sql` against the CSV (or columnar) data in `container`
    /// under the given mode. The table name in the query must match the
    /// container name.
    pub fn query(&self, container: &str, sql: &str, mode: ExecutionMode) -> Result<QueryOutcome> {
        self.session(container, mode).sql(sql)
    }

    /// Convert the CSV objects of `container` into columnar objects stored
    /// in `target` (one columnar object per CSV object), returning stored
    /// byte counts `(csv, columnar)` — the offline conversion the paper's
    /// Parquet comparison presupposes.
    pub fn convert_to_columnar(
        &self,
        container: &str,
        target: &str,
        row_group_rows: usize,
    ) -> Result<(u64, u64)> {
        let schema = {
            let listing = self.client.list(container, None)?;
            let first = listing
                .first()
                .ok_or_else(|| ScoopError::NotFound(format!("container {container} empty")))?;
            let resp = self.client.get_object(container, &first.name)?;
            let head = resp.read_body()?;
            scoop_csv::reader::infer_schema(&head, 200)?
        };
        self.client.create_container(target)?;
        let mut csv_bytes = 0u64;
        let mut col_bytes = 0u64;
        for obj in self.client.list(container, None)? {
            let data = self.client.get_object(container, &obj.name)?.read_body()?;
            csv_bytes += data.len() as u64;
            let mut writer =
                scoop_columnar::ColumnarWriter::with_row_group_rows(schema.clone(), row_group_rows);
            let reader = scoop_csv::CsvReader::new(
                scoop_common::stream::once(data),
                schema.clone(),
                true,
            );
            for row in reader {
                writer.write_row(&row?);
            }
            let encoded = writer.finish();
            col_bytes += encoded.len() as u64;
            let name = format!("{}.scol", obj.name.trim_end_matches(".csv"));
            self.client.put_object(target, &name, encoded)?;
        }
        Ok((csv_bytes, col_bytes))
    }
}

impl std::fmt::Debug for ScoopContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoopContext")
            .field("cluster", &self.cluster)
            .field("account", &self.config.account)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_workload::{GeneratorConfig, MeterDataset};

    fn lab() -> (Arc<ScoopContext>, u64) {
        let ctx = ScoopContext::new(ScoopConfig {
            chunk_size: 16 * 1024,
            ..Default::default()
        })
        .unwrap();
        let mut gen = MeterDataset::new(&GeneratorConfig {
            meters: 40,
            interval_minutes: 24 * 60,
            ..Default::default()
        });
        let objects: Vec<(String, Bytes)> = (0..3)
            .map(|i| (format!("part-{i}.csv"), gen.csv_object(1500)))
            .collect();
        let report = ctx.upload_csv("meters", objects, None).unwrap();
        assert_eq!(report.objects, 3);
        (ctx, report.bytes_in)
    }

    const SQL: &str = "SELECT vid, sum(index) as total, count(*) as n FROM meters \
        WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01%' GROUP BY vid ORDER BY vid";

    #[test]
    fn end_to_end_pushdown_equals_vanilla() {
        let (ctx, bytes) = lab();
        let vanilla = ctx.query("meters", SQL, ExecutionMode::Vanilla).unwrap();
        let pushed = ctx.query("meters", SQL, ExecutionMode::Pushdown).unwrap();
        assert_eq!(vanilla.result, pushed.result);
        assert!(!vanilla.result.is_empty());
        // Vanilla moved (roughly) the whole dataset; pushdown a sliver.
        assert!(vanilla.metrics.bytes_transferred >= bytes * 9 / 10);
        assert!(pushed.metrics.bytes_transferred < bytes / 5);
        // Storlet engine really ran, once per task.
        assert_eq!(
            ctx.engine().stats("csvfilter").invocations as usize,
            pushed.metrics.tasks
        );
    }

    #[test]
    fn columnar_mode_matches_too() {
        let (ctx, _) = lab();
        let (csv_bytes, col_bytes) = ctx.convert_to_columnar("meters", "meters-col", 500).unwrap();
        assert!(col_bytes < csv_bytes, "columnar {col_bytes} vs csv {csv_bytes}");
        let vanilla = ctx.query("meters", SQL, ExecutionMode::Vanilla).unwrap();
        let columnar = ctx
            .query("meters-col", &SQL.replace("FROM meters", "FROM meters-col"), ExecutionMode::Columnar);
        // Table names with '-' don't parse; use a session-registered alias.
        assert!(columnar.is_err());
        let session = ctx.session_with_schema("meters-col", ExecutionMode::Columnar, None);
        session.register_table("colmeters", "meters-col", None, TableFormat::Columnar, None);
        let columnar = session.sql(&SQL.replace("FROM meters", "FROM colmeters")).unwrap();
        // Different partitionings sum floats in different orders.
        assert!(vanilla.result.approx_eq(&columnar.result, 1e-9));
        assert!(columnar.metrics.bytes_transferred < vanilla.metrics.bytes_transferred);
    }

    #[test]
    fn etl_upload_cleanses() {
        let ctx = ScoopContext::new(ScoopConfig::default()).unwrap();
        let raw = Bytes::from_static(b"vid,index\n m1 , 5 \nbad,row,extra\nm2,6\n");
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,index".to_string());
        params.insert("header".to_string(), "1".to_string());
        let report = ctx
            .upload_csv(
                "raw",
                vec![("a.csv".to_string(), raw)],
                Some(&EtlSpec { storlets: "etlcleanse".into(), params }),
            )
            .unwrap();
        assert!(report.bytes_stored < report.bytes_in);
        let body = ctx
            .client()
            .get_object("raw", "a.csv")
            .unwrap()
            .read_body()
            .unwrap();
        assert_eq!(body, "vid,index\nm1,5\nm2,6\n");
    }

    #[test]
    fn doc_example_quickstart() {
        // Mirrors the lib.rs doc example.
        let ctx = ScoopContext::new(ScoopConfig::default()).unwrap();
        let mut gen = MeterDataset::new(&GeneratorConfig { meters: 20, ..Default::default() });
        ctx.upload_csv("meters", vec![("jan.csv".into(), gen.csv_object(500))], None)
            .unwrap();
        let sql = "SELECT vid, sum(index) as total FROM meters \
                   WHERE city LIKE 'Rotterdam' GROUP BY vid ORDER BY vid";
        let vanilla = ctx.query("meters", sql, ExecutionMode::Vanilla).unwrap();
        let scoop = ctx.query("meters", sql, ExecutionMode::Pushdown).unwrap();
        assert_eq!(vanilla.result, scoop.result);
        assert!(scoop.metrics.bytes_transferred < vanilla.metrics.bytes_transferred);
    }
}
