//! The shared measurement environment for all experiments.

use crate::context::{ScoopConfig, ScoopContext};
use bytes::Bytes;
use scoop_cluster::simulate::simulate;
use scoop_cluster::{CostModel, SimJob, SimMode, SimReport, Topology};
use scoop_common::{Result, ScoopError};
use scoop_compute::{ExecutionMode, QueryOutcome};
use scoop_connector::RunOn;
use scoop_workload::selectivity::{measure, SelectivityReport};
use scoop_workload::{GeneratorConfig, MeterDataset};
use std::sync::Arc;
use std::time::Duration;

/// Experiment sizing knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Master seed.
    pub seed: u64,
    /// Meters in the fleet (vid space `M00000..`).
    pub meters: usize,
    /// Minutes between readings (larger ⇒ longer time span per row count).
    pub interval_minutes: u32,
    /// Rows per uploaded object.
    pub rows_per_object: usize,
    /// Number of objects uploaded.
    pub objects: usize,
    /// Compute worker threads.
    pub workers: usize,
    /// Partition chunk size in bytes.
    pub chunk_size: u64,
}

impl Scale {
    /// Tiny: used by unit tests and Criterion benches.
    pub fn quick() -> Scale {
        Scale {
            seed: 42,
            meters: 40,
            interval_minutes: 24 * 60,
            rows_per_object: 1_200,
            objects: 2,
            workers: 4,
            chunk_size: 16 * 1024,
        }
    }

    /// Standard: a few MB of data; what the `repro` binary uses.
    pub fn standard() -> Scale {
        Scale {
            seed: 42,
            meters: 200,
            interval_minutes: 12 * 60,
            rows_per_object: 12_000,
            objects: 4,
            workers: 8,
            chunk_size: 128 * 1024,
        }
    }
}

/// One laptop-scale run of both arms over the same query.
#[derive(Debug)]
pub struct MeasuredRun {
    /// Vanilla-arm outcome.
    pub vanilla: QueryOutcome,
    /// Pushdown-arm outcome.
    pub pushdown: QueryOutcome,
    /// Measured transfer ratio (pushdown bytes / vanilla bytes).
    pub transfer_ratio: f64,
    /// Wall-clock speedup at laptop scale (noisy; directional only).
    pub wall_speedup: f64,
}

/// The measurement environment.
pub struct Lab {
    /// The deployed system.
    pub ctx: Arc<ScoopContext>,
    /// CSV container name (the SQL table name).
    pub container: String,
    /// Total CSV bytes uploaded.
    pub dataset_bytes: u64,
    /// Concatenated uploaded data (for calibration and quick checks).
    pub sample_csv: Vec<u8>,
    /// A year-spanning sample of the same fleet, used for selectivity
    /// measurement (the paper's datasets span many months, so a query's
    /// one-month window is a small fraction of the data).
    pub year_csv: Vec<u8>,
    /// Fleet size (for synthetic-query cutoffs).
    pub meters: usize,
    scale: Scale,
}

impl Lab {
    /// Build a deployment and upload a generated dataset.
    pub fn new(scale: &Scale) -> Result<Lab> {
        Self::with_run_on(scale, RunOn::ObjectNode)
    }

    /// Build with an explicit storlet execution stage.
    pub fn with_run_on(scale: &Scale, run_on: RunOn) -> Result<Lab> {
        let ctx = ScoopContext::new(ScoopConfig {
            workers: scale.workers,
            chunk_size: scale.chunk_size,
            run_on,
            ..Default::default()
        })?;
        let mut gen = MeterDataset::new(&GeneratorConfig {
            seed: scale.seed,
            meters: scale.meters,
            interval_minutes: scale.interval_minutes,
            ..Default::default()
        });
        let mut objects: Vec<(String, Bytes)> = Vec::with_capacity(scale.objects);
        let mut sample = Vec::new();
        for i in 0..scale.objects {
            let data = gen.csv_object(scale.rows_per_object);
            sample.extend_from_slice(&data);
            objects.push((format!("part-{i:03}.csv"), data));
        }
        let report = ctx.upload_csv("largemeter", objects, None)?;
        // Year-spanning selectivity sample: same fleet (same seed/meters),
        // readings spaced so ~300 waves cover ~20 months.
        let mut year_gen = MeterDataset::new(&GeneratorConfig {
            seed: scale.seed,
            meters: scale.meters,
            interval_minutes: 2 * 24 * 60,
            ..Default::default()
        });
        let year_csv = year_gen.csv_object(scale.meters * 300).to_vec();
        Ok(Lab {
            ctx,
            container: "largemeter".to_string(),
            dataset_bytes: report.bytes_in,
            sample_csv: sample,
            year_csv,
            meters: scale.meters,
            scale: scale.clone(),
        })
    }

    /// The sizing this lab was built with.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// Run a query in one mode.
    pub fn run(&self, sql: &str, mode: ExecutionMode) -> Result<QueryOutcome> {
        self.ctx.query(&self.container, sql, mode)
    }

    /// Measured Table-I-style selectivities of a query, evaluated over the
    /// year-spanning sample (matching the paper's long-horizon datasets).
    pub fn selectivity(&self, sql: &str) -> Result<SelectivityReport> {
        measure(sql, &self.year_csv)
    }

    /// Run both arms, check result equality, measure bytes and wall times.
    pub fn measure(&self, sql: &str) -> Result<MeasuredRun> {
        let vanilla = self.run(sql, ExecutionMode::Vanilla)?;
        let pushdown = self.run(sql, ExecutionMode::Pushdown)?;
        if vanilla.result != pushdown.result {
            return Err(ScoopError::Internal(format!(
                "pushdown transparency violated for query: {sql}"
            )));
        }
        let transfer_ratio = if vanilla.metrics.bytes_transferred == 0 {
            0.0
        } else {
            pushdown.metrics.bytes_transferred as f64
                / vanilla.metrics.bytes_transferred as f64
        };
        let wall_speedup = ratio(vanilla.metrics.wall, pushdown.metrics.wall);
        Ok(MeasuredRun { vanilla, pushdown, transfer_ratio, wall_speedup })
    }
}

fn ratio(a: Duration, b: Duration) -> f64 {
    let (a, b) = (a.as_secs_f64(), b.as_secs_f64().max(1e-9));
    a / b
}

// ---------------------------------------------------------------------------
// Testbed projection helpers
// ---------------------------------------------------------------------------

/// Simulate one arm on the OSIC testbed.
pub fn project(mode: SimMode, dataset_bytes: u64, data_selectivity: f64) -> SimReport {
    let tasks = (dataset_bytes / (128 * 1024 * 1024)).max(1) as usize;
    simulate(
        &SimJob { dataset_bytes, data_selectivity, mode, tasks },
        &Topology::osic(),
        &CostModel::paper_default(),
    )
}

/// Projected `S_Q` of pushdown vs vanilla for a measured selectivity.
pub fn projected_speedup(dataset_bytes: u64, data_selectivity: f64) -> f64 {
    let vanilla = project(SimMode::Vanilla, dataset_bytes, 0.0);
    let scoop = project(SimMode::Pushdown, dataset_bytes, data_selectivity);
    vanilla.duration / scoop.duration
}

/// Measure this machine's single-core throughput of the real storlet filter
/// and CSV parser, for cost-model calibration reporting.
pub fn calibrate_throughputs(sample_csv: &[u8]) -> (f64, f64) {
    use scoop_csv::filter::filter_buffer;
    use scoop_csv::PushdownSpec;
    let header: Vec<String> = scoop_workload::generator::meter_schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let spec = PushdownSpec {
        columns: Some(vec!["vid".into(), "index".into()]),
        predicate: Some(scoop_csv::Predicate::StartsWith(
            "city".into(),
            "Rot".into(),
        )),
        has_header: true,
    };
    let t0 = std::time::Instant::now();
    let _ = filter_buffer(&spec, &header, sample_csv, true);
    let filter_tp = sample_csv.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    let t0 = std::time::Instant::now();
    let reader = scoop_csv::CsvReader::new(
        scoop_common::stream::once(Bytes::from(sample_csv.to_vec())),
        scoop_workload::generator::meter_schema(),
        true,
    );
    let mut rows = 0usize;
    for r in reader {
        if r.is_ok() {
            rows += 1;
        }
    }
    let parse_tp = if rows > 0 {
        sample_csv.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    } else {
        0.0
    };
    (filter_tp, parse_tp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_and_measures() {
        let lab = Lab::new(&Scale::quick()).unwrap();
        assert!(lab.dataset_bytes > 100_000);
        let run = lab
            .measure(
                "SELECT vid, sum(index) as t FROM largeMeter \
                 WHERE city LIKE 'Rotterdam' GROUP BY vid ORDER BY vid",
            )
            .unwrap();
        assert!(run.transfer_ratio < 0.3, "transfer ratio {}", run.transfer_ratio);
        assert_eq!(run.vanilla.result, run.pushdown.result);
    }

    #[test]
    fn projection_helpers() {
        let s = projected_speedup(scoop_common::ByteSize::gb(500).as_u64(), 0.9);
        assert!(s > 5.0, "{s}");
        let (f, p) = calibrate_throughputs(&Lab::new(&Scale::quick()).unwrap().sample_csv);
        assert!(f > 1e6, "filter throughput {f}");
        assert!(p > 1e6, "parse throughput {p}");
    }
}
