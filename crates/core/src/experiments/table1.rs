//! Table I — the GridPocket query set and its selectivities.

use super::lab::Lab;
use super::{pct, FigureResult};
use scoop_common::Result;
use scoop_workload::table1_queries;

/// Regenerate Table I: per query, the measured column/row/data selectivity
/// over the generated dataset, plus a transparency check (pushdown and
/// vanilla results identical).
pub fn run(lab: &Lab) -> Result<FigureResult> {
    let mut rows = Vec::new();
    for q in table1_queries() {
        let sel = lab.selectivity(&q.sql)?;
        let measured = lab.measure(&q.sql)?;
        rows.push(vec![
            q.name.to_string(),
            pct(sel.column),
            pct(sel.row),
            pct(sel.data),
            format!("{:.3}", measured.transfer_ratio),
            "yes".to_string(), // measure() errors on mismatch
        ]);
    }
    Ok(FigureResult {
        id: "table1",
        title: "GridPocket queries: measured selectivities (paper reports 92–99.99%)"
            .to_string(),
        header: vec![
            "query".into(),
            "column selec.".into(),
            "row selec.".into(),
            "data selec.".into(),
            "transfer ratio".into(),
            "results identical".into(),
        ],
        rows,
        notes: vec![
            "paper: column 92–99.99%, row 99.54–99.99%, data 99.96–99.99% on year-spanning \
             3TB data; synthetic laptop data spans fewer months, so row selectivity is lower \
             while the projection (column) share matches the query structure"
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::lab::Scale;

    #[test]
    fn table1_reproduces() {
        let lab = Lab::new(&Scale::quick()).unwrap();
        let fig = run(&lab).unwrap();
        assert_eq!(fig.rows.len(), 7);
        // Every query's pushdown matched vanilla.
        assert!(fig.rows.iter().all(|r| r[5] == "yes"));
        // Every query discards data.
        for row in &fig.rows {
            let data: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(data > 30.0, "{row:?}");
        }
        assert!(fig.render().contains("ShowGraphHCHP"));
    }
}
