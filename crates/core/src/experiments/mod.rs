//! Reproduction of every table and figure in the paper's evaluation
//! (Section VI), per the experiment index in DESIGN.md.
//!
//! Each experiment follows the same two-layer protocol:
//!
//! 1. **Real execution (laptop scale)** — data is generated, uploaded into
//!    the Swift-like store, filtered by the real storlet engine and queried
//!    by the real compute framework in both arms. This yields *measured*
//!    selectivities, transferred bytes and result-equality checks.
//! 2. **Testbed projection** — the measured selectivities feed the fluid
//!    simulator configured as the paper's 63-machine OSIC testbed, yielding
//!    the end-to-end times, speedups and resource series the figures plot.
//!
//! Absolute numbers are not expected to match the paper (different storlet
//! implementation, synthetic data); the *shapes* — who wins, by what factor,
//! where crossovers and bottleneck shifts fall — are asserted in this
//! module's tests.

pub mod ablations;
pub mod figures;
pub mod lab;
pub mod resources;
pub mod table1;

pub use lab::{Lab, Scale};

/// A rendered experiment result: one table the `repro` binary prints and
/// EXPERIMENTS.md records.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Experiment id ("fig5", "table1", ...).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Render as an aligned text table with title and notes.
    pub fn render(&self) -> String {
        let mut table = scoop_common::table::TextTable::new(self.header.clone());
        for row in &self.rows {
            table.row(row.clone());
        }
        let mut out = format!("== {} — {} ==\n{}", self.id, self.title, table.render());
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Format a fraction as a percentage string.
pub(crate) fn pct(f: f64) -> String {
    format!("{:.2}%", f * 100.0)
}

/// Format seconds.
pub(crate) fn secs(s: f64) -> String {
    format!("{s:.1}s")
}
