//! Figures 1, 5, 6, 7 and 8 — query-time and speedup experiments.

use super::lab::{project, projected_speedup, Lab};
use super::{pct, secs, FigureResult};
use scoop_cluster::SimMode;
use scoop_common::{ByteSize, Result};
use scoop_compute::ExecutionMode;
use scoop_workload::queries::{synthetic_query, SelectivityKind};
use scoop_workload::table1_queries;

/// Fig. 1 — the ingest-then-compute problem: vanilla query completion time
/// grows linearly with dataset size.
pub fn fig1(lab: &Lab) -> Result<FigureResult> {
    let mut rows = Vec::new();
    // Projected testbed times.
    for gb in [50u64, 250, 500, 1000, 2000, 3000] {
        let report = project(SimMode::Vanilla, ByteSize::gb(gb).as_u64(), 0.0);
        rows.push(vec![
            format!("{gb} GB (testbed sim)"),
            secs(report.duration),
            format!("{:.2} GB/s", report.pipeline_rate / 1e9),
        ]);
    }
    // Measured laptop-scale times: the same query over growing object
    // prefixes of the uploaded dataset (objects are named part-000, ...).
    let sql = "SELECT vid, sum(index) as t FROM largeMeter GROUP BY vid";
    let objects = lab.ctx.client().list(&lab.container, None)?;
    for take in [1usize, objects.len().div_ceil(2), objects.len()] {
        let session = lab.ctx.session(&lab.container, ExecutionMode::Vanilla);
        // Register a view over the first `take` objects via their common
        // prefix when possible, else measure the whole container.
        let subset_bytes: u64 = objects.iter().take(take).map(|o| o.size).sum();
        let prefix = if take == 1 {
            Some(objects[0].name.clone())
        } else if take < objects.len() {
            // part-000 / part-001 share "part-00" only up to 10 objects;
            // fall back to whole-container when prefixes cannot express it.
            None
        } else {
            None
        };
        let (label_bytes, outcome) = match (&prefix, take == objects.len()) {
            (Some(p), _) => {
                session.register_table(
                    "largemeter",
                    &lab.container,
                    Some(p),
                    scoop_compute::TableFormat::Csv { has_header: true },
                    None,
                );
                (subset_bytes, session.sql(sql)?)
            }
            (None, true) => (lab.dataset_bytes, session.sql(sql)?),
            (None, false) => continue,
        };
        rows.push(vec![
            format!("{} (laptop, measured)", ByteSize::b(label_bytes)),
            format!("{:.1} ms", outcome.metrics.wall.as_secs_f64() * 1e3),
            format!("{} tasks", outcome.metrics.tasks),
        ]);
    }
    // Linearity check on the simulated series.
    let t50 = project(SimMode::Vanilla, ByteSize::gb(50).as_u64(), 0.0).duration;
    let t3000 = project(SimMode::Vanilla, ByteSize::gb(3000).as_u64(), 0.0).duration;
    let linear_ratio = t3000 / t50;
    Ok(FigureResult {
        id: "fig1",
        title: "Ingest-then-compute query time vs dataset size (linear growth)".to_string(),
        header: vec!["dataset".into(), "query time".into(), "detail".into()],
        rows,
        notes: vec![format!(
            "3TB/50GB time ratio = {linear_ratio:.1} (ideal linear = 60.0; sub-linear \
             remainder is the fixed job startup)"
        )],
    })
}

/// One row of the Fig. 5 sweep.
fn fig5_row(
    lab: &Lab,
    kind: SelectivityKind,
    target: f64,
    sizes: &[u64],
) -> Result<Vec<String>> {
    // Build the synthetic query for the target selectivity.
    let keep_rows = 1.0 - target;
    // For column selectivity, pick the column-prefix whose measured byte
    // share is closest to the target.
    let sql = match kind {
        SelectivityKind::Row => synthetic_query(kind, keep_rows, 10, lab.meters),
        SelectivityKind::Column | SelectivityKind::Mixed => {
            let mut best = (10usize, f64::MAX);
            for cols in 1..=10usize {
                let candidate = synthetic_query(SelectivityKind::Column, 1.0, cols, lab.meters);
                let measured = lab.selectivity(&candidate)?.data;
                let err = (measured - target).abs();
                if err < best.1 {
                    best = (cols, err);
                }
            }
            match kind {
                SelectivityKind::Column => {
                    synthetic_query(kind, 1.0, best.0, lab.meters)
                }
                _ => {
                    // Mixed: split the target between rows and columns.
                    let keep = (1.0 - target).sqrt();
                    synthetic_query(SelectivityKind::Mixed, keep, best.0.max(2), lab.meters)
                }
            }
        }
    };
    let measured = lab.selectivity(&sql)?.data;
    let run = lab.measure(&sql)?;
    let mut row = vec![
        kind.to_string(),
        pct(target),
        pct(measured),
        format!("{:.3}", run.transfer_ratio),
    ];
    for &gb in sizes {
        let s = projected_speedup(ByteSize::gb(gb).as_u64(), measured);
        row.push(format!("{s:.2}x"));
    }
    Ok(row)
}

/// Fig. 5 — `S_Q` vs data selectivity for row/column/mixed selectivity and
/// several dataset sizes.
pub fn fig5(lab: &Lab) -> Result<FigureResult> {
    let sizes = [50u64, 500, 3000];
    let mut rows = Vec::new();
    for kind in [SelectivityKind::Row, SelectivityKind::Column, SelectivityKind::Mixed] {
        for target in [0.0, 0.2, 0.4, 0.6, 0.8, 0.9] {
            rows.push(fig5_row(lab, kind, target, &sizes)?);
        }
    }
    Ok(FigureResult {
        id: "fig5",
        title: "S_Q vs data selectivity (superlinear; ≈5x @80%, >10x @90%)".to_string(),
        header: vec![
            "kind".into(),
            "target selec.".into(),
            "measured selec.".into(),
            "transfer ratio".into(),
            "S_Q @50GB".into(),
            "S_Q @500GB".into(),
            "S_Q @3TB".into(),
        ],
        rows,
        notes: vec![
            "paper Fig. 5: S_Q≈1 at 0% (worst-case −3.4%), ≈5 at 80%, >10 at 90%; larger \
             datasets speed up more"
                .to_string(),
        ],
    })
}

/// Fig. 6 — `S_Q` at very high data selectivity (up to ~31x).
pub fn fig6(_lab: &Lab) -> Result<FigureResult> {
    let sizes = [50u64, 500, 3000];
    let mut rows = Vec::new();
    for sel in [0.90, 0.95, 0.99, 0.999, 0.9999] {
        let mut row = vec![pct(sel)];
        for &gb in &sizes {
            row.push(format!(
                "{:.2}x",
                projected_speedup(ByteSize::gb(gb).as_u64(), sel)
            ));
        }
        rows.push(row);
    }
    Ok(FigureResult {
        id: "fig6",
        title: "S_Q at high data selectivity (paper: 6.72/10.23/12.51 @90%, up to 31x)"
            .to_string(),
        header: vec![
            "data selec.".into(),
            "S_Q @50GB".into(),
            "S_Q @500GB".into(),
            "S_Q @3TB".into(),
        ],
        rows,
        notes: vec![
            "the storage-CPU bottleneck caps the speedup near 30x at extreme selectivity"
                .to_string(),
        ],
    })
}

/// Fig. 7 — `S_Q` for the real GridPocket queries over two dataset sizes,
/// with the absolute `original/pushdown` times annotated like the paper.
pub fn fig7(lab: &Lab) -> Result<FigureResult> {
    let sizes = [(50u64, "50GB"), (500, "500GB")];
    let mut rows = Vec::new();
    let mut totals = [(0.0f64, 0.0f64); 2];
    for q in table1_queries() {
        let sel = lab.selectivity(&q.sql)?.data;
        let run = lab.measure(&q.sql)?;
        let mut row = vec![q.name.to_string(), pct(sel)];
        for (i, (gb, _)) in sizes.iter().enumerate() {
            let bytes = ByteSize::gb(*gb).as_u64();
            let vanilla = project(SimMode::Vanilla, bytes, 0.0);
            let scoop = project(SimMode::Pushdown, bytes, sel);
            totals[i].0 += vanilla.duration;
            totals[i].1 += scoop.duration;
            row.push(format!(
                "{:.1}/{:.1}s = {:.1}x",
                vanilla.duration,
                scoop.duration,
                vanilla.duration / scoop.duration
            ));
        }
        row.push(format!("{:.3}", run.transfer_ratio));
        rows.push(row);
    }
    let mut total_row = vec!["TOTAL".to_string(), String::new()];
    for (v, s) in totals {
        total_row.push(format!("{v:.1}/{s:.1}s = {:.1}x", v / s));
    }
    total_row.push(String::new());
    rows.push(total_row);
    Ok(FigureResult {
        id: "fig7",
        title: "GridPocket query speedups (paper: 4.1–18.7x @50GB; totals 4814.7→155.5s @500GB)"
            .to_string(),
        header: vec![
            "query".into(),
            "measured selec.".into(),
            "orig/pushdown @50GB".into(),
            "orig/pushdown @500GB".into(),
            "laptop transfer ratio".into(),
        ],
        rows,
        notes: vec![
            "synthetic data spans fewer months than GridPocket's, so measured selectivities \
             and hence projected speedups sit below the paper's 99.9%+ extremes"
                .to_string(),
        ],
    })
}

/// Fig. 8 — Scoop vs the columnar (Parquet-like) format across column
/// selectivity.
pub fn fig8(lab: &Lab) -> Result<FigureResult> {
    // Convert the lab's CSV into columnar once; measure its real
    // compression.
    let (csv_bytes, col_bytes) = lab
        .ctx
        .convert_to_columnar(&lab.container, "colmeter", 2_000)?;
    let compression = col_bytes as f64 / csv_bytes as f64;
    let mut rows = Vec::new();
    for cols_kept in [10usize, 8, 6, 4, 2, 1] {
        let sql = synthetic_query(SelectivityKind::Column, 1.0, cols_kept, lab.meters);
        let sel = lab.selectivity(&sql)?.data;
        // Measure the *range-pruned* columnar transfer (our extension) by
        // running the query over the converted container.
        let session = lab
            .ctx
            .session_with_schema("colmeter", ExecutionMode::Columnar, None);
        session.register_table(
            "largemeter",
            "colmeter",
            None,
            scoop_compute::TableFormat::Columnar,
            None,
        );
        let columnar_run = session.sql(&sql)?;
        let pruned_transfer =
            columnar_run.metrics.bytes_transferred as f64 / csv_bytes as f64;

        let bytes = ByteSize::gb(500).as_u64();
        let vanilla = project(SimMode::Vanilla, bytes, 0.0);
        let scoop = project(SimMode::Pushdown, bytes, sel);
        // Paper-faithful Parquet: the whole compressed file is ingested and
        // Spark discards columns after decoding ("Spark is in charge of
        // carrying out the tasks of (de)compressing data and discarding
        // columns").
        let parquet = project(
            SimMode::Columnar { transfer_ratio: compression, decoded_ratio: 1.0 },
            bytes,
            0.0,
        );
        // Extension: our reader prunes chunks over ranged GETs.
        let pruned = project(
            SimMode::Columnar {
                transfer_ratio: pruned_transfer,
                decoded_ratio: 1.0 - sel,
            },
            bytes,
            0.0,
        );
        let s_scoop = vanilla.duration / scoop.duration;
        let s_parquet = vanilla.duration / parquet.duration;
        let s_pruned = vanilla.duration / pruned.duration;
        rows.push(vec![
            format!("{cols_kept}/10 cols"),
            pct(sel),
            format!("{pruned_transfer:.3}"),
            format!("{s_scoop:.2}x"),
            format!("{s_parquet:.2}x"),
            format!("{s_pruned:.2}x"),
            if s_scoop > s_parquet { "scoop" } else { "parquet" }.to_string(),
        ]);
    }
    Ok(FigureResult {
        id: "fig8",
        title: "Scoop vs columnar format (paper: Parquet wins at 0% selectivity, Scoop wins ≥60%)"
            .to_string(),
        header: vec![
            "projection".into(),
            "column selec.".into(),
            "pruned transfer ratio".into(),
            "S_Q scoop".into(),
            "S_Q parquet (paper)".into(),
            "S_Q columnar+pruning (ext.)".into(),
            "winner (paper arms)".into(),
        ],
        rows,
        notes: vec![format!(
            "measured columnar compression of the generated dataset: {:.1}% of CSV size",
            compression * 100.0
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::lab::Scale;

    fn lab() -> Lab {
        Lab::new(&Scale::quick()).unwrap()
    }

    #[test]
    fn fig1_shows_linear_growth() {
        let fig = fig1(&lab()).unwrap();
        // Simulated times grow monotonically with size.
        let times: Vec<f64> = fig.rows[..6]
            .iter()
            .map(|r| r[1].trim_end_matches('s').parse().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]), "{times:?}");
        // Roughly linear: 10x data ≥ 8x time.
        assert!(times[3] / times[0] > 8.0);
    }

    #[test]
    fn fig6_caps_near_paper_max() {
        let fig = fig6(&lab()).unwrap();
        let parse = |s: &str| s.trim_end_matches('x').parse::<f64>().unwrap();
        // 90% column at 3TB in the paper: 12.51; we expect 8–16.
        let s90_3tb = parse(&fig.rows[0][3]);
        assert!((6.0..18.0).contains(&s90_3tb), "{s90_3tb}");
        // Highest selectivity approaches but does not exceed ~35x.
        let max = parse(&fig.rows[4][3]);
        assert!((20.0..40.0).contains(&max), "{max}");
        // Monotone in selectivity.
        for col in 1..=3 {
            let vals: Vec<f64> = fig.rows.iter().map(|r| parse(&r[col])).collect();
            assert!(vals.windows(2).all(|w| w[1] >= w[0] * 0.99), "{vals:?}");
        }
    }

    #[test]
    fn fig5_superlinear_and_fig7_totals() {
        let lab = lab();
        let fig = fig5(&lab).unwrap();
        assert_eq!(fig.rows.len(), 18);
        // Row-selectivity sweep at 3TB: superlinear growth.
        let parse = |s: &str| s.trim_end_matches('x').parse::<f64>().unwrap();
        let row_kind: Vec<f64> = fig.rows[..6].iter().map(|r| parse(&r[6])).collect();
        assert!(row_kind[5] > row_kind[4], "{row_kind:?}");
        assert!(
            row_kind[5] - row_kind[4] > row_kind[4] - row_kind[3],
            "superlinear: {row_kind:?}"
        );
        // S_Q ≈ 1 at zero selectivity.
        assert!((0.85..1.05).contains(&row_kind[0]), "{row_kind:?}");

        let fig = fig7(&lab).unwrap();
        assert_eq!(fig.rows.len(), 8);
        let total = fig.rows.last().unwrap();
        assert!(total[2].contains('x'));
    }

    #[test]
    fn fig8_crossover() {
        let lab = lab();
        let fig = fig8(&lab).unwrap();
        // At full projection (0% selectivity) the columnar arm wins
        // (compression); at high column selectivity scoop wins.
        assert_eq!(fig.rows.first().unwrap()[6], "parquet");
        assert_eq!(fig.rows.last().unwrap()[6], "scoop");
        // The paper-faithful parquet line is roughly flat in selectivity.
        let parse = |s: &str| s.trim_end_matches('x').parse::<f64>().unwrap();
        let first = parse(&fig.rows.first().unwrap()[4]);
        let last = parse(&fig.rows.last().unwrap()[4]);
        assert!((last / first - 1.0).abs() < 0.5, "parquet flat: {first} vs {last}");
    }
}

/// Bonus experiment — the paper's motivating multi-tenant scenario:
/// "inter-cluster network bandwidth may be saturated due to parallel data
/// ingestions from multiple analytics jobs" (Section I).
pub fn multi_tenant(lab: &Lab) -> Result<FigureResult> {
    use scoop_cluster::simulate::{simulate, simulate_concurrent};
    use scoop_cluster::{CostModel, SimJob, Topology};
    let sel = lab.selectivity(&table1_queries()[0].sql)?.data;
    let topology = Topology::osic();
    let model = CostModel::paper_default();
    let bytes = ByteSize::gb(500).as_u64();
    let mk = |mode| SimJob {
        dataset_bytes: bytes,
        data_selectivity: sel,
        mode,
        tasks: 4000,
    };
    let solo_vanilla = simulate(&mk(SimMode::Vanilla), &topology, &model).duration;
    let solo_scoop = simulate(&mk(SimMode::Pushdown), &topology, &model).duration;
    let mut rows = vec![vec![
        "1 (solo)".to_string(),
        secs(solo_vanilla),
        secs(solo_scoop),
        format!("{:.1}x", solo_vanilla / solo_scoop),
    ]];
    for n in [2usize, 4, 8] {
        let vanilla =
            simulate_concurrent(&vec![mk(SimMode::Vanilla); n], &topology, &model);
        let scoop =
            simulate_concurrent(&vec![mk(SimMode::Pushdown); n], &topology, &model);
        rows.push(vec![
            format!("{n} concurrent"),
            secs(vanilla[0].duration),
            secs(scoop[0].duration),
            format!("{:.1}x", vanilla[0].duration / scoop[0].duration),
        ]);
    }
    Ok(FigureResult {
        id: "multi-tenant",
        title: format!(
            "Concurrent jobs sharing the cluster (ShowMapCons-like, selec. {:.1}%, 500GB each)",
            sel * 100.0
        ),
        header: vec![
            "tenants".into(),
            "per-job time (vanilla)".into(),
            "per-job time (scoop)".into(),
            "S_Q".into(),
        ],
        rows,
        notes: vec![
            "vanilla jobs serialize on the 10Gbps inter-cluster link; Scoop jobs contend \
             only on storage CPU, so the speedup grows with tenancy"
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod multi_tenant_tests {
    use super::*;
    use crate::experiments::lab::{Lab, Scale};

    #[test]
    fn speedup_grows_with_tenancy() {
        let lab = Lab::new(&Scale::quick()).unwrap();
        let fig = multi_tenant(&lab).unwrap();
        assert_eq!(fig.rows.len(), 4);
        let parse = |s: &str| s.trim_end_matches('x').parse::<f64>().unwrap();
        let speedups: Vec<f64> = fig.rows.iter().map(|r| parse(&r[3])).collect();
        assert!(
            speedups.windows(2).all(|w| w[1] >= w[0] * 0.95),
            "{speedups:?}"
        );
        assert!(speedups[3] > speedups[0], "{speedups:?}");
    }
}
