//! Ablations of Scoop's design choices (DESIGN.md §4).

use super::lab::{Lab, Scale};
use super::FigureResult;
use scoop_common::Result;
use scoop_compute::ExecutionMode;
use scoop_connector::RunOn;
use scoop_objectstore::request::Request;
use scoop_objectstore::ObjectPath;
use scoop_storlets::middleware::{encode_params, headers};
use std::collections::HashMap;

const SQL: &str = "SELECT vid, sum(index) as total FROM largeMeter \
    WHERE city LIKE 'Rotterdam' GROUP BY vid ORDER BY vid";

/// Ablation 1 — storlet execution stage: object node vs proxy.
///
/// The paper made byte-range execution at object servers "fundamental ...
/// first, to avoid transferring the full object from the object node to one
/// of the proxies ... and second, to benefit from the higher concurrency
/// provided by the Swift object nodes pool".
pub fn stage(scale: &Scale) -> Result<FigureResult> {
    let mut rows = Vec::new();
    for (label, run_on) in [("object node", RunOn::ObjectNode), ("proxy", RunOn::Proxy)] {
        let lab = Lab::with_run_on(scale, run_on)?;
        let run = lab.measure(SQL)?;
        let stats = lab.ctx.engine().stats("csvfilter");
        rows.push(vec![
            label.to_string(),
            format!("{}", run.pushdown.metrics.tasks),
            format!("{}", run.pushdown.metrics.bytes_transferred),
            format!("{}", stats.bytes_in),
            format!("{:.1} ms", run.pushdown.metrics.wall.as_secs_f64() * 1e3),
        ]);
    }
    Ok(FigureResult {
        id: "ablate-stage",
        title: "Storlet execution stage (object node vs proxy): same output, same filtered \
                transfer; proxy staging centralizes the filtering work"
            .to_string(),
        header: vec![
            "stage".into(),
            "tasks".into(),
            "bytes to compute".into(),
            "bytes into storlet".into(),
            "wall (laptop)".into(),
        ],
        rows,
        notes: vec![
            "in the real testbed the object-node pool has ~5x the proxies' cores, which the \
             simulator's storage-CPU constraint models"
                .to_string(),
        ],
    })
}

/// Ablation 2 — partition chunk size (Section VII: the HDFS chunk size "is
/// not adapted to object stores").
pub fn chunk_size(scale: &Scale) -> Result<FigureResult> {
    let mut rows = Vec::new();
    for chunk in [32 * 1024u64, 128 * 1024, 512 * 1024, 4 * 1024 * 1024] {
        let mut s = scale.clone();
        s.chunk_size = chunk;
        let lab = Lab::new(&s)?;
        let run = lab.measure(SQL)?;
        rows.push(vec![
            scoop_common::ByteSize::b(chunk).to_string(),
            format!("{}", run.pushdown.metrics.tasks),
            format!("{}", run.pushdown.metrics.bytes_transferred),
            format!("{:.1} ms", run.pushdown.metrics.wall.as_secs_f64() * 1e3),
            format!("{:.1} ms", run.vanilla.metrics.wall.as_secs_f64() * 1e3),
        ]);
    }
    Ok(FigureResult {
        id: "ablate-chunk",
        title: "Partition chunk-size sweep: task count vs per-request overhead".to_string(),
        header: vec![
            "chunk".into(),
            "tasks".into(),
            "bytes to compute".into(),
            "pushdown wall".into(),
            "vanilla wall".into(),
        ],
        rows,
        notes: vec![
            "results are identical across chunk sizes (asserted by measure()); only cost \
             varies"
                .to_string(),
        ],
    })
}

/// Ablation 3 — filter pipelining: `csvfilter` alone vs
/// `csvfilter,rlecompress` (the paper's proposed filtering+compression
/// combination), measured on direct object requests.
pub fn pipelining(scale: &Scale) -> Result<FigureResult> {
    let lab = Lab::new(scale)?;
    let spec = scoop_csv::PushdownSpec {
        columns: Some(vec!["vid".into(), "date".into(), "index".into()]),
        predicate: None,
        has_header: true,
    };
    let schema = scoop_workload::generator::meter_schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut params = HashMap::new();
    params.insert("spec".to_string(), spec.to_header());
    params.insert("schema".to_string(), schema);
    let object = lab.ctx.client().list(&lab.container, None)?[0].name.clone();
    let path = ObjectPath::new(
        lab.ctx.config().account.clone(),
        lab.container.clone(),
        object,
    )?;

    let mut rows = Vec::new();
    let mut filtered_len = 0usize;
    for (label, pipeline) in [
        ("csvfilter", "csvfilter"),
        ("csvfilter,rlecompress", "csvfilter,rlecompress"),
    ] {
        let req = Request::get(path.clone())
            .with_header(headers::RUN_STORLET, pipeline)
            .with_header(headers::PARAMETERS, encode_params(&params));
        let body = lab.ctx.client().request(req)?.read_body()?;
        if label == "csvfilter" {
            filtered_len = body.len();
        } else {
            // Round-trip: decompress and compare with the plain filter.
            let restored =
                scoop_storlets::filters::compress::rle_decompress(&body)?;
            assert_eq!(restored.len(), filtered_len, "pipeline corrupted data");
        }
        rows.push(vec![label.to_string(), format!("{}", body.len())]);
    }
    Ok(FigureResult {
        id: "ablate-pipeline",
        title: "Filter pipelining: adding storage-side compression to the pushdown output"
            .to_string(),
        header: vec!["pipeline".into(), "bytes to compute".into()],
        rows,
        notes: vec![
            "Section VII proposes 'intelligent combinations of data filtering and \
             compression' for low-selectivity queries; the pipeline mechanism supports it \
             today"
                .to_string(),
        ],
    })
}

/// Ablation 4 — tenant tiering (the adaptive-pushdown sketch of Section
/// VII): bronze tenants silently fall back to plain ingestion.
pub fn tiering(scale: &Scale) -> Result<FigureResult> {
    let lab = Lab::new(scale)?;
    let gold = lab.run(SQL, ExecutionMode::Pushdown)?;
    lab.ctx
        .policy()
        .set_tier(&lab.ctx.config().account, scoop_storlets::Tier::Bronze);
    let bronze = lab.run(SQL, ExecutionMode::Pushdown)?;
    lab.ctx
        .policy()
        .set_tier(&lab.ctx.config().account, scoop_storlets::Tier::Gold);
    assert!(
        gold.result.approx_eq(&bronze.result, 1e-9),
        "tiering changed results"
    );
    let rows = vec![
        vec![
            "gold (pushdown honoured)".to_string(),
            format!("{}", gold.metrics.bytes_transferred),
        ],
        vec![
            "bronze (pushdown stripped)".to_string(),
            format!("{}", bronze.metrics.bytes_transferred),
        ],
    ];
    Ok(FigureResult {
        id: "ablate-tiering",
        title: "Tenant tiering: bronze tenants ingest the traditional way, same results"
            .to_string(),
        header: vec!["tier".into(), "bytes to compute".into()],
        rows,
        notes: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_ablation_same_transfer() {
        let fig = stage(&Scale::quick()).unwrap();
        assert_eq!(fig.rows.len(), 2);
        // Both stages deliver the same filtered byte count to compute.
        assert_eq!(fig.rows[0][2], fig.rows[1][2]);
    }

    #[test]
    fn chunk_ablation_task_counts_decrease() {
        let fig = chunk_size(&Scale::quick()).unwrap();
        let tasks: Vec<usize> =
            fig.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(tasks.windows(2).all(|w| w[1] <= w[0]), "{tasks:?}");
        assert!(tasks[0] > tasks[3]);
    }

    #[test]
    fn pipelining_compresses() {
        let fig = pipelining(&Scale::quick()).unwrap();
        let plain: usize = fig.rows[0][1].parse().unwrap();
        let compressed: usize = fig.rows[1][1].parse().unwrap();
        assert!(compressed != plain);
    }

    #[test]
    fn tiering_strips_pushdown() {
        let fig = tiering(&Scale::quick()).unwrap();
        let gold: u64 = fig.rows[0][1].parse().unwrap();
        let bronze: u64 = fig.rows[1][1].parse().unwrap();
        assert!(bronze > gold * 3, "gold={gold} bronze={bronze}");
    }
}
