//! Figures 9 and 10 — resource usage with and without Scoop.

use super::lab::{project, Lab};
use super::{secs, FigureResult};
use scoop_cluster::{SimMode, SimReport};
use scoop_common::{ByteSize, Result};
use scoop_workload::table1_queries;

/// The paper's Fig. 9/10 run: ShowGraphHCHP (99% data selectivity) on the
/// 3 TB dataset. Returns both arms' reports for series export.
pub fn showgraphhchp_runs(lab: &Lab) -> Result<(f64, SimReport, SimReport)> {
    let q = &table1_queries()[5]; // ShowGraphHCHP
    let sel = lab.selectivity(&q.sql)?.data;
    let bytes = ByteSize::tb(3).as_u64();
    let vanilla = project(SimMode::Vanilla, bytes, 0.0);
    let scoop = project(SimMode::Pushdown, bytes, sel);
    Ok((sel, vanilla, scoop))
}

/// Fig. 9 — compute-cluster CPU, memory and inter-cluster network.
pub fn fig9(lab: &Lab) -> Result<FigureResult> {
    let (sel, vanilla, scoop) = showgraphhchp_runs(lab)?;
    let cycles = |r: &SimReport| {
        r.series
            .get("spark_workers", "cpu_pct")
            .map(|s| s.integral())
            .unwrap_or(0.0)
    };
    let v_cycles = cycles(&vanilla);
    let s_cycles = cycles(&scoop);
    // "Held high" = any buffering above the executor baseline (40%).
    let mem_hold = |r: &SimReport| {
        r.series
            .get("spark_workers", "mem_pct")
            .map(|s| s.time_above(40.05))
            .unwrap_or(0.0)
    };
    let rows = vec![
        vec![
            "query duration".into(),
            secs(vanilla.duration),
            secs(scoop.duration),
            "12–15x shorter".into(),
        ],
        vec![
            "compute CPU (avg %)".into(),
            format!("{:.2}%", vanilla.compute_cpu_pct),
            format!("{:.2}%", scoop.compute_cpu_pct),
            "3.1% vs 1.2%".into(),
        ],
        vec![
            "compute CPU cycles".into(),
            format!("{v_cycles:.0}"),
            format!("{s_cycles:.0} (−{:.1}%)", 100.0 * (1.0 - s_cycles / v_cycles)),
            "−97.8%".into(),
        ],
        vec![
            "compute memory (peak %)".into(),
            format!("{:.1}%", vanilla.compute_mem_pct),
            format!("{:.1}%", scoop.compute_mem_pct),
            "13.2% lower peak".into(),
        ],
        vec![
            "memory held high (s)".into(),
            format!("{:.0}", mem_hold(&vanilla)),
            format!(
                "{:.0} ({:.1}x shorter)",
                mem_hold(&scoop),
                mem_hold(&vanilla) / mem_hold(&scoop).max(1.0)
            ),
            "12–15x".into(),
        ],
        vec![
            "LB transmit rate".into(),
            format!("{:.2} GB/s (saturated)", vanilla.lb_tx_rate / 1e9),
            format!("{:.0} MB/s", scoop.lb_tx_rate / 1e6),
            "~10Gbps vs 189MB/s".into(),
        ],
        vec![
            "bytes over inter-cluster link".into(),
            ByteSize::b(vanilla.bytes_transferred as u64).to_string(),
            ByteSize::b(scoop.bytes_transferred as u64).to_string(),
            String::new(),
        ],
    ];
    Ok(FigureResult {
        id: "fig9",
        title: format!(
            "Compute-cluster & network resources, ShowGraphHCHP @3TB (measured selec. {:.1}%)",
            sel * 100.0
        ),
        header: vec![
            "metric".into(),
            "plain Spark/Swift".into(),
            "Scoop".into(),
            "paper".into(),
        ],
        rows,
        notes: vec![],
    })
}

/// Fig. 10 — storage-node CPU with and without Scoop.
pub fn fig10(lab: &Lab) -> Result<FigureResult> {
    let (_, vanilla, scoop) = showgraphhchp_runs(lab)?;
    let rows = vec![
        vec![
            "storage CPU (avg %)".into(),
            format!("{:.2}%", vanilla.storage_cpu_pct),
            format!("{:.2}%", scoop.storage_cpu_pct),
            "1.25% vs 23.5%".into(),
        ],
        vec![
            "bottleneck".into(),
            format!("{:?}", vanilla.bottleneck),
            format!("{:?}", scoop.bottleneck),
            "network vs storage compute".into(),
        ],
        vec![
            "storage memory (storlet sandbox)".into(),
            "~0%".into(),
            "4–6% (constant)".into(),
            "4–6%".into(),
        ],
    ];
    Ok(FigureResult {
        id: "fig10",
        title: "Storage-node CPU with and without Scoop, 3TB dataset".to_string(),
        header: vec![
            "metric".into(),
            "plain Swift".into(),
            "Scoop".into(),
            "paper".into(),
        ],
        rows,
        notes: vec![
            "storage memory is modelled as the paper reports it (a near-constant 4–6% from \
             the sandbox), not simulated"
                .to_string(),
        ],
    })
}

/// Export the Fig. 9/10 time series as CSV files under `dir` for plotting.
pub fn export_series(lab: &Lab, dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>> {
    let (_, vanilla, scoop) = showgraphhchp_runs(lab)?;
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (arm, report) in [("vanilla", &vanilla), ("scoop", &scoop)] {
        for (group, metric) in [
            ("spark_workers", "cpu_pct"),
            ("spark_workers", "mem_pct"),
            ("storage_nodes", "cpu_pct"),
            ("load_balancer", "tx_bytes_per_sec"),
            ("swift_proxies", "tx_bytes_per_sec"),
        ] {
            let series = report.series.get_or_empty(group, metric);
            let mut csv = String::from("t_seconds,value\n");
            for (t, v) in series.t.iter().zip(&series.v) {
                csv.push_str(&format!("{t:.1},{v:.4}\n"));
            }
            let path = dir.join(format!("fig9_{arm}_{group}_{metric}.csv"));
            std::fs::write(&path, csv)?;
            written.push(path);
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::lab::Scale;

    #[test]
    fn fig9_and_fig10_reproduce_proportions() {
        let lab = Lab::new(&Scale::quick()).unwrap();
        let (sel, vanilla, scoop) = showgraphhchp_runs(&lab).unwrap();
        assert!(sel > 0.5, "ShowGraphHCHP selectivity {sel}");
        assert!(vanilla.duration / scoop.duration > 2.0);
        assert!(scoop.storage_cpu_pct > vanilla.storage_cpu_pct * 5.0);
        assert!(scoop.compute_cpu_pct < vanilla.compute_cpu_pct);
        assert!(scoop.lb_tx_rate < vanilla.lb_tx_rate / 2.0);
        let f9 = fig9(&lab).unwrap();
        assert_eq!(f9.rows.len(), 7);
        let f10 = fig10(&lab).unwrap();
        assert_eq!(f10.rows.len(), 3);
        assert!(f10.render().contains("StorageCpu") || f10.render().contains("Network"));
    }

    #[test]
    fn series_export_writes_csvs() {
        let lab = Lab::new(&Scale::quick()).unwrap();
        let dir = std::env::temp_dir().join(format!("scoop-series-{}", std::process::id()));
        let files = export_series(&lab, &dir).unwrap();
        assert_eq!(files.len(), 10);
        let body = std::fs::read_to_string(&files[0]).unwrap();
        assert!(body.starts_with("t_seconds,value\n"));
        assert!(body.lines().count() > 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
