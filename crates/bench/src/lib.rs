//! Shared fixtures for the Criterion benches and the `repro` harness.
//!
//! One `Lab` per process, built lazily at bench scale, so every bench
//! measures query execution rather than dataset generation.

use scoop_core::experiments::{Lab, Scale};
use std::sync::OnceLock;

/// Bench-sized lab (a few hundred KB of data; benches iterate many times).
pub fn bench_lab() -> &'static Lab {
    static LAB: OnceLock<Lab> = OnceLock::new();
    LAB.get_or_init(|| Lab::new(&bench_scale()).expect("bench lab builds"))
}

/// The sizing used by benches.
pub fn bench_scale() -> Scale {
    Scale {
        seed: 42,
        meters: 40,
        interval_minutes: 24 * 60,
        rows_per_object: 1_500,
        objects: 2,
        workers: 4,
        chunk_size: 32 * 1024,
    }
}

/// A generated CSV buffer for data-plane micro benches (~1 MB).
pub fn bench_csv() -> &'static [u8] {
    static CSV: OnceLock<Vec<u8>> = OnceLock::new();
    CSV.get_or_init(|| {
        let mut gen = scoop_workload::MeterDataset::new(&scoop_workload::GeneratorConfig {
            seed: 7,
            meters: 100,
            interval_minutes: 60,
            ..Default::default()
        });
        gen.csv_object(10_000).to_vec()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(bench_lab().dataset_bytes > 100_000);
        assert!(bench_csv().len() > 500_000);
    }
}
