//! Concurrent-client throughput gate for the TCP data plane.
//!
//! Measures sustained GET throughput through the full network stack —
//! HTTP/1.1 framing, connection pooling, keep-alive reuse — at 1, 8 and 32
//! concurrent clients pulling a multi-megabyte object over loopback. The
//! numbers gate the wire codec and pool against throughput regressions the
//! same way `hotpath` gates the CSV scan.
//!
//! ```text
//! cargo run -p scoop-bench --release --bin netplane                 # table
//! cargo run -p scoop-bench --release --bin netplane -- --write      # + BENCH_netplane.json
//! cargo run -p scoop-bench --release --bin netplane -- --quick --check BENCH_netplane.json
//! ```
//!
//! `--quick` shrinks the object and round count for CI smoke runs.
//! `--check FILE` fails when any current throughput drops below 50% of the
//! recorded number — the floor is looser than `hotpath`'s because loopback
//! scheduling noise dwarfs codec-level regressions on shared CI runners.
//! Throughputs are decimal MB/s of body bytes delivered to clients.

use bytes::Bytes;
use scoop_objectstore::{SwiftCluster, SwiftConfig};
use std::sync::Arc;
use std::time::Instant;

/// CI gate: fail when current throughput drops below 50% of the recorded one.
const REGRESSION_FLOOR: f64 = 0.5;

const DEFAULT_JSON: &str = "BENCH_netplane.json";
const CLIENTS: &[usize] = &[1, 8, 32];

struct BenchResult {
    name: String,
    bytes: u64,
    mb_per_s: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let write = args.iter().any(|a| a == "--write");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| DEFAULT_JSON.into()));

    // Total GETs per configuration and measurement passes; quick mode
    // trims the GET count, NOT the object size — MB/s depends on the
    // framing-overhead to body-bytes ratio, so a smaller quick object
    // would not be comparable against the recorded full-mode numbers. The
    // GET budget is per *configuration* (split across the clients) so
    // every timed window is long enough that one scheduler blip cannot
    // halve it, and each configuration reports the best of several passes
    // (hotpath's `best_of` discipline, applied per thread group).
    let object_bytes = 4 << 20;
    let (total_gets, passes) = if quick { (32, 2) } else { (96, 2) };
    let results = run_benches(object_bytes, total_gets, passes);

    println!("net-plane GET throughput ({} mode):", if quick { "quick" } else { "full" });
    for r in &results {
        println!("  {:<22} {:>8.1} MB/s", r.name, r.mb_per_s);
    }

    if write {
        let json = render_json(&results, quick, object_bytes);
        std::fs::write(DEFAULT_JSON, json).expect("write BENCH_netplane.json");
        println!("wrote {DEFAULT_JSON}");
    }

    if let Some(path) = check {
        match check_against(&results, &path) {
            Ok(msgs) => {
                for m in msgs {
                    println!("  {m}");
                }
                println!("bench-smoke: OK ({path})");
            }
            Err(e) => {
                eprintln!("bench-smoke: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bench
// ---------------------------------------------------------------------------

/// A pseudo-random body large enough that framing overhead is noise.
fn payload(len: usize) -> Bytes {
    let mut v = Vec::with_capacity(len);
    let mut x: u64 = 0x5C00_93A7;
    for _ in 0..len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.push(x as u8);
    }
    Bytes::from(v)
}

fn run_benches(object_bytes: usize, total_gets: usize, passes: usize) -> Vec<BenchResult> {
    let cluster = SwiftCluster::new(SwiftConfig::default()).expect("cluster");
    let seed_client = cluster.anonymous_client("AUTH_bench");
    seed_client.create_container("bench").expect("container");
    seed_client
        .put_object("bench", "blob", payload(object_bytes))
        .expect("upload");

    let mut results = Vec::new();
    for &n in CLIENTS {
        let rounds = (total_gets / n).max(2);
        let mbs = (0..passes.max(1))
            .map(|_| measure(&cluster, n, object_bytes, rounds))
            .fold(0.0f64, f64::max);
        results.push(BenchResult {
            name: format!("tcp_get_{n}_clients"),
            bytes: (n * rounds * object_bytes) as u64,
            mb_per_s: mbs,
        });
    }
    results
}

/// Aggregate MB/s across `n` threads, each with its own pooled TCP client
/// GETting the object `rounds` times. One untimed GET per thread warms the
/// dial and the page cache, so the clock sees steady-state keep-alive reuse.
fn measure(cluster: &Arc<SwiftCluster>, n: usize, object_bytes: usize, rounds: usize) -> f64 {
    let clients: Vec<_> = (0..n)
        .map(|_| {
            let c = cluster
                .anonymous_client("AUTH_bench")
                .over_tcp()
                .expect("tcp transport");
            let body = c
                .get_object("bench", "blob")
                .and_then(|r| r.read_body())
                .expect("warmup GET");
            assert_eq!(body.len(), object_bytes, "warmup body truncated");
            c
        })
        .collect();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .iter()
            .map(|c| {
                s.spawn(move || {
                    let mut total = 0u64;
                    for _ in 0..rounds {
                        let body = c
                            .get_object("bench", "blob")
                            .and_then(|r| r.read_body())
                            .expect("GET");
                        total += body.len() as u64;
                    }
                    total
                })
            })
            .collect();
        let delivered: u64 = handles.into_iter().map(|h| h.join().expect("client thread")).sum();
        assert_eq!(delivered, (n * rounds * object_bytes) as u64, "bytes went missing");
    });
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    (n * rounds * object_bytes) as f64 / 1e6 / secs
}

// ---------------------------------------------------------------------------
// Hand-rolled JSON (the workspace deliberately carries no serde_json)
// ---------------------------------------------------------------------------

fn render_json(results: &[BenchResult], quick: bool, object_bytes: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"object_bytes\": {object_bytes},\n"));
    out.push_str("  \"unit\": \"decimal MB/s\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"bytes\": {}, \"mb_per_s\": {:.1} }}{}\n",
            r.name,
            r.bytes,
            r.mb_per_s,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract `(name, mb_per_s)` pairs from the one-result-per-line layout
/// `render_json` emits.
fn parse_results(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.contains("\"name\"") {
            continue;
        }
        let name = extract_string(line, "\"name\"")
            .ok_or_else(|| format!("malformed result line: {line}"))?;
        let mbs = extract_number(line, "\"mb_per_s\"")
            .ok_or_else(|| format!("missing mb_per_s in: {line}"))?;
        out.push((name, mbs));
    }
    if out.is_empty() {
        return Err("no results found in JSON".to_string());
    }
    Ok(out)
}

fn extract_string(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start_matches([':', ' ']);
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_number(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check_against(results: &[BenchResult], path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let recorded = parse_results(&text)?;
    let mut msgs = Vec::new();
    for r in results {
        let Some(&(_, rec)) = recorded.iter().find(|(n, _)| *n == r.name) else {
            return Err(format!("bench '{}' missing from {path}", r.name));
        };
        if r.mb_per_s < rec * REGRESSION_FLOOR {
            return Err(format!(
                "'{}' regressed: {:.1} MB/s vs recorded {rec:.1} MB/s (floor {:.1})",
                r.name,
                r.mb_per_s,
                rec * REGRESSION_FLOOR
            ));
        }
        msgs.push(format!(
            "{:<22} {:>8.1} MB/s vs recorded {rec:.1} MB/s",
            r.name, r.mb_per_s
        ));
    }
    Ok(msgs)
}
