//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation and prints them as text tables.
//!
//! ```text
//! repro [all|fig1|table1|fig5|fig6|fig7|fig8|fig9|fig10|multi-tenant|ablations|calibration|smoke] ...
//!       [--quick] [--series-dir DIR] [--check-metrics]
//! ```
//!
//! By default runs everything at the standard scale and writes the Fig. 9
//! time-series CSVs under `target/figures/`. Every run ends with a dump of
//! the process-wide telemetry snapshot; `--check-metrics` additionally fails
//! the run if any registered data-path metric is missing from it. The
//! `smoke` experiment (not part of `all`) runs one traced pushdown query
//! over a deliberately degraded cluster and prints the resulting trace —
//! the observability acceptance gate CI runs on every push.

use scoop_core::experiments::{ablations, figures, lab, resources, table1, FigureResult, Lab, Scale};

/// One traced pushdown query over a cluster where every object node is slow
/// and hedging, breakers and chaos injection are all armed: exercises the
/// whole ingest path so the trailing snapshot carries nonzero data-path
/// counters, and prints the spans recorded under the query's trace ID.
fn smoke() -> scoop_common::Result<()> {
    use scoop_core::{ExecutionMode, ScoopConfig, ScoopContext};
    use scoop_objectstore::{BreakerConfig, FaultPlan, SwiftConfig};
    use scoop_workload::{GeneratorConfig, MeterDataset};
    use std::time::Duration;

    // Slow every object node so any replica placement forces the proxy to
    // launch hedges once 1 ms passes without a first byte.
    let mut plan = FaultPlan::quiet(0x5C00F);
    for node in 0..4 {
        plan = plan.with_slow_node(node, Duration::from_millis(10));
    }
    let ctx = ScoopContext::new(ScoopConfig {
        swift: SwiftConfig {
            fault_plan: Some(plan),
            breaker: Some(BreakerConfig::default()),
            hedge_after: Some(Duration::from_millis(1)),
            ..SwiftConfig::default()
        },
        ..ScoopConfig::default()
    })?;
    let mut gen = MeterDataset::new(&GeneratorConfig { meters: 30, ..Default::default() });
    let objects = (0..2)
        .map(|i| (format!("part-{i}.csv"), gen.csv_object(400)))
        .collect();
    ctx.upload_csv("meters", objects, None)?;
    let sql = "SELECT vid, sum(index) as total FROM meters \
               WHERE city LIKE 'Rotterdam' GROUP BY vid ORDER BY vid";
    let outcome = ctx.query("meters", sql, ExecutionMode::Pushdown)?;
    let spans = scoop_common::telemetry::trace_spans(&outcome.metrics.trace);
    println!("== smoke — one traced pushdown query over a degraded cluster ==");
    println!(
        "{} rows in {:?}; trace {} recorded {} spans:",
        outcome.result.rows.len(),
        outcome.metrics.wall,
        outcome.metrics.trace,
        spans.len()
    );
    for s in &spans {
        println!("  {:>10}  {:>8} us  {}", s.layer, s.duration_us, s.detail);
    }
    println!();
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_metrics = args.iter().any(|a| a == "--check-metrics");
    let series_dir = args
        .iter()
        .position(|a| a == "--series-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/figures"));
    let mut wanted: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--") && *a != series_dir.to_string_lossy())
        .collect();
    if wanted.is_empty() {
        wanted.push("all");
    }
    let all = wanted.contains(&"all");
    let scale = if quick { Scale::quick() } else { Scale::standard() };

    eprintln!(
        "building lab: {} meters, {} objects x {} rows ...",
        scale.meters, scale.objects, scale.rows_per_object
    );
    let lab_env = Lab::new(&scale).expect("lab setup");
    eprintln!(
        "dataset: {} over {} objects; workers={} chunk={}\n",
        scoop_common::ByteSize::b(lab_env.dataset_bytes),
        scale.objects,
        scale.workers,
        scoop_common::ByteSize::b(scale.chunk_size),
    );

    let want = |id: &str| all || wanted.contains(&id);
    let mut failures = 0usize;
    let mut show = |result: scoop_common::Result<FigureResult>| match result {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => {
            failures += 1;
            eprintln!("experiment failed: {e}");
        }
    };

    if want("calibration") {
        let (filter_tp, parse_tp) = lab::calibrate_throughputs(&lab_env.sample_csv);
        println!("== calibration — measured single-core throughputs ==");
        println!("storlet CSV filter : {:.0} MB/s", filter_tp / 1e6);
        println!("compute CSV parse  : {:.0} MB/s", parse_tp / 1e6);
        println!(
            "(the testbed projections use the paper-fitted cost model; see EXPERIMENTS.md)\n"
        );
    }
    if want("fig1") {
        show(figures::fig1(&lab_env));
    }
    if want("table1") {
        show(table1::run(&lab_env));
    }
    if want("fig5") {
        show(figures::fig5(&lab_env));
    }
    if want("fig6") {
        show(figures::fig6(&lab_env));
    }
    if want("fig7") {
        show(figures::fig7(&lab_env));
    }
    if want("fig8") {
        show(figures::fig8(&lab_env));
    }
    if want("multi-tenant") {
        show(figures::multi_tenant(&lab_env));
    }
    if want("fig9") {
        show(resources::fig9(&lab_env));
        match resources::export_series(&lab_env, &series_dir) {
            Ok(files) => println!(
                "wrote {} time-series CSVs under {}\n",
                files.len(),
                series_dir.display()
            ),
            Err(e) => eprintln!("series export failed: {e}"),
        }
    }
    if want("fig10") {
        show(resources::fig10(&lab_env));
    }
    if want("ablations") {
        show(ablations::stage(&scale));
        show(ablations::chunk_size(&scale));
        show(ablations::pipelining(&scale));
        show(ablations::tiering(&scale));
    }
    // Deliberately outside `all`: the degraded cluster exists to exercise the
    // trace/metrics plumbing, not to reproduce a paper figure.
    if wanted.contains(&"smoke") {
        if let Err(e) = smoke() {
            failures += 1;
            eprintln!("smoke failed: {e}");
        }
    }

    // Every run ends with the process-wide metrics dump, so figures always
    // come with the wire/hedge/storlet accounting that produced them.
    let snap = scoop_common::telemetry::snapshot();
    println!("== telemetry snapshot ==");
    println!("{}", snap.to_text());
    // ... and with the wide-event log: one line per query, so a slow figure
    // can be traced to the query (and layer) that produced it.
    let events = scoop_common::telemetry::query_events();
    println!("== query events ({}) ==", events.len());
    print!("{}", scoop_common::telemetry::events_to_text(&events));
    if check_metrics {
        let missing = scoop_common::telemetry::missing_data_path_metrics(&snap);
        if !missing.is_empty() {
            eprintln!(
                "--check-metrics: {} registered data-path metric(s) missing from the snapshot:",
                missing.len()
            );
            for name in missing {
                eprintln!("  {name}");
            }
            std::process::exit(1);
        }
        println!("--check-metrics: all data-path metrics present");
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
