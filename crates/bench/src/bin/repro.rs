//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation and prints them as text tables.
//!
//! ```text
//! repro [all|fig1|table1|fig5|fig6|fig7|fig8|fig9|fig10|multi-tenant|ablations|calibration] ...
//!       [--quick] [--series-dir DIR]
//! ```
//!
//! By default runs everything at the standard scale and writes the Fig. 9
//! time-series CSVs under `target/figures/`.

use scoop_core::experiments::{ablations, figures, lab, resources, table1, FigureResult, Lab, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let series_dir = args
        .iter()
        .position(|a| a == "--series-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/figures"));
    let mut wanted: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--") && *a != series_dir.to_string_lossy())
        .collect();
    if wanted.is_empty() {
        wanted.push("all");
    }
    let all = wanted.contains(&"all");
    let scale = if quick { Scale::quick() } else { Scale::standard() };

    eprintln!(
        "building lab: {} meters, {} objects x {} rows ...",
        scale.meters, scale.objects, scale.rows_per_object
    );
    let lab_env = Lab::new(&scale).expect("lab setup");
    eprintln!(
        "dataset: {} over {} objects; workers={} chunk={}\n",
        scoop_common::ByteSize::b(lab_env.dataset_bytes),
        scale.objects,
        scale.workers,
        scoop_common::ByteSize::b(scale.chunk_size),
    );

    let want = |id: &str| all || wanted.contains(&id);
    let mut failures = 0usize;
    let mut show = |result: scoop_common::Result<FigureResult>| match result {
        Ok(fig) => println!("{}", fig.render()),
        Err(e) => {
            failures += 1;
            eprintln!("experiment failed: {e}");
        }
    };

    if want("calibration") {
        let (filter_tp, parse_tp) = lab::calibrate_throughputs(&lab_env.sample_csv);
        println!("== calibration — measured single-core throughputs ==");
        println!("storlet CSV filter : {:.0} MB/s", filter_tp / 1e6);
        println!("compute CSV parse  : {:.0} MB/s", parse_tp / 1e6);
        println!(
            "(the testbed projections use the paper-fitted cost model; see EXPERIMENTS.md)\n"
        );
    }
    if want("fig1") {
        show(figures::fig1(&lab_env));
    }
    if want("table1") {
        show(table1::run(&lab_env));
    }
    if want("fig5") {
        show(figures::fig5(&lab_env));
    }
    if want("fig6") {
        show(figures::fig6(&lab_env));
    }
    if want("fig7") {
        show(figures::fig7(&lab_env));
    }
    if want("fig8") {
        show(figures::fig8(&lab_env));
    }
    if want("multi-tenant") {
        show(figures::multi_tenant(&lab_env));
    }
    if want("fig9") {
        show(resources::fig9(&lab_env));
        match resources::export_series(&lab_env, &series_dir) {
            Ok(files) => println!(
                "wrote {} time-series CSVs under {}\n",
                files.len(),
                series_dir.display()
            ),
            Err(e) => eprintln!("series export failed: {e}"),
        }
    }
    if want("fig10") {
        show(resources::fig10(&lab_env));
    }
    if want("ablations") {
        show(ablations::stage(&scale));
        show(ablations::chunk_size(&scale));
        show(ablations::pipelining(&scale));
        show(ablations::tiering(&scale));
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
