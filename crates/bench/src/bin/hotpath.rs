//! Hot-path throughput gate for the SWAR CSV scan and columnar batch decode.
//!
//! Measures the four data-plane paths the zero-copy rework targets and
//! compares the two calibration paths against the pre-rework seed numbers
//! recorded in `repro_output.txt` (storlet CSV filter 86 MB/s, compute CSV
//! parse 43 MB/s):
//!
//! * `storlet_csv_filter` — `filter_buffer` with the Fig. 5 projection and
//!   `city LIKE 'Rot%'` predicate over generated meter CSV;
//! * `compute_csv_parse`  — `CsvReader` typed parsing of the full schema;
//! * `record_split`       — bare record splitting (the SWAR scanner alone);
//! * `columnar_decode`    — `read_rows_selected` with a dictionary-coded
//!   equality predicate over a generated columnar object.
//!
//! ```text
//! cargo run -p scoop-bench --release --bin hotpath                 # table
//! cargo run -p scoop-bench --release --bin hotpath -- --write     # + BENCH_hotpath.json
//! cargo run -p scoop-bench --release --bin hotpath -- --quick --check BENCH_hotpath.json
//! ```
//!
//! `--quick` shrinks the dataset and iteration count for CI smoke runs.
//! `--check FILE` validates the committed JSON (parseable, every bench
//! present) and fails when any current throughput regresses more than 30%
//! below the recorded number. Throughputs are decimal MB/s, matching the
//! `repro` calibration output.
//!
//! `--overhead-gate PCT` additionally runs the storlet filter path twice —
//! once instrumented exactly like the production data path (a span per
//! buffer, a record counter per batch) and once through an inlined no-op
//! stub — and fails when live telemetry costs more than `PCT` percent of
//! the stub's throughput. Both variants are monomorphized over the same
//! generic loop, so the comparison isolates the telemetry calls themselves.

use bytes::Bytes;
use scoop_columnar::{ColumnarReader, ColumnarWriter};
use scoop_csv::filter::filter_buffer;
use scoop_csv::record::RecordSplitter;
use scoop_csv::{CsvReader, Predicate, PushdownSpec, Value};
use std::hint::black_box;
use std::time::Instant;

/// Seed calibration of the per-byte implementation (repro_output.txt).
const BASELINE_FILTER_MBS: f64 = 86.0;
const BASELINE_PARSE_MBS: f64 = 43.0;
/// CI gate: fail when current throughput drops below 70% of the recorded one.
const REGRESSION_FLOOR: f64 = 0.7;

const DEFAULT_JSON: &str = "BENCH_hotpath.json";

struct BenchResult {
    name: &'static str,
    bytes: u64,
    mb_per_s: f64,
    baseline_mb_per_s: Option<f64>,
}

impl BenchResult {
    fn speedup(&self) -> Option<f64> {
        self.baseline_mb_per_s.map(|b| self.mb_per_s / b)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let write = args.iter().any(|a| a == "--write");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| DEFAULT_JSON.into()));
    let overhead_gate = args
        .iter()
        .position(|a| a == "--overhead-gate")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<f64>().ok())
                .expect("--overhead-gate needs a percentage, e.g. --overhead-gate 3")
        });

    let (rows, iters) = if quick { (30_000, 3) } else { (150_000, 5) };
    let results = run_benches(rows, iters);

    println!("hot-path throughput ({} mode):", if quick { "quick" } else { "full" });
    for r in &results {
        match r.speedup() {
            Some(s) => println!(
                "  {:<20} {:>8.1} MB/s  ({:>5.1}x vs {:.0} MB/s seed)",
                r.name,
                r.mb_per_s,
                s,
                r.baseline_mb_per_s.unwrap_or(0.0)
            ),
            None => println!("  {:<20} {:>8.1} MB/s", r.name, r.mb_per_s),
        }
    }

    if write {
        let json = render_json(&results, quick);
        std::fs::write(DEFAULT_JSON, json).expect("write BENCH_hotpath.json");
        println!("wrote {DEFAULT_JSON}");
    }

    if let Some(pct) = overhead_gate {
        match run_overhead_gate(rows, iters, pct) {
            Ok(msg) => println!("  {msg}"),
            Err(e) => {
                eprintln!("overhead-gate: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = check {
        match check_against(&results, &path) {
            Ok(msgs) => {
                for m in msgs {
                    println!("  {m}");
                }
                println!("bench-smoke: OK ({path})");
            }
            Err(e) => {
                eprintln!("bench-smoke: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Benches
// ---------------------------------------------------------------------------

fn run_benches(rows: usize, iters: usize) -> Vec<BenchResult> {
    let mut gen = scoop_workload::MeterDataset::new(&scoop_workload::GeneratorConfig {
        seed: 7,
        meters: 100,
        interval_minutes: 60,
        ..Default::default()
    });
    let csv = gen.csv_object(rows).to_vec();
    let schema = scoop_workload::generator::meter_schema();
    let header: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();

    let mut results = Vec::new();

    // 1. Storlet-side filter: projection + predicate, raw-slice emission.
    let spec = PushdownSpec {
        columns: Some(vec!["vid".into(), "index".into()]),
        predicate: Some(Predicate::StartsWith("city".into(), "Rot".into())),
        has_header: true,
    };
    let secs = best_of(iters, || {
        let (out, _) = filter_buffer(&spec, &header, &csv, true).expect("filter");
        black_box(out.len()) as u64
    });
    results.push(BenchResult {
        name: "storlet_csv_filter",
        bytes: csv.len() as u64,
        mb_per_s: mbs(csv.len(), secs),
        baseline_mb_per_s: Some(BASELINE_FILTER_MBS),
    });

    // 2. Compute-side typed parse of every field.
    let secs = best_of(iters, || {
        let reader = CsvReader::new(
            scoop_common::stream::once(Bytes::from(csv.clone())),
            schema.clone(),
            true,
        );
        let mut n = 0u64;
        for r in reader {
            if r.is_ok() {
                n += 1;
            }
        }
        black_box(n)
    });
    results.push(BenchResult {
        name: "compute_csv_parse",
        bytes: csv.len() as u64,
        mb_per_s: mbs(csv.len(), secs),
        baseline_mb_per_s: Some(BASELINE_PARSE_MBS),
    });

    // 3. Bare record splitting — the SWAR scanner with zero-copy emission.
    let secs = best_of(iters, || {
        let mut n = 0u64;
        let mut sp = RecordSplitter::new();
        sp.push(&csv, |_| n += 1).expect("split");
        sp.finish(|_| n += 1);
        black_box(n)
    });
    results.push(BenchResult {
        name: "record_split",
        bytes: csv.len() as u64,
        mb_per_s: mbs(csv.len(), secs),
        baseline_mb_per_s: None,
    });

    // 4. Columnar batch decode with a dictionary-coded equality predicate.
    let parsed: Vec<Vec<Value>> = CsvReader::new(
        scoop_common::stream::once(Bytes::from(csv.clone())),
        schema.clone(),
        true,
    )
    .filter_map(|r| r.ok())
    .collect();
    let mut w = ColumnarWriter::with_row_group_rows(schema.clone(), 10_000);
    for row in &parsed {
        w.write_row(row);
    }
    let file = w.finish();
    let pred = Predicate::Eq("city".into(), Value::Str("Rotterdam".into()));
    let cols = vec!["vid".to_string(), "index".to_string()];
    let secs = best_of(iters, || {
        let reader = ColumnarReader::open_bytes(file.clone()).expect("open");
        let rows = reader
            .read_rows_selected(Some(&cols), Some(&pred))
            .expect("selected read");
        black_box(rows.len()) as u64
    });
    results.push(BenchResult {
        name: "columnar_decode",
        bytes: file.len() as u64,
        mb_per_s: mbs(file.len(), secs),
        baseline_mb_per_s: None,
    });

    results
}

// ---------------------------------------------------------------------------
// Telemetry overhead gate
// ---------------------------------------------------------------------------

/// The instrumentation surface the data path actually uses: one span per
/// buffer processed, one counter batch-add per buffer of records. The live
/// impl hits the real registry; the stub compiles to nothing. The hot loop
/// is generic over this trait, so each variant is monomorphized separately
/// and the stub's calls vanish entirely — exactly the "compiled-out"
/// configuration the gate compares against.
trait Instrument {
    fn buffer_span(&self) -> Option<scoop_common::telemetry::Span>;
    fn add_records(&self, n: u64);
}

struct LiveTelemetry {
    trace: String,
    records: scoop_common::telemetry::Counter,
}

impl Instrument for LiveTelemetry {
    fn buffer_span(&self) -> Option<scoop_common::telemetry::Span> {
        Some(scoop_common::telemetry::span(
            Some(&self.trace),
            scoop_common::telemetry::layers::STORLET,
            "overhead-gate filter_buffer",
        ))
    }

    fn add_records(&self, n: u64) {
        self.records.add(n);
    }
}

struct StubTelemetry;

impl Instrument for StubTelemetry {
    #[inline(always)]
    fn buffer_span(&self) -> Option<scoop_common::telemetry::Span> {
        None
    }

    #[inline(always)]
    fn add_records(&self, _n: u64) {}
}

/// The instrumented hot loop: the storlet CSV filter with the production
/// telemetry shape around it.
fn instrumented_filter<I: Instrument>(
    ins: &I,
    spec: &PushdownSpec,
    header: &[String],
    csv: &[u8],
) -> u64 {
    let _span = ins.buffer_span();
    let (out, stats) = filter_buffer(spec, header, csv, true).expect("filter");
    ins.add_records(stats.records_in);
    black_box(out.len()) as u64
}

/// Run the filter path live-instrumented and stub-instrumented, and fail if
/// live telemetry costs more than `pct` percent of stub throughput.
fn run_overhead_gate(rows: usize, iters: usize, pct: f64) -> Result<String, String> {
    let mut gen = scoop_workload::MeterDataset::new(&scoop_workload::GeneratorConfig {
        seed: 11,
        meters: 100,
        interval_minutes: 60,
        ..Default::default()
    });
    let csv = gen.csv_object(rows).to_vec();
    let schema = scoop_workload::generator::meter_schema();
    let header: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
    let spec = PushdownSpec {
        columns: Some(vec!["vid".into(), "index".into()]),
        predicate: Some(Predicate::StartsWith("city".into(), "Rot".into())),
        has_header: true,
    };

    // More samples than the throughput benches: a percent-level gate needs
    // the noise floor below the threshold it enforces.
    let gate_iters = (iters * 3).max(9);
    let live = LiveTelemetry {
        trace: scoop_common::telemetry::new_trace_id(),
        records: scoop_common::telemetry::counter("scoop_overhead_gate_records_total"),
    };
    let stub = StubTelemetry;
    // Interleaving would be fairer to thermal drift, but best-of already
    // takes the fastest sample of each variant, which shrugs off one-sided
    // slow outliers; run stub first so live pays any warmup cost.
    let stub_secs = best_of(gate_iters, || instrumented_filter(&stub, &spec, &header, &csv));
    let live_secs = best_of(gate_iters, || instrumented_filter(&live, &spec, &header, &csv));
    let stub_mbs = mbs(csv.len(), stub_secs);
    let live_mbs = mbs(csv.len(), live_secs);
    let overhead_pct = (stub_mbs - live_mbs) / stub_mbs * 100.0;
    let line = format!(
        "overhead-gate: stub {stub_mbs:.1} MB/s, live {live_mbs:.1} MB/s, overhead {overhead_pct:.2}% (gate {pct}%)"
    );
    if overhead_pct > pct {
        Err(line)
    } else {
        Ok(line)
    }
}

/// Best wall-clock of `iters` runs (first run doubles as warmup).
fn best_of(iters: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

fn mbs(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / 1e6 / secs
}

// ---------------------------------------------------------------------------
// Hand-rolled JSON (the workspace deliberately carries no serde_json)
// ---------------------------------------------------------------------------

fn render_json(results: &[BenchResult], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"unit\": \"decimal MB/s\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let baseline = match r.baseline_mb_per_s {
            Some(b) => format!("{b:.1}"),
            None => "null".to_string(),
        };
        let speedup = match r.speedup() {
            Some(s) => format!("{s:.2}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"bytes\": {}, \"mb_per_s\": {:.1}, \
             \"baseline_mb_per_s\": {}, \"speedup_vs_baseline\": {} }}{}\n",
            r.name,
            r.bytes,
            r.mb_per_s,
            baseline,
            speedup,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract `(name, mb_per_s)` pairs from the one-result-per-line layout
/// `render_json` emits.
fn parse_results(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.contains("\"name\"") {
            continue;
        }
        let name = extract_string(line, "\"name\"")
            .ok_or_else(|| format!("malformed result line: {line}"))?;
        let mbs = extract_number(line, "\"mb_per_s\"")
            .ok_or_else(|| format!("missing mb_per_s in: {line}"))?;
        out.push((name, mbs));
    }
    if out.is_empty() {
        return Err("no results found in JSON".to_string());
    }
    Ok(out)
}

fn extract_string(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start_matches([':', ' ']);
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_number(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check_against(results: &[BenchResult], path: &str) -> Result<Vec<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let recorded = parse_results(&text)?;
    let mut msgs = Vec::new();
    for r in results {
        let Some(&(_, rec)) = recorded.iter().find(|(n, _)| n == r.name) else {
            return Err(format!("bench '{}' missing from {path}", r.name));
        };
        if r.mb_per_s < rec * REGRESSION_FLOOR {
            return Err(format!(
                "'{}' regressed: {:.1} MB/s vs recorded {rec:.1} MB/s (floor {:.1})",
                r.name,
                r.mb_per_s,
                rec * REGRESSION_FLOOR
            ));
        }
        msgs.push(format!(
            "{:<20} {:>8.1} MB/s vs recorded {rec:.1} MB/s",
            r.name, r.mb_per_s
        ));
    }
    Ok(msgs)
}
