//! Data-skipping gate: zone-map block pruning vs full scans.
//!
//! Uploads a clustered CSV object through the `zoneindex` PUT storlet, then
//! drives `csvfilter` pushdown GETs at three selectivities (fraction of
//! records the predicate filters OUT: 50%, 95%, 99.9%) and reports, per
//! configuration, the object bytes actually read, the skipped-vs-total
//! ratio, and the effective ingestion rate (logical object MB per second of
//! query wall time). The numbers gate the planner against both throughput
//! regressions and structural ones — the 99.9% arm must keep reading under
//! 10% of the object.
//!
//! ```text
//! cargo run -p scoop-bench --release --bin skipping                  # table
//! cargo run -p scoop-bench --release --bin skipping -- --write       # + BENCH_skipping.json
//! cargo run -p scoop-bench --release --bin skipping -- --quick --check BENCH_skipping.json
//! ```
//!
//! `--quick` trims the round count for CI smoke runs (the object is the
//! same, so skipped ratios are directly comparable to the recorded file).
//! `--check FILE` fails when any effective rate drops below 50% of the
//! recorded one, or when the 99.9%-selectivity arm reads 10% or more of the
//! object's bytes.

use bytes::Bytes;
use scoop_common::headers as ch;
use scoop_csv::{Predicate, PushdownSpec, Value};
use scoop_objectstore::middleware::Pipeline;
use scoop_objectstore::{ObjectPath, SwiftCluster, SwiftConfig};
use scoop_storlets::middleware::encode_params;
use scoop_storlets::{headers, PolicyStore, StorletEngine, StorletMiddleware};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// CI gate: fail when the current effective rate drops below 50% of the
/// recorded one.
const REGRESSION_FLOOR: f64 = 0.5;
/// Structural gate: the 99.9%-selectivity arm must read under this fraction
/// of the object.
const MAX_READ_FRACTION_999: f64 = 0.10;

const DEFAULT_JSON: &str = "BENCH_skipping.json";
const ROWS: usize = 60_000;
const BLOCK_BYTES: u64 = 64 * 1024;

struct BenchResult {
    name: String,
    bytes_read: u64,
    skipped_ratio: f64,
    mb_per_s: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let write = args.iter().any(|a| a == "--write");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| DEFAULT_JSON.into()));

    let (rounds, passes) = if quick { (4, 2) } else { (16, 3) };
    let (results, object_bytes) = run_benches(rounds, passes);

    println!(
        "data-skipping pushdown over a {:.1} MB zone-indexed object ({} mode):",
        object_bytes as f64 / 1e6,
        if quick { "quick" } else { "full" }
    );
    for r in &results {
        println!(
            "  {:<12} read {:>9} B  skipped {:>5.1}%  {:>8.1} MB/s effective",
            r.name,
            r.bytes_read,
            r.skipped_ratio * 100.0,
            r.mb_per_s
        );
    }

    if write {
        let json = render_json(&results, quick, object_bytes);
        std::fs::write(DEFAULT_JSON, json).expect("write BENCH_skipping.json");
        println!("wrote {DEFAULT_JSON}");
    }

    if let Some(path) = check {
        match check_against(&results, object_bytes, &path) {
            Ok(msgs) => {
                for m in msgs {
                    println!("  {m}");
                }
                println!("bench-smoke: OK ({path})");
            }
            Err(e) => {
                eprintln!("bench-smoke: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bench
// ---------------------------------------------------------------------------

/// A clustered object: `k` ascends 0..ROWS, so range predicates over `k`
/// map to contiguous block runs — the shape zone maps are built for.
fn dataset() -> Vec<u8> {
    let mut out = Vec::with_capacity(ROWS * 64);
    out.extend_from_slice(b"k,vid,reading,city\n");
    for i in 0..ROWS {
        out.extend_from_slice(
            format!("{i},m{:05},{:.2},city{}\n", i % 977, (i % 400) as f64 * 0.25, i % 7)
                .as_bytes(),
        );
    }
    out
}

fn spec_for(selectivity: &str) -> PushdownSpec {
    // Selectivity = fraction of records filtered OUT.
    let predicate = match selectivity {
        "sel_50" => Predicate::Ge("k".into(), Value::Int(ROWS as i64 / 2)),
        "sel_95" => Predicate::Ge("k".into(), Value::Int((ROWS as i64 * 95) / 100)),
        _ => Predicate::Eq("k".into(), Value::Int((ROWS as i64 * 999) / 1000)),
    };
    PushdownSpec { columns: None, predicate: Some(predicate), has_header: true }
}

fn run_benches(rounds: usize, passes: usize) -> (Vec<BenchResult>, u64) {
    let cluster = SwiftCluster::new(SwiftConfig::default()).expect("cluster");
    let engine = Arc::new(StorletEngine::with_builtin_filters());
    let mut obj = Pipeline::new();
    obj.push(Arc::new(StorletMiddleware::new(engine.clone())));
    cluster.set_object_pipeline(obj);
    let mut proxy = Pipeline::new();
    proxy.push(Arc::new(StorletMiddleware::with_policy(
        engine,
        Arc::new(PolicyStore::new()),
    )));
    cluster.set_proxy_pipeline(proxy);

    let client = cluster.anonymous_client("AUTH_bench");
    client.create_container("bench").expect("container");
    let data = dataset();
    let object_bytes = data.len() as u64;
    let mut params = HashMap::new();
    params.insert("schema".to_string(), "k,vid,reading,city".to_string());
    params.insert("header".to_string(), "1".to_string());
    params.insert("block".to_string(), BLOCK_BYTES.to_string());
    let put = scoop_objectstore::Request::put(
        ObjectPath::new("AUTH_bench", "bench", "clustered.csv").expect("path"),
        Bytes::from(data),
    )
    .with_header(headers::RUN_STORLET, "zoneindex")
    .with_header(headers::PARAMETERS, encode_params(&params));
    assert_eq!(client.request(put).expect("indexed PUT").status, 201);

    let mut results = Vec::new();
    for name in ["sel_50", "sel_95", "sel_99_9"] {
        let spec = spec_for(name);
        let mut q = HashMap::new();
        q.insert("spec".to_string(), spec.to_header());
        q.insert("schema".to_string(), "k,vid,reading,city".to_string());
        let enc = encode_params(&q);

        // One untimed query for scanned/skipped accounting and warmup.
        let (scanned, skipped) = query(&cluster, &enc);
        assert_eq!(scanned + skipped, object_bytes, "accounting must cover the object");

        let mbs = (0..passes.max(1))
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..rounds {
                    query(&cluster, &enc);
                }
                let secs = t0.elapsed().as_secs_f64().max(1e-9);
                (rounds as u64 * object_bytes) as f64 / 1e6 / secs
            })
            .fold(0.0f64, f64::max);
        results.push(BenchResult {
            name: name.to_string(),
            bytes_read: scanned,
            skipped_ratio: skipped as f64 / object_bytes as f64,
            mb_per_s: mbs,
        });
    }
    (results, object_bytes)
}

/// One pushdown GET; returns `(scanned, skipped)` object bytes.
fn query(cluster: &Arc<SwiftCluster>, enc_params: &str) -> (u64, u64) {
    let client = cluster.anonymous_client("AUTH_bench");
    let req = scoop_objectstore::Request::get(
        ObjectPath::new("AUTH_bench", "bench", "clustered.csv").expect("path"),
    )
    .with_header(headers::RUN_STORLET, "csvfilter")
    .with_header(headers::PARAMETERS, enc_params);
    let resp = client.request(req).expect("pushdown GET");
    assert_eq!(resp.status, 200, "pushdown GET failed");
    let scanned = resp
        .headers
        .get(ch::SCANNED_BYTES)
        .and_then(|v| v.parse().ok())
        .expect("planned GET must report scanned bytes");
    let skipped = resp
        .headers
        .get(ch::SKIPPED_BYTES)
        .and_then(|v| v.parse().ok())
        .expect("planned GET must report skipped bytes");
    resp.read_body().expect("body");
    (scanned, skipped)
}

// ---------------------------------------------------------------------------
// Hand-rolled JSON (the workspace deliberately carries no serde_json)
// ---------------------------------------------------------------------------

fn render_json(results: &[BenchResult], quick: bool, object_bytes: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"object_bytes\": {object_bytes},\n"));
    out.push_str("  \"unit\": \"decimal MB/s of logical object bytes per query second\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"bytes_read\": {}, \"skipped_ratio\": {:.4}, \"mb_per_s\": {:.1} }}{}\n",
            r.name,
            r.bytes_read,
            r.skipped_ratio,
            r.mb_per_s,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract `(name, mb_per_s)` pairs from the one-result-per-line layout
/// `render_json` emits.
fn parse_results(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.contains("\"name\"") {
            continue;
        }
        let name = extract_string(line, "\"name\"")
            .ok_or_else(|| format!("malformed result line: {line}"))?;
        let mbs = extract_number(line, "\"mb_per_s\"")
            .ok_or_else(|| format!("missing mb_per_s in: {line}"))?;
        out.push((name, mbs));
    }
    if out.is_empty() {
        return Err("no results found in JSON".to_string());
    }
    Ok(out)
}

fn extract_string(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start_matches([':', ' ']);
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_number(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check_against(
    results: &[BenchResult],
    object_bytes: u64,
    path: &str,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let recorded = parse_results(&text)?;
    let mut msgs = Vec::new();
    for r in results {
        let Some(&(_, rec)) = recorded.iter().find(|(n, _)| *n == r.name) else {
            return Err(format!("bench '{}' missing from {path}", r.name));
        };
        if r.mb_per_s < rec * REGRESSION_FLOOR {
            return Err(format!(
                "'{}' regressed: {:.1} MB/s vs recorded {rec:.1} MB/s (floor {:.1})",
                r.name,
                r.mb_per_s,
                rec * REGRESSION_FLOOR
            ));
        }
        if r.name == "sel_99_9" {
            let fraction = r.bytes_read as f64 / object_bytes as f64;
            if fraction >= MAX_READ_FRACTION_999 {
                return Err(format!(
                    "'{}' read {:.1}% of the object (must stay under {:.0}%)",
                    r.name,
                    fraction * 100.0,
                    MAX_READ_FRACTION_999 * 100.0
                ));
            }
        }
        msgs.push(format!(
            "{:<12} {:>8.1} MB/s vs recorded {rec:.1} MB/s (skipped {:>5.1}%)",
            r.name,
            r.mb_per_s,
            r.skipped_ratio * 100.0
        ));
    }
    Ok(msgs)
}
