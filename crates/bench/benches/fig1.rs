//! Fig. 1 — ingest-then-compute query time grows with dataset size.
//!
//! Measures the real vanilla execution over increasing numbers of objects
//! (laptop scale), the behaviour whose testbed projection is Fig. 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scoop_core::{ExecutionMode, ScoopConfig, ScoopContext};
use scoop_workload::{GeneratorConfig, MeterDataset};
use std::hint::black_box;

const SQL: &str = "SELECT vid, sum(index) as t FROM meters GROUP BY vid";

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/vanilla_query_time_vs_size");
    g.sample_size(10);
    for objects in [1usize, 2, 4] {
        let ctx = ScoopContext::new(ScoopConfig {
            chunk_size: 64 * 1024,
            ..Default::default()
        })
        .unwrap();
        let mut gen = MeterDataset::new(&GeneratorConfig {
            meters: 40,
            interval_minutes: 24 * 60,
            ..Default::default()
        });
        let objs: Vec<(String, bytes::Bytes)> = (0..objects)
            .map(|i| (format!("p{i}.csv"), gen.csv_object(1_500)))
            .collect();
        let report = ctx.upload_csv("meters", objs, None).unwrap();
        g.throughput(Throughput::Bytes(report.bytes_in));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{objects}obj")),
            &ctx,
            |b, ctx| {
                b.iter(|| black_box(ctx.query("meters", SQL, ExecutionMode::Vanilla).unwrap()))
            },
        );
    }
    g.finish();
}

criterion_group!(
    name = fig1;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
);
criterion_main!(fig1);
