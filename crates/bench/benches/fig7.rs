//! Fig. 7 — the seven real GridPocket queries (Table I), both arms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scoop_bench::bench_lab;
use scoop_compute::ExecutionMode;
use scoop_workload::table1_queries;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = bench_lab();
    let mut g = c.benchmark_group("fig7/gridpocket_queries");
    g.sample_size(10);
    for q in table1_queries() {
        for (arm, mode) in [
            ("vanilla", ExecutionMode::Vanilla),
            ("pushdown", ExecutionMode::Pushdown),
        ] {
            g.bench_with_input(BenchmarkId::new(arm, q.name), &q.sql, |b, sql| {
                b.iter(|| black_box(lab.run(sql, mode).unwrap()))
            });
        }
    }
    g.finish();
}

criterion_group!(
    name = fig7;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
);
criterion_main!(fig7);
