//! Table I — selectivity measurement of each GridPocket query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scoop_bench::bench_csv;
use scoop_workload::selectivity::measure;
use scoop_workload::table1_queries;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let csv = bench_csv();
    let mut g = c.benchmark_group("table1/selectivity_measurement");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(csv.len() as u64));
    for q in table1_queries() {
        g.bench_with_input(BenchmarkId::from_parameter(q.name), &q.sql, |b, sql| {
            b.iter(|| black_box(measure(sql, csv).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    name = table1;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
);
criterion_main!(table1);
