//! Fig. 6 — pushdown at very high data selectivity: the storage filters
//! nearly everything, so compute-side work approaches zero.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scoop_bench::bench_lab;
use scoop_compute::ExecutionMode;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = bench_lab();
    let mut g = c.benchmark_group("fig6/high_selectivity");
    g.sample_size(10);
    // Selecting a single meter of the fleet (~1/40) over one column: the
    // laptop equivalent of the paper's 99.9%+ selectivity points.
    for (label, sql) in [
        (
            "sel_high",
            "SELECT vid FROM largeMeter WHERE vid < 'M00001'".to_string(),
        ),
        (
            "sel_extreme",
            "SELECT vid FROM largeMeter WHERE vid LIKE 'M00000' AND date LIKE '2015-01-01%'"
                .to_string(),
        ),
    ] {
        for (arm, mode) in [
            ("vanilla", ExecutionMode::Vanilla),
            ("pushdown", ExecutionMode::Pushdown),
        ] {
            g.bench_with_input(BenchmarkId::new(arm, label), &sql, |b, sql| {
                b.iter(|| black_box(lab.run(sql, mode).unwrap()))
            });
        }
    }
    g.finish();
}

criterion_group!(
    name = fig6;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
);
criterion_main!(fig6);
