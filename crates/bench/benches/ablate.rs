//! Ablation benches: storlet execution stage, partition chunk size, and
//! filter pipelining (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scoop_compute::ExecutionMode;
use scoop_connector::RunOn;
use scoop_core::experiments::{Lab, Scale};
use std::hint::black_box;
use std::sync::OnceLock;

const SQL: &str = "SELECT vid, sum(index) as total FROM largeMeter \
    WHERE city LIKE 'Rotterdam' GROUP BY vid ORDER BY vid";

fn scale() -> Scale {
    scoop_bench::bench_scale()
}

fn bench_stage(c: &mut Criterion) {
    static OBJ: OnceLock<Lab> = OnceLock::new();
    static PROXY: OnceLock<Lab> = OnceLock::new();
    let labs = [
        ("object_node", OBJ.get_or_init(|| Lab::with_run_on(&scale(), RunOn::ObjectNode).unwrap())),
        ("proxy", PROXY.get_or_init(|| Lab::with_run_on(&scale(), RunOn::Proxy).unwrap())),
    ];
    let mut g = c.benchmark_group("ablate/storlet_stage");
    g.sample_size(10);
    for (label, lab) in labs {
        g.bench_with_input(BenchmarkId::from_parameter(label), lab, |b, lab| {
            b.iter(|| black_box(lab.run(SQL, ExecutionMode::Pushdown).unwrap()))
        });
    }
    g.finish();
}

fn bench_chunk(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate/chunk_size");
    g.sample_size(10);
    for chunk in [16 * 1024u64, 64 * 1024, 512 * 1024] {
        let mut s = scale();
        s.chunk_size = chunk;
        let lab = Lab::new(&s).unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}KB", chunk / 1024)),
            &lab,
            |b, lab| b.iter(|| black_box(lab.run(SQL, ExecutionMode::Pushdown).unwrap())),
        );
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    use scoop_objectstore::request::Request;
    use scoop_objectstore::ObjectPath;
    use scoop_storlets::middleware::{encode_params, headers};
    use std::collections::HashMap;

    static LAB: OnceLock<Lab> = OnceLock::new();
    let lab = LAB.get_or_init(|| Lab::new(&scale()).unwrap());
    let spec = scoop_csv::PushdownSpec {
        columns: Some(vec!["vid".into(), "date".into(), "index".into()]),
        predicate: None,
        has_header: true,
    };
    let mut params = HashMap::new();
    params.insert("spec".to_string(), spec.to_header());
    params.insert(
        "schema".to_string(),
        scoop_workload::generator::meter_schema().names().join(","),
    );
    let object = lab.ctx.client().list(&lab.container, None).unwrap()[0]
        .name
        .clone();
    let path = ObjectPath::new(
        lab.ctx.config().account.clone(),
        lab.container.clone(),
        object,
    )
    .unwrap();

    let mut g = c.benchmark_group("ablate/filter_pipelining");
    g.sample_size(10);
    for pipeline in ["csvfilter", "csvfilter,rlecompress"] {
        g.bench_with_input(BenchmarkId::from_parameter(pipeline), &path, |b, path| {
            b.iter(|| {
                let req = Request::get(path.clone())
                    .with_header(headers::RUN_STORLET, pipeline)
                    .with_header(headers::PARAMETERS, encode_params(&params));
                black_box(
                    lab.ctx
                        .client()
                        .request(req)
                        .unwrap()
                        .read_body()
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = ablate;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_stage, bench_chunk, bench_pipeline
);
criterion_main!(ablate);
