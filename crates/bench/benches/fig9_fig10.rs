//! Figs. 9 & 10 — resource-usage simulation of the ShowGraphHCHP run at
//! 3 TB (both arms), plus the simulator's own cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scoop_cluster::simulate::simulate;
use scoop_cluster::{CostModel, SimJob, SimMode, Topology};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_fig10/testbed_simulation");
    let topology = Topology::osic();
    let model = CostModel::paper_default();
    for (label, mode, sel) in [
        ("vanilla_3tb", SimMode::Vanilla, 0.0),
        ("scoop_3tb_sel99", SimMode::Pushdown, 0.99),
        (
            "columnar_3tb",
            SimMode::Columnar { transfer_ratio: 0.5, decoded_ratio: 1.0 },
            0.0,
        ),
    ] {
        let job = SimJob {
            dataset_bytes: 3_000_000_000_000,
            data_selectivity: sel,
            mode,
            tasks: 24_000,
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &job, |b, job| {
            b.iter(|| black_box(simulate(job, &topology, &model).duration))
        });
    }
    g.finish();
}

criterion_group!(
    name = fig9_fig10;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
);
criterion_main!(fig9_fig10);
