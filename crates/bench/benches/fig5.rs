//! Fig. 5 — pushdown vs vanilla across data selectivity (row/column/mixed).
//!
//! Real executions at laptop scale; each group compares the two arms on the
//! same synthetic selectivity-controlled query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scoop_bench::bench_lab;
use scoop_compute::ExecutionMode;
use scoop_workload::queries::{synthetic_query, SelectivityKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let lab = bench_lab();
    for kind in [SelectivityKind::Row, SelectivityKind::Column, SelectivityKind::Mixed] {
        let mut g = c.benchmark_group(format!("fig5/{kind}"));
        g.sample_size(10);
        for keep in [1.0f64, 0.4, 0.1] {
            let sql = match kind {
                SelectivityKind::Row => synthetic_query(kind, keep, 10, lab.meters),
                SelectivityKind::Column => {
                    synthetic_query(kind, 1.0, (keep * 10.0).max(1.0) as usize, lab.meters)
                }
                SelectivityKind::Mixed => {
                    synthetic_query(kind, keep, (keep * 10.0).max(2.0) as usize, lab.meters)
                }
            };
            for (arm, mode) in [
                ("vanilla", ExecutionMode::Vanilla),
                ("pushdown", ExecutionMode::Pushdown),
            ] {
                g.bench_with_input(
                    BenchmarkId::new(arm, format!("keep{:.0}pct", keep * 100.0)),
                    &sql,
                    |b, sql| b.iter(|| black_box(lab.run(sql, mode).unwrap())),
                );
            }
        }
        g.finish();
    }
}

criterion_group!(
    name = fig5;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
);
criterion_main!(fig5);
