//! Fig. 8 — Scoop pushdown vs the columnar (Parquet-like) format across
//! column selectivity, at laptop scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scoop_bench::bench_lab;
use scoop_compute::{ExecutionMode, TableFormat};
use scoop_workload::queries::{synthetic_query, SelectivityKind};
use std::hint::black_box;
use std::sync::OnceLock;

fn bench(c: &mut Criterion) {
    let lab = bench_lab();
    // Convert once.
    static CONVERTED: OnceLock<()> = OnceLock::new();
    CONVERTED.get_or_init(|| {
        lab.ctx
            .convert_to_columnar(&lab.container, "colmeter", 2_000)
            .expect("conversion");
    });
    let mut g = c.benchmark_group("fig8/scoop_vs_columnar");
    g.sample_size(10);
    for cols in [10usize, 5, 1] {
        let sql = synthetic_query(SelectivityKind::Column, 1.0, cols, lab.meters);
        g.bench_with_input(
            BenchmarkId::new("scoop", format!("{cols}cols")),
            &sql,
            |b, sql| b.iter(|| black_box(lab.run(sql, ExecutionMode::Pushdown).unwrap())),
        );
        g.bench_with_input(
            BenchmarkId::new("columnar", format!("{cols}cols")),
            &sql,
            |b, sql| {
                b.iter(|| {
                    let session = lab
                        .ctx
                        .session_with_schema("colmeter", ExecutionMode::Columnar, None);
                    session.register_table(
                        "largemeter",
                        "colmeter",
                        None,
                        TableFormat::Columnar,
                        None,
                    );
                    black_box(session.sql(sql).unwrap())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    name = fig8;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
);
criterion_main!(fig8);
