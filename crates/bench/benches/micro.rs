//! Component micro-benchmarks: the data-plane primitives whose throughput
//! calibrates the cluster cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scoop_bench::bench_csv;
use scoop_csv::filter::filter_buffer;
use scoop_csv::pushdown::like_match;
use scoop_csv::{Predicate, PushdownSpec, Value};
use std::hint::black_box;

fn header() -> Vec<String> {
    scoop_workload::generator::meter_schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn bench_hash_and_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/ring");
    let mut builder = scoop_objectstore::RingBuilder::new(12, 3);
    for n in 0..29u32 {
        for _ in 0..10 {
            builder.add_device(n, n % 5, 1.0);
        }
    }
    let ring = builder.build().unwrap();
    g.bench_function("lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("/acct/cont/obj-{i}");
            black_box(ring.lookup(&key)[0])
        })
    });
    g.bench_function("hash64_64B", |b| {
        let data = [7u8; 64];
        b.iter(|| black_box(scoop_common::hash::hash64(&data)))
    });
    g.finish();
}

fn bench_csv_filter(c: &mut Criterion) {
    let data = bench_csv();
    let header = header();
    let mut g = c.benchmark_group("micro/csv_filter");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for (label, spec) in [
        ("passthrough", PushdownSpec { has_header: true, ..Default::default() }),
        (
            "project2",
            PushdownSpec {
                columns: Some(vec!["vid".into(), "index".into()]),
                predicate: None,
                has_header: true,
            },
        ),
        (
            "select_city",
            PushdownSpec {
                columns: Some(vec!["vid".into(), "index".into()]),
                predicate: Some(Predicate::Eq(
                    "city".into(),
                    Value::Str("Rotterdam".into()),
                )),
                has_header: true,
            },
        ),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
            b.iter(|| black_box(filter_buffer(spec, &header, data, true).unwrap().1))
        });
    }
    g.finish();
}

fn bench_csv_parse(c: &mut Criterion) {
    let data = bench_csv();
    let schema = scoop_workload::generator::meter_schema();
    let mut g = c.benchmark_group("micro/csv_parse");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("typed_rows", |b| {
        b.iter(|| {
            let reader = scoop_csv::CsvReader::new(
                scoop_common::stream::once(bytes::Bytes::from_static(data)),
                schema.clone(),
                true,
            );
            black_box(reader.count())
        })
    });
    g.finish();
}

fn bench_sql_plan(c: &mut Criterion) {
    let sql = &scoop_workload::table1_queries()[5].sql;
    let schema = scoop_workload::generator::meter_schema();
    c.bench_function("micro/sql_parse_and_plan", |b| {
        b.iter(|| {
            let q = scoop_sql::parse(black_box(sql)).unwrap();
            black_box(scoop_sql::catalyst::plan_query(&q, &schema, true).unwrap())
        })
    });
}

fn bench_like(c: &mut Criterion) {
    c.bench_function("micro/like_match", |b| {
        b.iter(|| black_box(like_match("2015-01-%", "2015-01-15 10:20:00")))
    });
}

fn bench_rle(c: &mut Criterion) {
    let data = bench_csv();
    let mut g = c.benchmark_group("micro/rle");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress", |b| {
        b.iter(|| black_box(scoop_storlets::filters::compress::rle_compress(data)))
    });
    g.finish();
}

fn bench_columnar(c: &mut Criterion) {
    let schema = scoop_workload::generator::meter_schema();
    let rows: Vec<Vec<Value>> = {
        let reader = scoop_csv::CsvReader::new(
            scoop_common::stream::once(bytes::Bytes::from(bench_csv().to_vec())),
            schema.clone(),
            true,
        );
        reader.map(|r| r.unwrap()).collect()
    };
    let mut g = c.benchmark_group("micro/columnar");
    g.throughput(Throughput::Bytes(bench_csv().len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut w = scoop_columnar::ColumnarWriter::with_row_group_rows(
                schema.clone(),
                5_000,
            );
            for r in &rows {
                w.write_row(r);
            }
            black_box(w.finish())
        })
    });
    let encoded = {
        let mut w = scoop_columnar::ColumnarWriter::with_row_group_rows(schema, 5_000);
        for r in &rows {
            w.write_row(r);
        }
        w.finish()
    };
    g.bench_function("decode_pruned", |b| {
        b.iter(|| {
            let r = scoop_columnar::ColumnarReader::open_bytes(encoded.clone()).unwrap();
            black_box(r.read_rows(Some(&["vid".to_string(), "index".to_string()])).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hash_and_ring,
        bench_csv_filter,
        bench_csv_parse,
        bench_sql_plan,
        bench_like,
        bench_rle,
        bench_columnar
);
criterion_main!(micro);
