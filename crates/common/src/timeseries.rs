//! collectd-like metric recording.
//!
//! The paper instruments all 63 machines with collectd to produce the resource
//! usage figures (Figs. 9 and 10). The cluster simulator records equivalent
//! time series per node group (Spark workers, Swift proxies, Swift storage
//! nodes, load balancer) through this module.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single (time, value) series with monotone non-decreasing timestamps.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct TimeSeries {
    /// Sample timestamps in seconds since the start of the experiment.
    pub t: Vec<f64>,
    /// Sample values (unit depends on the metric: %, bytes/s, bytes, ...).
    pub v: Vec<f64>,
}

impl TimeSeries {
    /// Create an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Panics in debug builds if time goes backwards.
    pub fn push(&mut self, t: f64, v: f64) {
        debug_assert!(
            self.t.last().is_none_or(|&last| t >= last),
            "time went backwards: {t} after {:?}",
            self.t.last()
        );
        self.t.push(t);
        self.v.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Arithmetic mean of sample values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.v.is_empty() {
            0.0
        } else {
            self.v.iter().sum::<f64>() / self.v.len() as f64
        }
    }

    /// Mean over only the samples within `[t0, t1]`.
    pub fn mean_between(&self, t0: f64, t1: f64) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in self.t.iter().zip(&self.v) {
            if (t0..=t1).contains(t) {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Maximum sample value (0 when empty).
    pub fn max(&self) -> f64 {
        self.v.iter().copied().fold(0.0, f64::max)
    }

    /// Trapezoidal integral of the series — e.g. CPU% integrated over time
    /// yields "CPU cycles consumed" as the paper reports (−97.8% for Scoop).
    pub fn integral(&self) -> f64 {
        let mut acc = 0.0;
        for i in 1..self.t.len() {
            let dt = self.t[i] - self.t[i - 1];
            acc += dt * (self.v[i] + self.v[i - 1]) / 2.0;
        }
        acc
    }

    /// Duration for which the value stays at or above `threshold`
    /// (sum of sample intervals whose left endpoint qualifies).
    pub fn time_above(&self, threshold: f64) -> f64 {
        let mut acc = 0.0;
        for i in 1..self.t.len() {
            if self.v[i - 1] >= threshold {
                acc += self.t[i] - self.t[i - 1];
            }
        }
        acc
    }

    /// Last timestamp (0 when empty).
    pub fn end_time(&self) -> f64 {
        self.t.last().copied().unwrap_or(0.0)
    }
}

/// A named collection of time series, keyed by `(node_group, metric)`.
///
/// Mirrors how collectd tags samples with host + plugin; we aggregate per node
/// group because the figures report group averages.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    series: BTreeMap<(String, String), TimeSeries>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sample for `(group, metric)` at time `t`.
    pub fn record(&mut self, group: &str, metric: &str, t: f64, v: f64) {
        self.series
            .entry((group.to_string(), metric.to_string()))
            .or_default()
            .push(t, v);
    }

    /// Fetch a series if present.
    pub fn get(&self, group: &str, metric: &str) -> Option<&TimeSeries> {
        self.series.get(&(group.to_string(), metric.to_string()))
    }

    /// Fetch a series, returning an empty one if absent.
    pub fn get_or_empty(&self, group: &str, metric: &str) -> TimeSeries {
        self.get(group, metric).cloned().unwrap_or_default()
    }

    /// Iterate over all `(group, metric)` keys.
    pub fn keys(&self) -> impl Iterator<Item = (&str, &str)> {
        self.series.keys().map(|(g, m)| (g.as_str(), m.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(samples: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in samples {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn mean_and_max() {
        let s = series(&[(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 3.0);
        assert!(TimeSeries::new().is_empty());
        assert_eq!(TimeSeries::new().mean(), 0.0);
    }

    #[test]
    fn integral_is_trapezoidal() {
        // A constant 2.0 over 10 s integrates to 20.
        let s = series(&[(0.0, 2.0), (10.0, 2.0)]);
        assert_eq!(s.integral(), 20.0);
        // A ramp 0→10 over 10 s integrates to 50.
        let ramp = series(&[(0.0, 0.0), (10.0, 10.0)]);
        assert_eq!(ramp.integral(), 50.0);
    }

    #[test]
    fn time_above_counts_intervals() {
        let s = series(&[(0.0, 5.0), (10.0, 5.0), (20.0, 1.0), (30.0, 1.0)]);
        assert_eq!(s.time_above(4.0), 20.0);
        assert_eq!(s.time_above(0.5), 30.0);
        assert_eq!(s.time_above(9.0), 0.0);
    }

    #[test]
    fn mean_between_window() {
        let s = series(&[(0.0, 10.0), (5.0, 20.0), (10.0, 30.0)]);
        assert_eq!(s.mean_between(4.0, 10.0), 25.0);
        assert_eq!(s.mean_between(100.0, 200.0), 0.0);
    }

    #[test]
    fn registry_roundtrip() {
        let mut reg = MetricsRegistry::new();
        reg.record("spark_workers", "cpu_pct", 0.0, 3.1);
        reg.record("spark_workers", "cpu_pct", 1.0, 3.0);
        reg.record("storage_nodes", "cpu_pct", 0.0, 1.25);
        assert_eq!(reg.get("spark_workers", "cpu_pct").unwrap().len(), 2);
        assert!(reg.get("nope", "cpu_pct").is_none());
        assert_eq!(reg.keys().count(), 2);
        assert!(reg.get_or_empty("nope", "x").is_empty());
    }
}
