//! Query-scoped time budgets.
//!
//! A [`Deadline`] is created once per query (or per external request) and
//! propagated through every layer of the ingest path — scheduler tasks,
//! connector requests, Swift client dispatch, proxy→object-server hops — so
//! that no sub-request outlives the budget of the query it serves. Layers
//! check the deadline before starting (or retrying) work and clamp their
//! sleeps to the remaining budget, turning a saturated store into a prompt
//! `deadline` error instead of an unbounded stall.
//!
//! `Deadline` is `Copy` and defaults to "no deadline", so threading it
//! through existing call chains is cheap and backwards compatible.

use crate::error::{Result, ScoopError};
use std::time::{Duration, Instant};

/// A point in time after which work on behalf of a query must stop.
///
/// The default value carries no deadline: [`Deadline::expired`] is always
/// false and [`Deadline::check`] always succeeds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: every check passes, sleeps are never clamped.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline { at: Some(Instant::now() + budget) }
    }

    /// A deadline at an explicit instant.
    pub fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// True if a deadline is set (even if already expired).
    pub fn is_set(&self) -> bool {
        self.at.is_some()
    }

    /// Budget left before the deadline; `None` when no deadline is set.
    /// Returns `Some(ZERO)` once expired, never a negative-like panic.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// True once the deadline has passed. A `none()` deadline never expires.
    pub fn expired(&self) -> bool {
        matches!(self.remaining(), Some(d) if d.is_zero())
    }

    /// Fail with a [`ScoopError::DeadlineExceeded`] naming `label` if the
    /// deadline has passed. The error is *not* retryable: retry loops at
    /// every layer fail fast instead of burning the exhausted budget.
    pub fn check(&self, label: &str) -> Result<()> {
        if self.expired() {
            Err(ScoopError::DeadlineExceeded(label.to_string()))
        } else {
            Ok(())
        }
    }

    /// The tighter of two deadlines: a layer combining its own budget with
    /// the query's keeps whichever runs out first.
    pub fn earliest(&self, other: Deadline) -> Deadline {
        match (self.at, other.at) {
            (Some(a), Some(b)) => Deadline { at: Some(a.min(b)) },
            (Some(a), None) => Deadline { at: Some(a) },
            (None, b) => Deadline { at: b },
        }
    }

    /// Clamp an intended sleep (e.g. a retry backoff) to the remaining
    /// budget, so a retrying layer never sleeps through its own deadline.
    pub fn clamp_sleep(&self, sleep: Duration) -> Duration {
        match self.remaining() {
            Some(rem) => sleep.min(rem),
            None => sleep,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_set());
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(d.check("idle").is_ok());
        assert_eq!(d.clamp_sleep(Duration::from_secs(9)), Duration::from_secs(9));
    }

    #[test]
    fn expired_deadline_fails_check_with_deadline_kind() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired());
        let err = d.check("GET /c/o").unwrap_err();
        assert_eq!(err.kind(), "deadline");
        assert!(!err.is_retryable(), "deadline errors must fail fast");
        assert!(err.to_string().contains("GET /c/o"));
    }

    #[test]
    fn future_deadline_passes_and_clamps() {
        let d = Deadline::within(Duration::from_secs(60));
        assert!(d.is_set());
        assert!(!d.expired());
        assert!(d.check("ok").is_ok());
        assert!(d.clamp_sleep(Duration::from_secs(3600)) <= Duration::from_secs(60));
        assert_eq!(d.clamp_sleep(Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn earliest_picks_the_tighter_budget() {
        let near = Deadline::within(Duration::from_millis(10));
        let far = Deadline::within(Duration::from_secs(60));
        assert_eq!(near.earliest(far), near);
        assert_eq!(far.earliest(near), near);
        assert_eq!(near.earliest(Deadline::none()), near);
        assert_eq!(Deadline::none().earliest(near), near);
        assert_eq!(Deadline::none().earliest(Deadline::none()), Deadline::none());
    }
}
