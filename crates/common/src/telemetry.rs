//! Process-wide telemetry: a named-metric registry plus request-scoped
//! tracing.
//!
//! The paper's evaluation is a set of throughput/latency claims measured
//! across the whole pushdown path (driver → proxy → storlet → connector).
//! This module is the substrate those measurements flow through:
//!
//! * **Counters** (`scoop_<layer>_<what>_total`) — monotonic event counts.
//!   [`ScopedCounter`] pairs a per-instance counter (exact values for unit
//!   tests and per-cluster accessors) with a process-wide mirror under a
//!   registry name, so one snapshot covers every instance.
//! * **Gauges** (`scoop_<layer>_<what>`) — instantaneous levels (e.g. active
//!   storlet invocations).
//! * **Histograms** (`scoop_<layer>_latency_us`) — fixed-boundary latency
//!   distributions ([`LATENCY_BUCKETS_US`], microseconds).
//! * **Traces** — a trace ID minted per query ([`new_trace_id`]), propagated
//!   via the `x-scoop-trace` header (`scoop_common::headers::TRACE`); each
//!   layer opens a [`span`] guard that records a timed [`SpanRecord`] on
//!   drop. [`trace_spans`] returns the spans of one trace; the store keeps
//!   the most recent [`TRACE_CAP`] traces.
//!
//! [`snapshot`] serializes the registry ([`Snapshot::to_text`] /
//! [`Snapshot::to_json`]); [`missing_data_path_metrics`] is the CI gate that
//! a smoke run registered every canonical data-path counter.
//!
//! Everything here is `std`-only (atomics, `Mutex`, `OnceLock`) so the
//! module stays Miri-clean and usable from every crate in the workspace.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Canonical registry names for the data-path metrics. Wiring sites use
/// these constants so [`DATA_PATH_METRICS`] can never drift from the code.
pub mod names {
    /// GET requests handled by object servers.
    pub const OBJSERVER_GETS: &str = "scoop_objserver_gets_total";
    /// PUT requests handled by object servers.
    pub const OBJSERVER_PUTS: &str = "scoop_objserver_puts_total";
    /// Payload bytes written into object servers.
    pub const OBJSERVER_BYTES_IN: &str = "scoop_objserver_bytes_in_total";
    /// Payload bytes served out of object servers.
    pub const OBJSERVER_BYTES_OUT: &str = "scoop_objserver_bytes_out_total";
    /// Replayed PUTs dropped by idempotency-token dedup.
    pub const OBJSERVER_DEDUPED_PUTS: &str = "scoop_objserver_deduped_puts_total";
    /// Requests accepted by proxies.
    pub const PROXY_REQUESTS: &str = "scoop_proxy_requests_total";
    /// Response-body bytes proxies returned to clients.
    pub const PROXY_BYTES_TO_CLIENTS: &str = "scoop_proxy_bytes_to_clients_total";
    /// Reads that failed over to another replica.
    pub const PROXY_REPLICA_FAILOVERS: &str = "scoop_proxy_replica_failovers_total";
    /// Hedge requests launched against a second replica.
    pub const PROXY_HEDGED_GETS: &str = "scoop_proxy_hedged_gets_total";
    /// Hedged reads won by the hedge rather than the first replica.
    pub const PROXY_HEDGE_WINS: &str = "scoop_proxy_hedge_wins_total";
    /// Replica reads short-circuited by an open circuit breaker.
    pub const HEALTH_BREAKER_SKIPS: &str = "scoop_health_breaker_skips_total";
    /// Storlet invocations completed.
    pub const STORLETS_INVOCATIONS: &str = "scoop_storlets_invocations_total";
    /// Bytes entering storlet pipelines.
    pub const STORLETS_BYTES_IN: &str = "scoop_storlets_bytes_in_total";
    /// Bytes leaving storlet pipelines.
    pub const STORLETS_BYTES_OUT: &str = "scoop_storlets_bytes_out_total";
    /// Pushdown GETs shed by storlet admission control.
    pub const STORLETS_ADMISSION_SHEDS: &str = "scoop_storlets_admission_sheds_total";
    /// Pushdown GETs served through a zone-map block-skipping plan.
    pub const STORLETS_SKIP_PLANS: &str = "scoop_storlets_skip_plans_total";
    /// Pushdown GETs that fell back to a full scan (stats absent, stale or
    /// undecodable).
    pub const STORLETS_PLAN_FALLBACKS: &str = "scoop_storlets_plan_fallbacks_total";
    /// Record blocks pruned by the planner (stats proved no record matches).
    pub const STORLETS_BLOCKS_PRUNED: &str = "scoop_storlets_blocks_pruned_total";
    /// Record blocks a planned pushdown GET actually read.
    pub const STORLETS_BLOCKS_SCANNED: &str = "scoop_storlets_blocks_scanned_total";
    /// Object bytes planned pushdown GETs proved unmatchable and never read.
    pub const STORLETS_BYTES_SKIPPED: &str = "scoop_storlets_bytes_skipped_total";
    /// Requests re-dispatched by the Swift client after retryable failures.
    pub const CLIENT_RETRIES: &str = "scoop_client_retries_total";
    /// Bytes the connector delivered across the storage→compute boundary.
    pub const CONNECTOR_BYTES_TRANSFERRED: &str = "scoop_connector_bytes_transferred_total";
    /// Mid-stream resumes (ranged-GET re-issues) by the connector.
    pub const CONNECTOR_STREAM_RESUMES: &str = "scoop_connector_stream_resumes_total";
    /// Pushdown GETs degraded to plain reads with client-side filtering.
    pub const CONNECTOR_PUSHDOWN_FALLBACKS: &str = "scoop_connector_pushdown_fallbacks_total";
    /// Object bytes the store skipped (never read) on the connector's
    /// behalf, as reported by `x-scoop-skipped-bytes` response headers.
    pub const CONNECTOR_BYTES_SKIPPED: &str = "scoop_connector_bytes_skipped_total";
    /// Storlet invocations currently executing (gauge).
    pub const STORLETS_ACTIVE: &str = "scoop_storlets_active_invocations";
    /// TCP connections currently open in client pools (gauge).
    ///
    /// The net-plane metrics below are *not* part of
    /// [`super::DATA_PATH_METRICS`]: an in-process (non-TCP) exercise of the
    /// data path legitimately never registers them.
    pub const NET_POOL_OPEN: &str = "scoop_net_pool_open_connections";
    /// Pooled TCP connections currently idle, awaiting reuse (gauge).
    pub const NET_POOL_IDLE: &str = "scoop_net_pool_idle_connections";
    /// Requests served over a reused (kept-alive) pooled connection.
    pub const NET_POOL_REUSES: &str = "scoop_net_pool_reuses_total";
    /// Fresh TCP connections dialed by client pools.
    pub const NET_POOL_DIALS: &str = "scoop_net_pool_dials_total";
    /// Pooled connections evicted (poisoned mid-stream or reaped as stale).
    pub const NET_POOL_EVICTIONS: &str = "scoop_net_pool_evictions_total";
    /// TCP connections accepted by net-plane servers.
    pub const NET_SERVER_CONNECTIONS: &str = "scoop_net_server_connections_total";
    /// Requests decoded and dispatched by net-plane servers.
    pub const NET_SERVER_REQUESTS: &str = "scoop_net_server_requests_total";
    /// Wire-level faults injected at the socket boundary (all classes).
    pub const NET_WIRE_FAULTS: &str = "scoop_net_wire_faults_total";
    /// Wire faults: connection reset mid-exchange.
    pub const NET_WIRE_FAULTS_RST: &str = "scoop_net_wire_faults_rst_total";
    /// Wire faults: partial write followed by a stall.
    pub const NET_WIRE_FAULTS_PARTIAL: &str = "scoop_net_wire_faults_partial_total";
    /// Wire faults: slowloris byte-trickle.
    pub const NET_WIRE_FAULTS_SLOWLORIS: &str = "scoop_net_wire_faults_slowloris_total";
    /// Wire faults: garbage bytes over the status line.
    pub const NET_WIRE_FAULTS_GARBAGE: &str = "scoop_net_wire_faults_garbage_total";
    /// Wire faults: write side closed early (half-close).
    pub const NET_WIRE_FAULTS_HALF_CLOSE: &str = "scoop_net_wire_faults_half_close_total";
    /// Time spent waiting for a pooled connection (idle pop or fresh dial),
    /// microseconds (histogram).
    pub const NET_POOL_CHECKOUT_WAIT_US: &str = "scoop_net_pool_checkout_wait_us";
    /// Pooled connections currently checked out serving a request (gauge).
    pub const NET_POOL_IN_FLIGHT: &str = "scoop_net_pool_in_flight_requests";
    /// Idle pooled connections reaped after outliving the idle timeout.
    pub const NET_POOL_IDLE_REAPS: &str = "scoop_net_pool_idle_reaps_total";
    /// Wide query events recorded into the slow-query ring.
    pub const QUERY_EVENTS: &str = "scoop_query_events_total";
    /// Wide query events that crossed the `SCOOP_SLOW_QUERY_MS` threshold.
    pub const QUERY_EVENTS_SLOW: &str = "scoop_query_events_slow_total";
}

/// Canonical span layer names — the *only* strings [`span`] may be called
/// with (scoop-lint invariant 6 denies hand-spelled literals at call sites).
/// Keeping the set closed means per-layer latency histograms and the wide
/// query events can never fragment across spelling variants, and the wire
/// codec can reject unknown layers instead of interning attacker-controlled
/// strings.
pub mod layers {
    /// Query session (driver-side SQL entry point).
    pub const SESSION: &str = "session";
    /// Task scheduler fan-out.
    pub const SCHEDULER: &str = "scheduler";
    /// Storage connector (compute ↔ object store boundary).
    pub const CONNECTOR: &str = "connector";
    /// Swift client request layer.
    pub const CLIENT: &str = "client";
    /// Proxy server routing/replication layer.
    pub const PROXY: &str = "proxy";
    /// Object server storage layer.
    pub const OBJSERVER: &str = "objserver";
    /// Storlet (pushdown computation) layer.
    pub const STORLET: &str = "storlet";

    /// Every canonical layer, client-side to storage-side.
    pub const ALL: &[&str] = &[SESSION, SCHEDULER, CONNECTOR, CLIENT, PROXY, OBJSERVER, STORLET];

    /// Layers recorded on the server side of the TCP data plane — the ones
    /// the net server drains and ships back in the response trailer.
    pub const SERVER_SIDE: &[&str] = &[PROXY, OBJSERVER, STORLET];

    /// Map a decoded wire string back onto its canonical `&'static str`,
    /// or `None` for anything outside the closed set.
    pub fn canonical(name: &str) -> Option<&'static str> {
        ALL.iter().copied().find(|l| *l == name)
    }
}

/// Every counter a full data-path exercise must register. The bench smoke
/// target fails CI if a snapshot taken after such an exercise is missing
/// any of these (see [`missing_data_path_metrics`]).
pub const DATA_PATH_METRICS: &[&str] = &[
    names::OBJSERVER_GETS,
    names::OBJSERVER_PUTS,
    names::OBJSERVER_BYTES_IN,
    names::OBJSERVER_BYTES_OUT,
    names::OBJSERVER_DEDUPED_PUTS,
    names::PROXY_REQUESTS,
    names::PROXY_BYTES_TO_CLIENTS,
    names::PROXY_REPLICA_FAILOVERS,
    names::PROXY_HEDGED_GETS,
    names::PROXY_HEDGE_WINS,
    names::HEALTH_BREAKER_SKIPS,
    names::STORLETS_INVOCATIONS,
    names::STORLETS_BYTES_IN,
    names::STORLETS_BYTES_OUT,
    names::STORLETS_ADMISSION_SHEDS,
    names::STORLETS_SKIP_PLANS,
    names::STORLETS_PLAN_FALLBACKS,
    names::STORLETS_BYTES_SKIPPED,
    names::CLIENT_RETRIES,
    names::CONNECTOR_BYTES_TRANSFERRED,
    names::CONNECTOR_STREAM_RESUMES,
    names::CONNECTOR_PUSHDOWN_FALLBACKS,
    names::CONNECTOR_BYTES_SKIPPED,
];

/// Histogram bucket upper bounds, in microseconds. Fixed across the
/// workspace so distributions from different runs are comparable; the final
/// implicit bucket is `+inf`.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// Most recent traces retained by the in-process span store.
pub const TRACE_CAP: usize = 512;

/// Longest [`SpanRecord::detail`] retained, bytes; longer details are
/// truncated at a char boundary when the span records. Bounds both the
/// trace store's memory and the wire size of a span trailer.
pub const MAX_SPAN_DETAIL: usize = 160;

/// Upper bound on one encoded span-trailer value, bytes ([`encode_spans`]
/// stops appending spans that would cross it). Kept comfortably below the
/// wire codec's trailer-line limit.
pub const MAX_ENCODED_SPANS: usize = 8 * 1024;

/// Most recent wide query events retained by the in-process ring; slow
/// events are evicted last.
pub const EVENT_RING_CAP: usize = 256;

struct HistogramCell {
    /// One slot per [`LATENCY_BUCKETS_US`] bound, plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
}

struct TraceStore {
    spans: BTreeMap<String, Vec<SpanRecord>>,
    /// Trace IDs from least- to most-recently *touched* (not just created):
    /// recording another span onto a live trace moves it to the back, so a
    /// burst of single-span traces evicts stale traces first and can never
    /// push out a multi-layer trace that is still accumulating mid-query.
    order: VecDeque<String>,
}

impl TraceStore {
    /// Register a span landing on `trace`: refresh its recency, evicting
    /// the least-recently-touched trace if the store is at capacity.
    fn touch(&mut self, trace: &str) {
        if self.spans.contains_key(trace) {
            if let Some(pos) = self.order.iter().position(|t| t == trace) {
                if let Some(id) = self.order.remove(pos) {
                    self.order.push_back(id);
                }
            }
            return;
        }
        if self.order.len() >= TRACE_CAP {
            if let Some(oldest) = self.order.pop_front() {
                self.spans.remove(&oldest);
            }
        }
        self.order.push_back(trace.to_string());
    }
}

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    traces: Mutex<TraceStore>,
    events: Mutex<VecDeque<QueryEvent>>,
    /// Process epoch span start offsets are reported against.
    epoch: Instant,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        traces: Mutex::new(TraceStore { spans: BTreeMap::new(), order: VecDeque::new() }),
        events: Mutex::new(VecDeque::new()),
        epoch: Instant::now(),
    })
}

/// Microseconds elapsed since the process telemetry epoch — the clock all
/// [`SpanRecord::start_us`] offsets are reported against. Client transports
/// capture this around an exchange to bound the skew-correction window for
/// remote spans.
pub fn now_us() -> u64 {
    Instant::now().saturating_duration_since(registry().epoch).as_micros() as u64
}

/// Telemetry must never take a panic down with it: a poisoned registry lock
/// (some unrelated thread panicked mid-update) is still structurally sound
/// for counters and maps, so recover the guard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonic, process-wide counter registered under a name.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// The shared cell, for stream wrappers that count via `Arc<AtomicU64>`.
    pub fn cell(&self) -> Arc<AtomicU64> {
        self.cell.clone()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// Get-or-register the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = lock(&registry().counters);
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)))
        .clone();
    Counter { cell }
}

/// An instantaneous level registered under a name.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Increase the level by `n`.
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease the level by `n`.
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Set the level.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// Get-or-register the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut map = lock(&registry().gauges);
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicI64::new(0)))
        .clone();
    Gauge { cell }
}

/// A fixed-bucket latency histogram registered under a name.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Record one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|b| us <= *b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        if let Some(b) = self.cell.buckets.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Histogram").field(&self.count()).finish()
    }
}

/// Get-or-register the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut map = lock(&registry().histograms);
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| {
            Arc::new(HistogramCell {
                buckets: (0..LATENCY_BUCKETS_US.len().saturating_add(1))
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                count: AtomicU64::new(0),
                sum_us: AtomicU64::new(0),
            })
        })
        .clone();
    Histogram { cell }
}

/// A per-instance counter mirrored into the process-wide registry: `get()`
/// reads the exact local value (per server / per connector accessors keep
/// their test-asserted semantics) while every `add` also feeds the named
/// global metric.
pub struct ScopedCounter {
    local: AtomicU64,
    global: Counter,
}

impl ScopedCounter {
    /// A fresh local counter mirrored into the global metric `name`.
    pub fn new(name: &str) -> ScopedCounter {
        ScopedCounter { local: AtomicU64::new(0), global: counter(name) }
    }

    /// Add `n` locally and globally.
    pub fn add(&self, n: u64) {
        self.local.fetch_add(n, Ordering::Relaxed);
        self.global.add(n);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The local (per-instance) value.
    pub fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ScopedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ScopedCounter").field(&self.get()).finish()
    }
}

/// Mint a process-unique trace ID (stamped on requests as the
/// `x-scoop-trace` header by the client layer).
pub fn new_trace_id() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    format!("t{:016x}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// One recorded span of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Layer that recorded the span — one of [`layers::ALL`].
    pub layer: &'static str,
    /// Free-form context (object name, storlet list, task count, ...),
    /// truncated to [`MAX_SPAN_DETAIL`] bytes.
    pub detail: String,
    /// Start offset from the process telemetry epoch, microseconds. For
    /// remote spans this is the offset after skew correction (see
    /// [`merge_remote_spans`]).
    pub start_us: u64,
    /// Span duration, microseconds.
    pub duration_us: u64,
    /// True when the span was recorded on the far side of the TCP data
    /// plane and merged in from a response trailer.
    pub remote: bool,
}

/// Truncate `s` to at most [`MAX_SPAN_DETAIL`] bytes on a char boundary.
fn bound_detail(mut s: String) -> String {
    if s.len() <= MAX_SPAN_DETAIL {
        return s;
    }
    let mut cut = MAX_SPAN_DETAIL;
    while cut > 0 && !s.is_char_boundary(cut) {
        cut -= 1;
    }
    s.truncate(cut);
    s
}

/// A live span: records a [`SpanRecord`] (when a trace ID is present) and a
/// `scoop_<layer>_latency_us` histogram observation when dropped.
#[must_use = "a span measures until dropped; bind it to a guard variable"]
pub struct Span {
    trace: Option<String>,
    layer: &'static str,
    detail: String,
    started: Instant,
}

/// Open a span for `layer`. `trace` is the request's `x-scoop-trace` value
/// when one was propagated; without it the span still feeds the layer's
/// latency histogram but records nothing in the trace store.
pub fn span(trace: Option<&str>, layer: &'static str, detail: impl Into<String>) -> Span {
    Span { trace: trace.map(str::to_string), layer, detail: detail.into(), started: Instant::now() }
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration_us = self.started.elapsed().as_micros() as u64;
        histogram(&format!("scoop_{}_latency_us", self.layer)).observe_us(duration_us);
        let Some(trace) = self.trace.take() else { return };
        let reg = registry();
        let start_us = self.started.saturating_duration_since(reg.epoch).as_micros() as u64;
        let record = SpanRecord {
            layer: self.layer,
            detail: bound_detail(std::mem::take(&mut self.detail)),
            start_us,
            duration_us,
            remote: false,
        };
        let mut store = lock(&reg.traces);
        store.touch(&trace);
        store.spans.entry(trace).or_default().push(record);
    }
}

/// The spans recorded for `trace`, in completion order (a caller's span
/// drops after its callees', so outermost layers appear last). Remote spans
/// appear after the exchange that carried them back.
pub fn trace_spans(trace: &str) -> Vec<SpanRecord> {
    lock(&registry().traces).spans.get(trace).cloned().unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Wire-spanning traces: the net server drains its server-side spans for a
// request's trace and ships them in an `x-scoop-server-spans` response
// trailer; the client transport decodes and merges them back, tagged remote.
// ---------------------------------------------------------------------------

/// Remove and return the locally-recorded *server-side* spans of `trace`
/// ([`layers::SERVER_SIDE`], `remote == false`). Called by the net server
/// just before it writes a response's trailer: the drained spans travel to
/// the client instead of lingering (and double-counting, when client and
/// server share one process) in the server's store. Spans a concurrent
/// exchange of the same trace recorded are drained too — they merge back
/// into the same trace on the client, so nothing is lost.
pub fn take_server_spans(trace: &str) -> Vec<SpanRecord> {
    let mut store = lock(&registry().traces);
    let Some(spans) = store.spans.get_mut(trace) else { return Vec::new() };
    let mut taken = Vec::new();
    let mut kept = Vec::with_capacity(spans.len());
    for s in spans.drain(..) {
        if !s.remote && layers::SERVER_SIDE.contains(&s.layer) {
            taken.push(s);
        } else {
            kept.push(s);
        }
    }
    *spans = kept;
    taken
}

/// Serialize spans for the `x-scoop-server-spans` trailer. One span per
/// `;`-separated segment, fields `~`-separated: `layer~start~duration~detail`
/// with the detail percent-escaped so the value stays a single CTL-free
/// header line. Spans that would push the value past [`MAX_ENCODED_SPANS`]
/// are dropped (bounded trailers beat complete ones on a data plane).
pub fn encode_spans(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let mut seg = String::with_capacity(s.detail.len().saturating_add(24));
        seg.push_str(s.layer);
        seg.push('~');
        seg.push_str(&s.start_us.to_string());
        seg.push('~');
        seg.push_str(&s.duration_us.to_string());
        seg.push('~');
        for &b in s.detail.as_bytes() {
            match b {
                b'%' | b'~' | b';' => seg.push_str(&format!("%{b:02x}")),
                0x20..=0x7e => seg.push(b as char),
                _ => seg.push_str(&format!("%{b:02x}")),
            }
        }
        let sep = usize::from(!out.is_empty());
        if out.len().saturating_add(sep).saturating_add(seg.len()) > MAX_ENCODED_SPANS {
            break;
        }
        if sep == 1 {
            out.push(';');
        }
        out.push_str(&seg);
    }
    out
}

/// Decode an `x-scoop-server-spans` trailer value back into span records
/// (`remote` false — [`merge_remote_spans`] tags them). Rejects unknown
/// layers (the layer set is closed), malformed numbers and broken escapes;
/// for any input that decodes, encode→decode→encode is byte-identical.
pub fn decode_spans(value: &str) -> Result<Vec<SpanRecord>, String> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for seg in value.split(';') {
        let mut parts = seg.splitn(4, '~');
        let (layer, start, dur, detail) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(l), Some(s), Some(d), Some(t)) => (l, s, d, t),
                _ => return Err(format!("span segment has fewer than 4 fields: {seg:?}")),
            };
        let layer = layers::canonical(layer)
            .ok_or_else(|| format!("unknown span layer {layer:?}"))?;
        let start_us: u64 =
            start.parse().map_err(|_| format!("bad span start {start:?}"))?;
        let duration_us: u64 = dur.parse().map_err(|_| format!("bad span duration {dur:?}"))?;
        let mut decoded = Vec::with_capacity(detail.len());
        let bytes = detail.as_bytes();
        let mut i = 0;
        while let Some(&b) = bytes.get(i) {
            match b {
                b'%' => {
                    let hex = bytes
                        .get(i.saturating_add(1)..i.saturating_add(3))
                        .and_then(|h| std::str::from_utf8(h).ok())
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                        .ok_or_else(|| format!("broken escape in span detail {detail:?}"))?;
                    decoded.push(hex);
                    i = i.saturating_add(3);
                }
                b @ 0x20..=0x7e => {
                    decoded.push(b);
                    i = i.saturating_add(1);
                }
                b => return Err(format!("raw control byte {b:#04x} in span detail")),
            }
        }
        let detail = String::from_utf8(decoded)
            .map_err(|_| "span detail is not UTF-8".to_string())?;
        out.push(SpanRecord {
            layer,
            detail: bound_detail(detail),
            start_us,
            duration_us,
            remote: false,
        });
    }
    Ok(out)
}

/// Merge spans shipped back over the wire into `trace`'s local store,
/// tagged `remote`. Clock-skew tolerance: the remote `start_us` offsets are
/// against the *server's* epoch; if the whole batch already falls inside
/// the client's observation window `[window_start_us, window_end_us]` (the
/// single-process / shared-epoch case) it is trusted as-is, otherwise every
/// span is shifted uniformly so the earliest one lands at the window start —
/// relative timing within the batch is preserved and offsets stay monotone
/// with respect to the exchange that carried them.
pub fn merge_remote_spans(
    trace: &str,
    spans: Vec<SpanRecord>,
    window_start_us: u64,
    window_end_us: u64,
) {
    if spans.is_empty() {
        return;
    }
    let min_start = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    let max_end = spans
        .iter()
        .map(|s| s.start_us.saturating_add(s.duration_us))
        .max()
        .unwrap_or(0);
    let in_window = min_start >= window_start_us && max_end <= window_end_us;
    let mut store = lock(&registry().traces);
    store.touch(trace);
    let slot = store.spans.entry(trace.to_string()).or_default();
    for mut s in spans {
        if !in_window {
            // Uniform shift: earliest remote span lands at window start.
            s.start_us = window_start_us.saturating_add(s.start_us.saturating_sub(min_start));
        }
        s.remote = true;
        s.detail = bound_detail(s.detail);
        slot.push(s);
    }
}

/// Render one trace as JSON (the `GET /trace/{id}` body).
pub fn trace_to_json(trace: &str) -> String {
    let spans = trace_spans(trace);
    let mut out = format!("{{\"trace\":{},\"spans\":[", json_string(trace));
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"layer\":{},\"detail\":{},\"start_us\":{},\"duration_us\":{},\"remote\":{}}}",
            json_string(s.layer),
            json_string(&s.detail),
            s.start_us,
            s.duration_us,
            s.remote
        ));
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string encoder for telemetry values (details, trace IDs).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len().saturating_add(2));
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Wide query events: one bounded structured record per query, ringed.
// ---------------------------------------------------------------------------

/// One wide event describing a whole query — the slow-query log record.
#[derive(Debug, Clone)]
pub struct QueryEvent {
    /// The query's trace ID.
    pub trace: String,
    /// Chosen execution path (`pushdown`, `pushdown-fallback`, `vanilla`,
    /// `auto`...).
    pub path: String,
    /// End-to-end wall time, microseconds.
    pub total_us: u64,
    /// Bytes moved across the storage→compute boundary.
    pub bytes: u64,
    /// Rows delivered to compute.
    pub rows: u64,
    /// Task-level + client-level retries observed during the query.
    pub retries: u64,
    /// Hedged replica GETs launched during the query.
    pub hedges: u64,
    /// Degradations (pushdown fallbacks) observed during the query.
    pub degradations: u64,
    /// Per-layer span durations: `(layer, summed duration_us)`, in
    /// [`layers::ALL`] order, layers with no spans omitted.
    pub layer_us: Vec<(&'static str, u64)>,
    /// True when `total_us` crossed the `SCOOP_SLOW_QUERY_MS` threshold.
    pub slow: bool,
}

/// The slow-query threshold, milliseconds (`SCOOP_SLOW_QUERY_MS`, default
/// 250). Queries at or above it are flagged slow and survive ring eviction
/// longest.
pub fn slow_query_threshold_ms() -> u64 {
    std::env::var("SCOOP_SLOW_QUERY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250)
}

/// Record one wide query event into the ring. Every query is recorded (the
/// ring is bounded, so always-on costs nothing); events at or above the
/// slow threshold are flagged and evicted only when no fast event remains
/// to evict first — a burst of fast queries cannot wash out the slow ones
/// the log exists to explain.
pub fn record_query_event(mut ev: QueryEvent) {
    ev.slow = ev.total_us >= slow_query_threshold_ms().saturating_mul(1_000);
    counter(names::QUERY_EVENTS).inc();
    if ev.slow {
        counter(names::QUERY_EVENTS_SLOW).inc();
    }
    let mut ring = lock(&registry().events);
    if ring.len() >= EVENT_RING_CAP {
        if let Some(pos) = ring.iter().position(|e| !e.slow) {
            ring.remove(pos);
        } else {
            ring.pop_front();
        }
    }
    ring.push_back(ev);
}

/// The ring's current contents, oldest first.
pub fn query_events() -> Vec<QueryEvent> {
    lock(&registry().events).iter().cloned().collect()
}

/// Render the event ring as JSON (the `GET /events` body).
pub fn events_to_json(events: &[QueryEvent]) -> String {
    let mut out = String::from("{\"events\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"trace\":{},\"path\":{},\"total_us\":{},\"bytes\":{},\"rows\":{},\
             \"retries\":{},\"hedges\":{},\"degradations\":{},\"slow\":{},\"layer_us\":{{",
            json_string(&e.trace),
            json_string(&e.path),
            e.total_us,
            e.bytes,
            e.rows,
            e.retries,
            e.hedges,
            e.degradations,
            e.slow
        ));
        for (j, (layer, us)) in e.layer_us.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{us}", json_string(layer)));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// One-line-per-event text rendering (the repro-run-end dump).
pub fn events_to_text(events: &[QueryEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let layers: Vec<String> =
            e.layer_us.iter().map(|(l, us)| format!("{l}={us}us")).collect();
        out.push_str(&format!(
            "{} {}{} total={}us bytes={} rows={} retries={} hedges={} degradations={} [{}]\n",
            e.trace,
            e.path,
            if e.slow { " SLOW" } else { "" },
            e.total_us,
            e.bytes,
            e.rows,
            e.retries,
            e.hedges,
            e.degradations,
            layers.join(" ")
        ));
    }
    out
}

/// One histogram in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// `(upper_bound_us, observations)` per bucket; the overflow bucket
    /// reports `u64::MAX` as its bound.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, microseconds.
    pub sum_us: u64,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)`, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// The value of the counter `name`, if registered.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The level of the gauge `name`, if registered.
    pub fn get_gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Plain-text rendering (one metric per line; histogram buckets
    /// indented under their metric).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# scoop telemetry snapshot\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge {name} {v}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "histogram {} count={} sum_us={}\n",
                h.name, h.count, h.sum_us
            ));
            for (bound, n) in &h.buckets {
                if *bound == u64::MAX {
                    out.push_str(&format!("  le +inf {n}\n"));
                } else {
                    out.push_str(&format!("  le {bound} {n}\n"));
                }
            }
        }
        out
    }

    /// JSON rendering (metric names are `[a-z0-9_]`, so no escaping is
    /// needed).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for h in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum_us\":{},\"buckets\":[",
                h.name, h.count, h.sum_us
            ));
            let mut first_bucket = true;
            for (bound, n) in &h.buckets {
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                out.push_str(&format!("[{bound},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition (the `GET /metrics` body): `# TYPE`
    /// comments, cumulative `_bucket{le="..."}` series per histogram plus
    /// `_sum`/`_count`. Metric names are already `[a-z0-9_]`, so no label
    /// escaping is needed.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!("# TYPE {} histogram\n", h.name));
            let mut cumulative = 0u64;
            for (bound, n) in &h.buckets {
                cumulative = cumulative.saturating_add(*n);
                if *bound == u64::MAX {
                    out.push_str(&format!(
                        "{}_bucket{{le=\"+Inf\"}} {cumulative}\n",
                        h.name
                    ));
                } else {
                    out.push_str(&format!(
                        "{}_bucket{{le=\"{bound}\"}} {cumulative}\n",
                        h.name
                    ));
                }
            }
            out.push_str(&format!("{}_sum {}\n", h.name, h.sum_us));
            out.push_str(&format!("{}_count {}\n", h.name, h.count));
        }
        out
    }
}

/// Copy every registered metric out of the registry.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters = lock(&reg.counters)
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let gauges = lock(&reg.gauges)
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let histograms = lock(&reg.histograms)
        .iter()
        .map(|(k, cell)| HistogramSnapshot {
            name: k.clone(),
            buckets: LATENCY_BUCKETS_US
                .iter()
                .copied()
                .chain(std::iter::once(u64::MAX))
                .zip(cell.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
                .collect(),
            count: cell.count.load(Ordering::Relaxed),
            sum_us: cell.sum_us.load(Ordering::Relaxed),
        })
        .collect();
    Snapshot { counters, gauges, histograms }
}

/// The [`DATA_PATH_METRICS`] counters absent from `s` — nonempty means a
/// data-path exercise failed to construct (and hence register) some layer's
/// instrumentation.
pub fn missing_data_path_metrics(s: &Snapshot) -> Vec<&'static str> {
    DATA_PATH_METRICS
        .iter()
        .copied()
        .filter(|m| s.get_counter(m).is_none())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_accumulate() {
        let c = counter("test_telemetry_counter_total");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Same name resolves to the same cell.
        assert_eq!(counter("test_telemetry_counter_total").get(), before + 5);
        assert_eq!(
            snapshot().get_counter("test_telemetry_counter_total"),
            Some(before + 5)
        );
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = gauge("test_telemetry_gauge");
        g.set(0);
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        assert_eq!(snapshot().get_gauge("test_telemetry_gauge"), Some(2));
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = histogram("test_telemetry_hist_us");
        h.observe_us(50); // first bucket (<= 100)
        h.observe_us(2_000_000); // overflow
        assert_eq!(h.count(), 2);
        let snap = snapshot();
        let hs = snap
            .histograms
            .iter()
            .find(|h| h.name == "test_telemetry_hist_us")
            .unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.buckets.len(), LATENCY_BUCKETS_US.len() + 1);
        assert_eq!(hs.buckets[0], (100, 1));
        assert_eq!(*hs.buckets.last().unwrap(), (u64::MAX, 1));
        assert!(hs.sum_us >= 2_000_050);
    }

    #[test]
    fn scoped_counter_is_exact_locally_and_mirrored_globally() {
        let global_before = counter("test_telemetry_scoped_total").get();
        let a = ScopedCounter::new("test_telemetry_scoped_total");
        let b = ScopedCounter::new("test_telemetry_scoped_total");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
        assert_eq!(counter("test_telemetry_scoped_total").get(), global_before + 3);
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, b);
        assert!(a.starts_with('t'));
    }

    #[test]
    fn spans_record_into_their_trace() {
        let trace = new_trace_id();
        {
            let _outer = span(Some(&trace), "proxy", "GET a/c/o");
            let _inner = span(Some(&trace), "objserver", "GET");
        }
        let spans = trace_spans(&trace);
        assert_eq!(spans.len(), 2);
        // Inner drops first.
        assert_eq!(spans[0].layer, "objserver");
        assert_eq!(spans[1].layer, "proxy");
        assert_eq!(spans[1].detail, "GET a/c/o");
        // Unrelated traces see nothing.
        assert!(trace_spans("t-no-such-trace").is_empty());
    }

    #[test]
    fn span_without_trace_only_feeds_histograms() {
        let h = histogram("scoop_testlayer_latency_us");
        let before = h.count();
        drop(span(None, "testlayer", ""));
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn trace_store_is_bounded() {
        // Unique prefix so the traces minted here are identifiable.
        for i in 0..(TRACE_CAP + 8) {
            let t = format!("bounded-test-{i}");
            drop(span(Some(&t), "session", ""));
        }
        assert!(trace_spans(&format!("bounded-test-{}", TRACE_CAP + 7)).len() == 1);
        // The earliest traces were evicted to keep the store bounded.
        assert!(trace_spans("bounded-test-0").is_empty());
    }

    #[test]
    fn snapshot_serializes_text_and_json() {
        counter("test_telemetry_render_total").add(7);
        gauge("test_telemetry_render_gauge").set(-2);
        histogram("test_telemetry_render_us").observe_us(123);
        let snap = snapshot();
        let text = snap.to_text();
        assert!(text.contains("counter test_telemetry_render_total"));
        assert!(text.contains("gauge test_telemetry_render_gauge -2"));
        assert!(text.contains("histogram test_telemetry_render_us"));
        assert!(text.contains("le +inf"));
        let json = snap.to_json();
        assert!(json.contains("\"test_telemetry_render_total\":"));
        assert!(json.contains("\"counters\":{"));
        assert!(json.contains("\"histograms\":{"));
        // Sanity: balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn span_detail_is_bounded() {
        let trace = new_trace_id();
        drop(span(Some(&trace), "session", "x".repeat(MAX_SPAN_DETAIL * 4)));
        let spans = trace_spans(&trace);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].detail.len(), MAX_SPAN_DETAIL);
        // Truncation lands on a char boundary even for multibyte input.
        let trace = new_trace_id();
        drop(span(Some(&trace), "session", "é".repeat(MAX_SPAN_DETAIL)));
        let d = &trace_spans(&trace)[0].detail;
        assert!(d.len() <= MAX_SPAN_DETAIL);
        assert!(d.chars().all(|c| c == 'é'));
    }

    #[test]
    fn live_trace_survives_a_burst_of_single_span_traces() {
        // A query's trace receives its first span, then TRACE_CAP unrelated
        // single-span traces land before its next layer reports. With FIFO
        // eviction the in-progress trace would be gone; recency-touch
        // eviction keeps it alive as long as it keeps accumulating.
        let live = format!("lru-live-{}", new_trace_id());
        drop(span(Some(&live), "session", "first layer"));
        for i in 0..TRACE_CAP {
            if i == TRACE_CAP / 2 {
                // Mid-burst, the query's next layer reports: refreshes
                // recency.
                drop(span(Some(&live), "scheduler", "second layer"));
            }
            drop(span(Some(&format!("lru-burst-{i}")), "session", ""));
        }
        let spans = trace_spans(&live);
        assert_eq!(
            spans.len(),
            2,
            "in-progress trace was evicted mid-query by a burst of unrelated traces"
        );
    }

    #[test]
    fn span_codec_roundtrips_byte_identically() {
        let spans = vec![
            SpanRecord {
                layer: layers::PROXY,
                detail: "GET a/c/o~1;2%3 \"quoted\"".into(),
                start_us: 12,
                duration_us: 345,
                remote: false,
            },
            SpanRecord {
                layer: layers::STORLET,
                detail: String::new(),
                start_us: 0,
                duration_us: u64::MAX,
                remote: false,
            },
        ];
        let wire = encode_spans(&spans);
        assert!(!wire.contains('\r') && !wire.contains('\n'));
        let decoded = decode_spans(&wire).unwrap();
        assert_eq!(decoded, spans);
        assert_eq!(encode_spans(&decoded), wire);
        // Empty input encodes to the empty value and back.
        assert_eq!(decode_spans("").unwrap(), Vec::new());
    }

    #[test]
    fn span_codec_rejects_foreign_layers_and_broken_escapes() {
        assert!(decode_spans("gateway~1~2~x").is_err(), "unknown layer accepted");
        assert!(decode_spans("proxy~nope~2~x").is_err(), "bad number accepted");
        assert!(decode_spans("proxy~1~2~%zz").is_err(), "broken escape accepted");
        assert!(decode_spans("proxy~1").is_err(), "short segment accepted");
    }

    #[test]
    fn encoded_spans_stay_bounded() {
        let many: Vec<SpanRecord> = (0..2_000)
            .map(|i| SpanRecord {
                layer: layers::OBJSERVER,
                detail: format!("object-{i}-{}", "p".repeat(64)),
                start_us: i,
                duration_us: 1,
                remote: false,
            })
            .collect();
        let wire = encode_spans(&many);
        assert!(wire.len() <= MAX_ENCODED_SPANS);
        // What survived still decodes.
        assert!(!decode_spans(&wire).unwrap().is_empty());
    }

    #[test]
    fn take_server_spans_drains_only_local_server_layers() {
        let trace = new_trace_id();
        {
            let _c = span(Some(&trace), "client", "");
            let _p = span(Some(&trace), "proxy", "");
            let _o = span(Some(&trace), "objserver", "");
        }
        merge_remote_spans(
            &trace,
            vec![SpanRecord {
                layer: layers::STORLET,
                detail: "already merged".into(),
                start_us: 1,
                duration_us: 1,
                remote: false,
            }],
            0,
            u64::MAX,
        );
        let taken = take_server_spans(&trace);
        let layers_taken: Vec<_> = taken.iter().map(|s| s.layer).collect();
        assert_eq!(layers_taken, vec!["objserver", "proxy"], "drain order follows record order");
        // The client span and the previously-merged remote span stay.
        let left = trace_spans(&trace);
        assert_eq!(left.len(), 2);
        assert!(left.iter().any(|s| s.layer == "client" && !s.remote));
        assert!(left.iter().any(|s| s.layer == "storlet" && s.remote));
        // A second drain finds nothing.
        assert!(take_server_spans(&trace).is_empty());
    }

    #[test]
    fn merged_remote_spans_are_skew_shifted_into_the_window() {
        let trace = new_trace_id();
        // Remote epoch wildly ahead of the client window: shift preserves
        // relative timing and pins the batch at window start.
        let remote = vec![
            SpanRecord {
                layer: layers::OBJSERVER,
                detail: String::new(),
                start_us: 9_000_000,
                duration_us: 10,
                remote: false,
            },
            SpanRecord {
                layer: layers::PROXY,
                detail: String::new(),
                start_us: 9_000_100,
                duration_us: 20,
                remote: false,
            },
        ];
        merge_remote_spans(&trace, remote, 1_000, 2_000);
        let spans = trace_spans(&trace);
        assert_eq!(spans[0].start_us, 1_000);
        assert_eq!(spans[1].start_us, 1_100);
        assert!(spans.iter().all(|s| s.remote));

        // A batch already inside the window is trusted untouched.
        let trace = new_trace_id();
        merge_remote_spans(
            &trace,
            vec![SpanRecord {
                layer: layers::PROXY,
                detail: String::new(),
                start_us: 1_500,
                duration_us: 100,
                remote: false,
            }],
            1_000,
            2_000,
        );
        assert_eq!(trace_spans(&trace)[0].start_us, 1_500);
    }

    #[test]
    fn event_ring_is_bounded_and_keeps_slow_events() {
        fn ev(trace: String, total_us: u64) -> QueryEvent {
            QueryEvent {
                trace,
                path: "pushdown".into(),
                total_us,
                bytes: 1,
                rows: 1,
                retries: 0,
                hedges: 0,
                degradations: 0,
                layer_us: vec![(layers::SESSION, total_us)],
                slow: false,
            }
        }
        // One slow event (way past any sane threshold), then floods of
        // fast ones: the slow event must survive the eviction churn.
        record_query_event(ev("ring-slow".into(), u64::MAX / 2));
        for i in 0..(EVENT_RING_CAP * 2) {
            record_query_event(ev(format!("ring-fast-{i}"), 0));
        }
        let events = query_events();
        assert!(events.len() <= EVENT_RING_CAP);
        let slow = events.iter().find(|e| e.trace == "ring-slow").expect("slow event evicted");
        assert!(slow.slow);
        let json = events_to_json(&events);
        assert!(json.starts_with("{\"events\":["));
        assert!(json.contains("\"trace\":\"ring-slow\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(events_to_text(&events).contains("ring-slow pushdown SLOW"));
    }

    #[test]
    fn trace_json_escapes_details() {
        let trace = new_trace_id();
        drop(span(Some(&trace), "session", "say \"hi\"\\\n"));
        let json = trace_to_json(&trace);
        assert!(json.contains("\"layer\":\"session\""));
        assert!(json.contains("say \\\"hi\\\"\\\\\\u000a"));
        assert!(json.contains("\"remote\":false"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        counter("test_telemetry_prom_total").add(3);
        gauge("test_telemetry_prom_gauge").set(-1);
        let h = histogram("test_telemetry_prom_us");
        h.observe_us(50);
        h.observe_us(60);
        h.observe_us(2_000_000);
        let text = snapshot().to_prometheus();
        assert!(text.contains("# TYPE test_telemetry_prom_total counter"));
        assert!(text.contains("test_telemetry_prom_total 3"));
        assert!(text.contains("# TYPE test_telemetry_prom_gauge gauge"));
        assert!(text.contains("test_telemetry_prom_gauge -1"));
        // Buckets accumulate: the 100us bucket holds 2, +Inf holds all 3.
        assert!(text.contains("test_telemetry_prom_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("test_telemetry_prom_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("test_telemetry_prom_us_count 3"));
    }

    #[test]
    fn layer_names_are_canonical() {
        assert_eq!(layers::ALL.len(), 7);
        for l in layers::ALL {
            assert_eq!(layers::canonical(l), Some(*l));
        }
        for l in layers::SERVER_SIDE {
            assert!(layers::ALL.contains(l));
        }
        assert_eq!(layers::canonical("gateway"), None);
    }

    #[test]
    fn missing_data_path_metrics_reports_unregistered_names() {
        let missing = missing_data_path_metrics(&Snapshot::default());
        assert_eq!(missing.len(), DATA_PATH_METRICS.len());
        let snap = Snapshot {
            counters: DATA_PATH_METRICS.iter().map(|n| (n.to_string(), 0)).collect(),
            ..Snapshot::default()
        };
        assert!(missing_data_path_metrics(&snap).is_empty());
    }
}
