//! Process-wide telemetry: a named-metric registry plus request-scoped
//! tracing.
//!
//! The paper's evaluation is a set of throughput/latency claims measured
//! across the whole pushdown path (driver → proxy → storlet → connector).
//! This module is the substrate those measurements flow through:
//!
//! * **Counters** (`scoop_<layer>_<what>_total`) — monotonic event counts.
//!   [`ScopedCounter`] pairs a per-instance counter (exact values for unit
//!   tests and per-cluster accessors) with a process-wide mirror under a
//!   registry name, so one snapshot covers every instance.
//! * **Gauges** (`scoop_<layer>_<what>`) — instantaneous levels (e.g. active
//!   storlet invocations).
//! * **Histograms** (`scoop_<layer>_latency_us`) — fixed-boundary latency
//!   distributions ([`LATENCY_BUCKETS_US`], microseconds).
//! * **Traces** — a trace ID minted per query ([`new_trace_id`]), propagated
//!   via the `x-scoop-trace` header (`scoop_common::headers::TRACE`); each
//!   layer opens a [`span`] guard that records a timed [`SpanRecord`] on
//!   drop. [`trace_spans`] returns the spans of one trace; the store keeps
//!   the most recent [`TRACE_CAP`] traces.
//!
//! [`snapshot`] serializes the registry ([`Snapshot::to_text`] /
//! [`Snapshot::to_json`]); [`missing_data_path_metrics`] is the CI gate that
//! a smoke run registered every canonical data-path counter.
//!
//! Everything here is `std`-only (atomics, `Mutex`, `OnceLock`) so the
//! module stays Miri-clean and usable from every crate in the workspace.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Canonical registry names for the data-path metrics. Wiring sites use
/// these constants so [`DATA_PATH_METRICS`] can never drift from the code.
pub mod names {
    /// GET requests handled by object servers.
    pub const OBJSERVER_GETS: &str = "scoop_objserver_gets_total";
    /// PUT requests handled by object servers.
    pub const OBJSERVER_PUTS: &str = "scoop_objserver_puts_total";
    /// Payload bytes written into object servers.
    pub const OBJSERVER_BYTES_IN: &str = "scoop_objserver_bytes_in_total";
    /// Payload bytes served out of object servers.
    pub const OBJSERVER_BYTES_OUT: &str = "scoop_objserver_bytes_out_total";
    /// Replayed PUTs dropped by idempotency-token dedup.
    pub const OBJSERVER_DEDUPED_PUTS: &str = "scoop_objserver_deduped_puts_total";
    /// Requests accepted by proxies.
    pub const PROXY_REQUESTS: &str = "scoop_proxy_requests_total";
    /// Response-body bytes proxies returned to clients.
    pub const PROXY_BYTES_TO_CLIENTS: &str = "scoop_proxy_bytes_to_clients_total";
    /// Reads that failed over to another replica.
    pub const PROXY_REPLICA_FAILOVERS: &str = "scoop_proxy_replica_failovers_total";
    /// Hedge requests launched against a second replica.
    pub const PROXY_HEDGED_GETS: &str = "scoop_proxy_hedged_gets_total";
    /// Hedged reads won by the hedge rather than the first replica.
    pub const PROXY_HEDGE_WINS: &str = "scoop_proxy_hedge_wins_total";
    /// Replica reads short-circuited by an open circuit breaker.
    pub const HEALTH_BREAKER_SKIPS: &str = "scoop_health_breaker_skips_total";
    /// Storlet invocations completed.
    pub const STORLETS_INVOCATIONS: &str = "scoop_storlets_invocations_total";
    /// Bytes entering storlet pipelines.
    pub const STORLETS_BYTES_IN: &str = "scoop_storlets_bytes_in_total";
    /// Bytes leaving storlet pipelines.
    pub const STORLETS_BYTES_OUT: &str = "scoop_storlets_bytes_out_total";
    /// Pushdown GETs shed by storlet admission control.
    pub const STORLETS_ADMISSION_SHEDS: &str = "scoop_storlets_admission_sheds_total";
    /// Requests re-dispatched by the Swift client after retryable failures.
    pub const CLIENT_RETRIES: &str = "scoop_client_retries_total";
    /// Bytes the connector delivered across the storage→compute boundary.
    pub const CONNECTOR_BYTES_TRANSFERRED: &str = "scoop_connector_bytes_transferred_total";
    /// Mid-stream resumes (ranged-GET re-issues) by the connector.
    pub const CONNECTOR_STREAM_RESUMES: &str = "scoop_connector_stream_resumes_total";
    /// Pushdown GETs degraded to plain reads with client-side filtering.
    pub const CONNECTOR_PUSHDOWN_FALLBACKS: &str = "scoop_connector_pushdown_fallbacks_total";
    /// Storlet invocations currently executing (gauge).
    pub const STORLETS_ACTIVE: &str = "scoop_storlets_active_invocations";
    /// TCP connections currently open in client pools (gauge).
    ///
    /// The net-plane metrics below are *not* part of
    /// [`super::DATA_PATH_METRICS`]: an in-process (non-TCP) exercise of the
    /// data path legitimately never registers them.
    pub const NET_POOL_OPEN: &str = "scoop_net_pool_open_connections";
    /// Pooled TCP connections currently idle, awaiting reuse (gauge).
    pub const NET_POOL_IDLE: &str = "scoop_net_pool_idle_connections";
    /// Requests served over a reused (kept-alive) pooled connection.
    pub const NET_POOL_REUSES: &str = "scoop_net_pool_reuses_total";
    /// Fresh TCP connections dialed by client pools.
    pub const NET_POOL_DIALS: &str = "scoop_net_pool_dials_total";
    /// Pooled connections evicted (poisoned mid-stream or reaped as stale).
    pub const NET_POOL_EVICTIONS: &str = "scoop_net_pool_evictions_total";
    /// TCP connections accepted by net-plane servers.
    pub const NET_SERVER_CONNECTIONS: &str = "scoop_net_server_connections_total";
    /// Requests decoded and dispatched by net-plane servers.
    pub const NET_SERVER_REQUESTS: &str = "scoop_net_server_requests_total";
    /// Wire-level faults injected at the socket boundary (all classes).
    pub const NET_WIRE_FAULTS: &str = "scoop_net_wire_faults_total";
}

/// Every counter a full data-path exercise must register. The bench smoke
/// target fails CI if a snapshot taken after such an exercise is missing
/// any of these (see [`missing_data_path_metrics`]).
pub const DATA_PATH_METRICS: &[&str] = &[
    names::OBJSERVER_GETS,
    names::OBJSERVER_PUTS,
    names::OBJSERVER_BYTES_IN,
    names::OBJSERVER_BYTES_OUT,
    names::OBJSERVER_DEDUPED_PUTS,
    names::PROXY_REQUESTS,
    names::PROXY_BYTES_TO_CLIENTS,
    names::PROXY_REPLICA_FAILOVERS,
    names::PROXY_HEDGED_GETS,
    names::PROXY_HEDGE_WINS,
    names::HEALTH_BREAKER_SKIPS,
    names::STORLETS_INVOCATIONS,
    names::STORLETS_BYTES_IN,
    names::STORLETS_BYTES_OUT,
    names::STORLETS_ADMISSION_SHEDS,
    names::CLIENT_RETRIES,
    names::CONNECTOR_BYTES_TRANSFERRED,
    names::CONNECTOR_STREAM_RESUMES,
    names::CONNECTOR_PUSHDOWN_FALLBACKS,
];

/// Histogram bucket upper bounds, in microseconds. Fixed across the
/// workspace so distributions from different runs are comparable; the final
/// implicit bucket is `+inf`.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// Most recent traces retained by the in-process span store.
pub const TRACE_CAP: usize = 512;

struct HistogramCell {
    /// One slot per [`LATENCY_BUCKETS_US`] bound, plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
}

struct TraceStore {
    spans: BTreeMap<String, Vec<SpanRecord>>,
    /// Insertion order of trace IDs, for bounded eviction.
    order: VecDeque<String>,
}

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    traces: Mutex<TraceStore>,
    /// Process epoch span start offsets are reported against.
    epoch: Instant,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        traces: Mutex::new(TraceStore { spans: BTreeMap::new(), order: VecDeque::new() }),
        epoch: Instant::now(),
    })
}

/// Telemetry must never take a panic down with it: a poisoned registry lock
/// (some unrelated thread panicked mid-update) is still structurally sound
/// for counters and maps, so recover the guard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonic, process-wide counter registered under a name.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// The shared cell, for stream wrappers that count via `Arc<AtomicU64>`.
    pub fn cell(&self) -> Arc<AtomicU64> {
        self.cell.clone()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// Get-or-register the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = lock(&registry().counters);
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)))
        .clone();
    Counter { cell }
}

/// An instantaneous level registered under a name.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Increase the level by `n`.
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease the level by `n`.
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Set the level.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// Get-or-register the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut map = lock(&registry().gauges);
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicI64::new(0)))
        .clone();
    Gauge { cell }
}

/// A fixed-bucket latency histogram registered under a name.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Record one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|b| us <= *b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        if let Some(b) = self.cell.buckets.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Histogram").field(&self.count()).finish()
    }
}

/// Get-or-register the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut map = lock(&registry().histograms);
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| {
            Arc::new(HistogramCell {
                buckets: (0..LATENCY_BUCKETS_US.len().saturating_add(1))
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                count: AtomicU64::new(0),
                sum_us: AtomicU64::new(0),
            })
        })
        .clone();
    Histogram { cell }
}

/// A per-instance counter mirrored into the process-wide registry: `get()`
/// reads the exact local value (per server / per connector accessors keep
/// their test-asserted semantics) while every `add` also feeds the named
/// global metric.
pub struct ScopedCounter {
    local: AtomicU64,
    global: Counter,
}

impl ScopedCounter {
    /// A fresh local counter mirrored into the global metric `name`.
    pub fn new(name: &str) -> ScopedCounter {
        ScopedCounter { local: AtomicU64::new(0), global: counter(name) }
    }

    /// Add `n` locally and globally.
    pub fn add(&self, n: u64) {
        self.local.fetch_add(n, Ordering::Relaxed);
        self.global.add(n);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The local (per-instance) value.
    pub fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ScopedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ScopedCounter").field(&self.get()).finish()
    }
}

/// Mint a process-unique trace ID (stamped on requests as the
/// `x-scoop-trace` header by the client layer).
pub fn new_trace_id() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    format!("t{:016x}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// One recorded span of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Layer that recorded the span (`session`, `scheduler`, `connector`,
    /// `client`, `proxy`, `objserver`, `storlet`).
    pub layer: &'static str,
    /// Free-form context (object name, storlet list, task count, ...).
    pub detail: String,
    /// Start offset from the process telemetry epoch, microseconds.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub duration_us: u64,
}

/// A live span: records a [`SpanRecord`] (when a trace ID is present) and a
/// `scoop_<layer>_latency_us` histogram observation when dropped.
#[must_use = "a span measures until dropped; bind it to a guard variable"]
pub struct Span {
    trace: Option<String>,
    layer: &'static str,
    detail: String,
    started: Instant,
}

/// Open a span for `layer`. `trace` is the request's `x-scoop-trace` value
/// when one was propagated; without it the span still feeds the layer's
/// latency histogram but records nothing in the trace store.
pub fn span(trace: Option<&str>, layer: &'static str, detail: impl Into<String>) -> Span {
    Span { trace: trace.map(str::to_string), layer, detail: detail.into(), started: Instant::now() }
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration_us = self.started.elapsed().as_micros() as u64;
        histogram(&format!("scoop_{}_latency_us", self.layer)).observe_us(duration_us);
        let Some(trace) = self.trace.take() else { return };
        let reg = registry();
        let start_us = self.started.saturating_duration_since(reg.epoch).as_micros() as u64;
        let record = SpanRecord {
            layer: self.layer,
            detail: std::mem::take(&mut self.detail),
            start_us,
            duration_us,
        };
        let mut store = lock(&reg.traces);
        if !store.spans.contains_key(&trace) {
            if store.order.len() >= TRACE_CAP {
                if let Some(oldest) = store.order.pop_front() {
                    store.spans.remove(&oldest);
                }
            }
            store.order.push_back(trace.clone());
        }
        store.spans.entry(trace).or_default().push(record);
    }
}

/// The spans recorded for `trace`, in completion order (a caller's span
/// drops after its callees', so outermost layers appear last).
pub fn trace_spans(trace: &str) -> Vec<SpanRecord> {
    lock(&registry().traces).spans.get(trace).cloned().unwrap_or_default()
}

/// One histogram in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// `(upper_bound_us, observations)` per bucket; the overflow bucket
    /// reports `u64::MAX` as its bound.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, microseconds.
    pub sum_us: u64,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)`, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// The value of the counter `name`, if registered.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The level of the gauge `name`, if registered.
    pub fn get_gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Plain-text rendering (one metric per line; histogram buckets
    /// indented under their metric).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# scoop telemetry snapshot\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge {name} {v}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "histogram {} count={} sum_us={}\n",
                h.name, h.count, h.sum_us
            ));
            for (bound, n) in &h.buckets {
                if *bound == u64::MAX {
                    out.push_str(&format!("  le +inf {n}\n"));
                } else {
                    out.push_str(&format!("  le {bound} {n}\n"));
                }
            }
        }
        out
    }

    /// JSON rendering (metric names are `[a-z0-9_]`, so no escaping is
    /// needed).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for h in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum_us\":{},\"buckets\":[",
                h.name, h.count, h.sum_us
            ));
            let mut first_bucket = true;
            for (bound, n) in &h.buckets {
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                out.push_str(&format!("[{bound},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Copy every registered metric out of the registry.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters = lock(&reg.counters)
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let gauges = lock(&reg.gauges)
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let histograms = lock(&reg.histograms)
        .iter()
        .map(|(k, cell)| HistogramSnapshot {
            name: k.clone(),
            buckets: LATENCY_BUCKETS_US
                .iter()
                .copied()
                .chain(std::iter::once(u64::MAX))
                .zip(cell.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
                .collect(),
            count: cell.count.load(Ordering::Relaxed),
            sum_us: cell.sum_us.load(Ordering::Relaxed),
        })
        .collect();
    Snapshot { counters, gauges, histograms }
}

/// The [`DATA_PATH_METRICS`] counters absent from `s` — nonempty means a
/// data-path exercise failed to construct (and hence register) some layer's
/// instrumentation.
pub fn missing_data_path_metrics(s: &Snapshot) -> Vec<&'static str> {
    DATA_PATH_METRICS
        .iter()
        .copied()
        .filter(|m| s.get_counter(m).is_none())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_accumulate() {
        let c = counter("test_telemetry_counter_total");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Same name resolves to the same cell.
        assert_eq!(counter("test_telemetry_counter_total").get(), before + 5);
        assert_eq!(
            snapshot().get_counter("test_telemetry_counter_total"),
            Some(before + 5)
        );
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = gauge("test_telemetry_gauge");
        g.set(0);
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        assert_eq!(snapshot().get_gauge("test_telemetry_gauge"), Some(2));
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = histogram("test_telemetry_hist_us");
        h.observe_us(50); // first bucket (<= 100)
        h.observe_us(2_000_000); // overflow
        assert_eq!(h.count(), 2);
        let snap = snapshot();
        let hs = snap
            .histograms
            .iter()
            .find(|h| h.name == "test_telemetry_hist_us")
            .unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.buckets.len(), LATENCY_BUCKETS_US.len() + 1);
        assert_eq!(hs.buckets[0], (100, 1));
        assert_eq!(*hs.buckets.last().unwrap(), (u64::MAX, 1));
        assert!(hs.sum_us >= 2_000_050);
    }

    #[test]
    fn scoped_counter_is_exact_locally_and_mirrored_globally() {
        let global_before = counter("test_telemetry_scoped_total").get();
        let a = ScopedCounter::new("test_telemetry_scoped_total");
        let b = ScopedCounter::new("test_telemetry_scoped_total");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
        assert_eq!(counter("test_telemetry_scoped_total").get(), global_before + 3);
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, b);
        assert!(a.starts_with('t'));
    }

    #[test]
    fn spans_record_into_their_trace() {
        let trace = new_trace_id();
        {
            let _outer = span(Some(&trace), "proxy", "GET a/c/o");
            let _inner = span(Some(&trace), "objserver", "GET");
        }
        let spans = trace_spans(&trace);
        assert_eq!(spans.len(), 2);
        // Inner drops first.
        assert_eq!(spans[0].layer, "objserver");
        assert_eq!(spans[1].layer, "proxy");
        assert_eq!(spans[1].detail, "GET a/c/o");
        // Unrelated traces see nothing.
        assert!(trace_spans("t-no-such-trace").is_empty());
    }

    #[test]
    fn span_without_trace_only_feeds_histograms() {
        let h = histogram("scoop_testlayer_latency_us");
        let before = h.count();
        drop(span(None, "testlayer", ""));
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn trace_store_is_bounded() {
        // Unique prefix so the traces minted here are identifiable.
        for i in 0..(TRACE_CAP + 8) {
            let t = format!("bounded-test-{i}");
            drop(span(Some(&t), "session", ""));
        }
        assert!(trace_spans(&format!("bounded-test-{}", TRACE_CAP + 7)).len() == 1);
        // The earliest traces were evicted to keep the store bounded.
        assert!(trace_spans("bounded-test-0").is_empty());
    }

    #[test]
    fn snapshot_serializes_text_and_json() {
        counter("test_telemetry_render_total").add(7);
        gauge("test_telemetry_render_gauge").set(-2);
        histogram("test_telemetry_render_us").observe_us(123);
        let snap = snapshot();
        let text = snap.to_text();
        assert!(text.contains("counter test_telemetry_render_total"));
        assert!(text.contains("gauge test_telemetry_render_gauge -2"));
        assert!(text.contains("histogram test_telemetry_render_us"));
        assert!(text.contains("le +inf"));
        let json = snap.to_json();
        assert!(json.contains("\"test_telemetry_render_total\":"));
        assert!(json.contains("\"counters\":{"));
        assert!(json.contains("\"histograms\":{"));
        // Sanity: balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn missing_data_path_metrics_reports_unregistered_names() {
        let missing = missing_data_path_metrics(&Snapshot::default());
        assert_eq!(missing.len(), DATA_PATH_METRICS.len());
        let snap = Snapshot {
            counters: DATA_PATH_METRICS.iter().map(|n| (n.to_string(), 0)).collect(),
            ..Snapshot::default()
        };
        assert!(missing_data_path_metrics(&snap).is_empty());
    }
}
