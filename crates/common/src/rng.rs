//! Deterministic seed derivation.
//!
//! Every experiment in the reproduction harness must be replayable from a
//! single top-level seed. Subsystems (workload generator, failure injector,
//! simulator jitter) each derive an independent sub-seed from the master seed
//! plus a stable label, so adding a new consumer never perturbs existing ones.

use crate::hash::hash64_seeded;

/// Domain-separation constant so derived seeds never collide with raw hashes.
const SEED_DOMAIN: u64 = 0xDE7E_55ED_0000_5EED;

/// Derive a child seed from a parent seed and a stable textual label.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    hash64_seeded(label.as_bytes(), parent ^ SEED_DOMAIN)
}

/// A tiny, fast xorshift* PRNG for places where pulling in `rand` is overkill
/// (e.g. the cluster simulator's service-time jitter). Not for statistics-heavy
/// workload generation — that uses `rand::StdRng`.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded constructor; a zero seed is remapped to a fixed non-zero value.
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in [0, n). Panics when `n == 0`.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable_and_label_sensitive() {
        let a = derive_seed(42, "workload");
        assert_eq!(a, derive_seed(42, "workload"));
        assert_ne!(a, derive_seed(42, "failures"));
        assert_ne!(a, derive_seed(43, "workload"));
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = XorShift64::new(123);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut r = XorShift64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
    }
}
