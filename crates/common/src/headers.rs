//! The single home of every Scoop-specific HTTP header name.
//!
//! The ingest path speaks through `x-*` headers at several layers — auth
//! tokens at the proxy, storlet invocation directives in the middleware,
//! idempotency tokens at the object servers, degradation markers on shed
//! responses. Scattering those names as string literals invites the classic
//! connector bug: one layer renames a header (or typos its casing) and the
//! peer silently stops seeing it. Every crate therefore imports the
//! constants below; `scoop-lint`'s invariant pass rejects any `x-*` string
//! literal that appears outside this module.

/// Client authentication token, validated by the proxy (`X-Auth-Token`).
pub const AUTH_TOKEN: &str = "x-auth-token";

/// Per-upload idempotency token. The client stamps every logical PUT with a
/// fresh token; a re-dispatched PUT whose first attempt already landed on a
/// replica is acked without re-storing, so it cannot double-count toward
/// the write quorum.
pub const UPLOAD_TOKEN: &str = "x-upload-token";

/// Stage marker set by servers before running their middleware pipeline, so
/// a middleware (e.g. the storlet engine) knows which tier it executes on.
pub const BACKEND_STAGE: &str = "x-backend-stage";

/// Comma-separated storlet pipeline to execute on a GET.
pub const RUN_STORLET: &str = "x-run-storlet";

/// Storlet invocation parameters, `k=v` pairs joined by `;` (percent-escaped).
pub const STORLET_PARAMETERS: &str = "x-storlet-parameters";

/// Storlet execution stage: `proxy` or `object` (default `object`).
pub const STORLET_RUN_ON: &str = "x-storlet-run-on";

/// Logical byte range handled by the storlet (record-aligned), e.g.
/// `bytes=1048576-2097151`.
pub const STORLET_RANGE: &str = "x-storlet-range";

/// Response marker listing executed storlets.
pub const STORLET_INVOKED: &str = "x-storlet-invoked";

/// Set on `503` responses when pushdown was shed for overload; names the
/// storlets that were *not* run so the client can fall back to a plain GET
/// and filter locally.
pub const STORLET_DEGRADED: &str = "x-storlet-degraded";

/// Stored object size in bytes, set on GET responses so streaming readers
/// can detect truncated bodies.
pub const OBJECT_LENGTH: &str = "x-object-length";

/// Request-scoped trace ID, minted per query by `compute::session` and
/// propagated through every storage hop so each layer can record a timed
/// span against the same trace (see `scoop_common::telemetry`).
pub const TRACE: &str = "x-scoop-trace";

/// Prefix of user-metadata headers persisted alongside an object.
pub const OBJECT_META_PREFIX: &str = "x-object-meta-";

/// Prefix of the numbered metadata chunks carrying an object's per-block
/// zone-map statistics (`x-object-meta-scoop-stats-0`, `-1`, ...). The
/// indexing storlet writes them at PUT time; the block-range planner in the
/// storlet middleware reassembles and decodes them from a HEAD response
/// (see `scoop_common::zonestats`). Deliberately under [`OBJECT_META_PREFIX`]
/// so the chunks persist and replicate exactly like user metadata — but they
/// are *internal*: metadata-only POSTs preserve them rather than letting a
/// user-metadata replacement wipe the index.
pub const SCOOP_STATS_PREFIX: &str = "x-object-meta-scoop-stats-";

/// Response header: bytes of the object actually fetched by a planned
/// (block-skipping) pushdown GET — the sum of the surviving coalesced
/// block ranges.
pub const SCANNED_BYTES: &str = "x-scoop-scanned-bytes";

/// Response header: bytes of the object the block-range planner proved
/// could not match the pushdown predicate and therefore never read.
pub const SKIPPED_BYTES: &str = "x-scoop-skipped-bytes";

/// Remaining request time budget in milliseconds, stamped by the wire
/// encoder from [`crate::Deadline::remaining`]. An `Instant` cannot cross a
/// socket, so the client ships the *budget* and the server rebuilds a local
/// deadline from it — every hop keeps consulting the same shrinking window.
pub const DEADLINE_MS: &str = "x-scoop-deadline-ms";

/// Machine-readable [`crate::ScoopError::kind`] on error responses, so the
/// client can rebuild the exact error variant (and its retryability class)
/// instead of guessing from the HTTP status code.
pub const ERROR_KIND: &str = "x-scoop-error";

/// Optional object-name prefix filter on container listing requests.
pub const LIST_PREFIX: &str = "x-scoop-list-prefix";

/// Chunked *trailer* carrying a mid-stream body error across the wire:
/// `<kind> <message>`. A response head goes out before its body is pulled,
/// so a stream that fails halfway can no longer change the status line —
/// the server finishes the chunked frame with this trailer instead, and
/// the client rebuilds the exact error variant (a length-enforcement
/// "truncated" error must not flatten into a generic aborted frame).
pub const STREAM_ERROR: &str = "x-scoop-stream-error";

/// Chunked *trailer* shipping the server-side spans of the request's trace
/// back to the client (compact form: `telemetry::encode_spans`). The
/// trailer position is deliberate — proxy/objserver/storlet spans only
/// finish once the body has streamed, so they cannot ride the response
/// head. The client transport decodes the value and merges the spans into
/// its local trace store tagged `remote` (`telemetry::merge_remote_spans`),
/// keeping one coherent seven-layer timeline across the TCP boundary.
pub const SERVER_SPANS: &str = "x-scoop-server-spans";

#[cfg(test)]
mod tests {
    #[test]
    fn header_names_are_lowercase_x_prefixed() {
        for name in [
            super::AUTH_TOKEN,
            super::UPLOAD_TOKEN,
            super::BACKEND_STAGE,
            super::RUN_STORLET,
            super::STORLET_PARAMETERS,
            super::STORLET_RUN_ON,
            super::STORLET_RANGE,
            super::STORLET_INVOKED,
            super::STORLET_DEGRADED,
            super::OBJECT_LENGTH,
            super::OBJECT_META_PREFIX,
            super::SCOOP_STATS_PREFIX,
            super::SCANNED_BYTES,
            super::SKIPPED_BYTES,
            super::TRACE,
            super::DEADLINE_MS,
            super::ERROR_KIND,
            super::LIST_PREFIX,
            super::STREAM_ERROR,
            super::SERVER_SPANS,
        ] {
            assert!(name.starts_with("x-"), "{name} must be x-prefixed");
            assert_eq!(name, name.to_ascii_lowercase(), "{name} must be lowercase");
            assert!(
                name.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'),
                "{name} must be [a-z-] only"
            );
        }
    }
}
