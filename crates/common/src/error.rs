//! The workspace-wide error type.
//!
//! A single error enum keeps cross-crate plumbing simple: the object store,
//! storlet engine, SQL engine and compute framework all speak [`ScoopError`],
//! so a failure deep inside a storage-node filter surfaces to the analytics
//! driver without lossy conversions.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, ScoopError>;

/// Whether retrying the same request (against another replica, after a
/// backoff) could plausibly succeed.
///
/// Every [`ScoopError`] variant must be classified here *explicitly*:
/// [`ScoopError::class`] is a wildcard-free match that `scoop-lint`'s
/// invariant pass verifies covers every variant, so adding an error
/// variant without deciding its retry semantics is a lint failure, not a
/// silent default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Transient: another replica / a later attempt may succeed.
    Retryable,
    /// Deterministic: retrying burns budget without changing the outcome.
    NonRetryable,
}

/// All error conditions produced by the Scoop workspace.
#[derive(Debug)]
pub enum ScoopError {
    /// Underlying I/O failure (disk-backed object store, spill files, ...).
    Io(std::io::Error),
    /// An entity (account, container, object, table, storlet) does not exist.
    NotFound(String),
    /// An entity already exists and the operation does not allow replacement.
    Conflict(String),
    /// The request is malformed (bad range, missing header, invalid path).
    InvalidRequest(String),
    /// Authentication or authorization failure.
    Unauthorized(String),
    /// CSV data could not be parsed.
    Csv(String),
    /// SQL text could not be lexed/parsed/planned.
    Sql(String),
    /// A storlet failed during deployment or invocation.
    Storlet(String),
    /// Columnar format corruption or version mismatch.
    Columnar(String),
    /// Stored bytes are structurally invalid: truncated buffers, lengths
    /// that overflow, offsets past the end. Distinct from [`Self::Columnar`]
    /// (format/version-level problems) so checked decode arithmetic has a
    /// precise place to land.
    Corrupt(String),
    /// Failure inside the compute framework (task panic, lost partition).
    Compute(String),
    /// The feature is recognized but intentionally not supported.
    Unsupported(String),
    /// The query's time budget ran out before the operation completed.
    DeadlineExceeded(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl ScoopError {
    /// Short machine-readable category, used in logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            ScoopError::Io(_) => "io",
            ScoopError::NotFound(_) => "not_found",
            ScoopError::Conflict(_) => "conflict",
            ScoopError::InvalidRequest(_) => "invalid_request",
            ScoopError::Unauthorized(_) => "unauthorized",
            ScoopError::Csv(_) => "csv",
            ScoopError::Sql(_) => "sql",
            ScoopError::Storlet(_) => "storlet",
            ScoopError::Columnar(_) => "columnar",
            ScoopError::Corrupt(_) => "corrupt",
            ScoopError::Compute(_) => "compute",
            ScoopError::Unsupported(_) => "unsupported",
            ScoopError::DeadlineExceeded(_) => "deadline",
            ScoopError::Internal(_) => "internal",
        }
    }

    /// Explicit retry classification of every variant. Kept wildcard-free
    /// on purpose — `scoop-lint` checks that each variant of the enum
    /// appears in exactly one arm, so a new variant cannot ship without a
    /// deliberate retryability decision. Deadline violations are
    /// deliberately non-retryable: once the budget is gone, every retry
    /// layer must fail fast rather than keep burning it.
    pub fn class(&self) -> ErrorClass {
        match self {
            ScoopError::Io(_) => ErrorClass::Retryable,
            ScoopError::Compute(_) => ErrorClass::Retryable,
            ScoopError::NotFound(_) => ErrorClass::NonRetryable,
            ScoopError::Conflict(_) => ErrorClass::NonRetryable,
            ScoopError::InvalidRequest(_) => ErrorClass::NonRetryable,
            ScoopError::Unauthorized(_) => ErrorClass::NonRetryable,
            ScoopError::Csv(_) => ErrorClass::NonRetryable,
            ScoopError::Sql(_) => ErrorClass::NonRetryable,
            ScoopError::Storlet(_) => ErrorClass::NonRetryable,
            ScoopError::Columnar(_) => ErrorClass::NonRetryable,
            ScoopError::Corrupt(_) => ErrorClass::NonRetryable,
            ScoopError::Unsupported(_) => ErrorClass::NonRetryable,
            ScoopError::DeadlineExceeded(_) => ErrorClass::NonRetryable,
            ScoopError::Internal(_) => ErrorClass::NonRetryable,
        }
    }

    /// True if retrying the same request against another replica could
    /// succeed — shorthand for `class() == ErrorClass::Retryable`.
    pub fn is_retryable(&self) -> bool {
        self.class() == ErrorClass::Retryable
    }
}

impl fmt::Display for ScoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoopError::Io(e) => write!(f, "io error: {e}"),
            ScoopError::NotFound(m) => write!(f, "not found: {m}"),
            ScoopError::Conflict(m) => write!(f, "conflict: {m}"),
            ScoopError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ScoopError::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            ScoopError::Csv(m) => write!(f, "csv error: {m}"),
            ScoopError::Sql(m) => write!(f, "sql error: {m}"),
            ScoopError::Storlet(m) => write!(f, "storlet error: {m}"),
            ScoopError::Columnar(m) => write!(f, "columnar error: {m}"),
            ScoopError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            ScoopError::Compute(m) => write!(f, "compute error: {m}"),
            ScoopError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ScoopError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            ScoopError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ScoopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScoopError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ScoopError {
    fn from(e: std::io::Error) -> Self {
        ScoopError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(ScoopError::NotFound("x".into()).kind(), "not_found");
        assert_eq!(ScoopError::Sql("x".into()).kind(), "sql");
        assert_eq!(
            ScoopError::Io(std::io::Error::other("boom")).kind(),
            "io"
        );
    }

    #[test]
    fn io_errors_are_retryable_and_chain_source() {
        let e = ScoopError::from(std::io::Error::other("disk gone"));
        assert!(e.is_retryable());
        assert!(std::error::Error::source(&e).is_some());
        assert!(!ScoopError::Sql("nope".into()).is_retryable());
    }

    #[test]
    fn deadline_exceeded_is_terminal() {
        let e = ScoopError::DeadlineExceeded("query q1".into());
        assert_eq!(e.kind(), "deadline");
        assert!(!e.is_retryable());
        assert_eq!(e.to_string(), "deadline exceeded: query q1");
    }

    #[test]
    fn display_includes_message() {
        let e = ScoopError::Storlet("csvfilter crashed".into());
        assert_eq!(e.to_string(), "storlet error: csvfilter crashed");
    }

    #[test]
    fn corrupt_is_terminal() {
        let e = ScoopError::Corrupt("length overflows buffer".into());
        assert_eq!(e.kind(), "corrupt");
        assert!(!e.is_retryable());
        assert_eq!(e.to_string(), "corrupt data: length overflows buffer");
    }
}
