//! Human-friendly byte quantities.
//!
//! Dataset sizes in the paper span 50 GB to 3 TB; the reproduction harness and
//! the cluster simulator pass sizes around constantly, so a small dedicated
//! type keeps units honest (everything is decimal, matching how the paper and
//! storage vendors quote sizes: 1 KB = 1000 B).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A quantity of bytes. Wraps `u64`; arithmetic saturates on overflow.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ByteSize(pub u64);

impl ByteSize {
    pub const KB: u64 = 1_000;
    pub const MB: u64 = 1_000_000;
    pub const GB: u64 = 1_000_000_000;
    pub const TB: u64 = 1_000_000_000_000;

    /// Construct from raw bytes.
    pub const fn b(n: u64) -> Self {
        ByteSize(n)
    }
    /// Construct from kilobytes (decimal).
    pub const fn kb(n: u64) -> Self {
        ByteSize(n * Self::KB)
    }
    /// Construct from megabytes (decimal).
    pub const fn mb(n: u64) -> Self {
        ByteSize(n * Self::MB)
    }
    /// Construct from gigabytes (decimal).
    pub const fn gb(n: u64) -> Self {
        ByteSize(n * Self::GB)
    }
    /// Construct from terabytes (decimal).
    pub const fn tb(n: u64) -> Self {
        ByteSize(n * Self::TB)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
    /// As `f64` — convenient for the fluid simulator's rate arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
    /// Fractional gigabytes.
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / Self::GB as f64
    }

    /// Scale by a float ratio, rounding to nearest byte (clamped at 0).
    pub fn scale(self, ratio: f64) -> Self {
        ByteSize((self.0 as f64 * ratio).round().max(0.0) as u64)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: Self) -> Self {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: Self) -> Self {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> Self {
        ByteSize(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> Self {
        ByteSize(self.0 / rhs)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= Self::TB {
            write!(f, "{:.2} TB", b as f64 / Self::TB as f64)
        } else if b >= Self::GB {
            write!(f, "{:.2} GB", b as f64 / Self::GB as f64)
        } else if b >= Self::MB {
            write!(f, "{:.2} MB", b as f64 / Self::MB as f64)
        } else if b >= Self::KB {
            write!(f, "{:.2} KB", b as f64 / Self::KB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_units() {
        assert_eq!(ByteSize::kb(2).as_u64(), 2_000);
        assert_eq!(ByteSize::mb(1).as_u64(), 1_000_000);
        assert_eq!(ByteSize::gb(50).as_gb(), 50.0);
        assert_eq!(ByteSize::tb(3).as_u64(), 3 * ByteSize::TB);
    }

    #[test]
    fn arithmetic_saturates() {
        let max = ByteSize(u64::MAX);
        assert_eq!((max + ByteSize(1)).as_u64(), u64::MAX);
        assert_eq!((ByteSize(5) - ByteSize(9)).as_u64(), 0);
        assert_eq!((ByteSize::mb(3) * 2).as_u64(), 6_000_000);
        assert_eq!((ByteSize::mb(6) / 3).as_u64(), 2_000_000);
    }

    #[test]
    fn scaling_rounds() {
        assert_eq!(ByteSize(100).scale(0.333).as_u64(), 33);
        assert_eq!(ByteSize(100).scale(-1.0).as_u64(), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize(512).to_string(), "512 B");
        assert_eq!(ByteSize::kb(3).to_string(), "3.00 KB");
        assert_eq!(ByteSize::gb(50).to_string(), "50.00 GB");
        assert_eq!(ByteSize::tb(3).to_string(), "3.00 TB");
    }
}
