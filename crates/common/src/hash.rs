//! Fast non-cryptographic hashing, implemented from scratch.
//!
//! The object store needs two things from a hash function:
//!
//! 1. **Ring placement** — uniform distribution of `/account/container/object`
//!    paths over ring partitions (Swift uses MD5 for this; uniformity is the
//!    property that matters, not cryptographic strength).
//! 2. **ETags** — a cheap content fingerprint for integrity checks.
//!
//! We implement a 64-bit mix-based hash in the spirit of xxHash/SplitMix and
//! derive a 128-bit variant for ETags by hashing with two different seeds.

/// Large odd constants taken from the SplitMix64/xxHash family.
const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;

/// Finalizer that avalanches all input bits across the output.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(PRIME_2);
    x ^= x >> 29;
    x = x.wrapping_mul(PRIME_3);
    x ^= x >> 32;
    x
}

/// Hash a byte slice to 64 bits with the given seed.
///
/// Processes 8-byte lanes with multiply-rotate mixing and finishes the tail
/// byte-wise; the finalizer guarantees every input bit affects every output
/// bit (verified statistically in the tests below).
pub fn hash64_seeded(data: &[u8], seed: u64) -> u64 {
    let mut acc = seed ^ (data.len() as u64).wrapping_mul(PRIME_1);
    let mut chunks = data.chunks_exact(8);
    for lane in &mut chunks {
        // lint:allow(chunks_exact(8) yields exactly 8-byte lanes)
        let v = u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
        acc ^= mix(v);
        acc = acc.rotate_left(27).wrapping_mul(PRIME_1).wrapping_add(PRIME_2);
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        acc ^= (b as u64).wrapping_mul(PRIME_3) << ((i as u32 % 8) * 8);
        acc = acc.rotate_left(11).wrapping_mul(PRIME_1);
    }
    mix(acc)
}

/// Hash a byte slice to 64 bits with the default seed.
#[inline]
pub fn hash64(data: &[u8]) -> u64 {
    hash64_seeded(data, 0)
}

/// 128-bit fingerprint rendered as 32 lowercase hex characters.
///
/// Used as the object-store ETag, mirroring Swift's MD5-hex ETags in shape.
pub fn fingerprint_hex(data: &[u8]) -> String {
    let a = hash64_seeded(data, 0x5C00_75C0_0750_0F00);
    let b = hash64_seeded(data, 0x0DDC_0FFE_EBAD_F00D);
    format!("{a:016x}{b:016x}")
}

/// A streaming variant for data that arrives in chunks.
///
/// `Hasher64::finish` over concatenated chunks equals `hash64` over the whole
/// buffer only when chunk boundaries align to 8 bytes; the streaming hasher is
/// therefore its own stable function and is used where incremental hashing is
/// required (ETag computation on PUT streams).
#[derive(Debug, Clone)]
pub struct Hasher64 {
    acc: u64,
    len: u64,
    /// Buffered tail bytes (< 8) awaiting a full lane.
    tail: [u8; 8],
    tail_len: usize,
}

impl Default for Hasher64 {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

impl Hasher64 {
    /// Create a streaming hasher with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Hasher64 { acc: seed ^ PRIME_2, len: 0, tail: [0u8; 8], tail_len: 0 }
    }

    /// Feed more bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len += data.len() as u64;
        if self.tail_len > 0 {
            let need = 8 - self.tail_len;
            let take = need.min(data.len());
            self.tail[self.tail_len..self.tail_len + take].copy_from_slice(&data[..take]);
            self.tail_len += take;
            data = &data[take..];
            if self.tail_len == 8 {
                self.consume_lane(u64::from_le_bytes(self.tail));
                self.tail_len = 0;
            } else {
                // Input exhausted without completing a lane; keep buffering.
                return;
            }
        }
        let mut chunks = data.chunks_exact(8);
        for lane in &mut chunks {
            // lint:allow(chunks_exact(8) yields exactly 8-byte lanes)
            self.consume_lane(u64::from_le_bytes(lane.try_into().expect("8-byte lane")));
        }
        let rem = chunks.remainder();
        self.tail[..rem.len()].copy_from_slice(rem);
        self.tail_len = rem.len();
    }

    #[inline]
    fn consume_lane(&mut self, v: u64) {
        self.acc ^= mix(v);
        self.acc = self.acc.rotate_left(27).wrapping_mul(PRIME_1).wrapping_add(PRIME_2);
    }

    /// Produce the final 64-bit digest.
    pub fn finish(&self) -> u64 {
        let mut acc = self.acc ^ self.len.wrapping_mul(PRIME_1);
        for (i, &b) in self.tail[..self.tail_len].iter().enumerate() {
            acc ^= (b as u64).wrapping_mul(PRIME_3) << ((i as u32 % 8) * 8);
            acc = acc.rotate_left(11).wrapping_mul(PRIME_1);
        }
        mix(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let d = b"AUTH_gridpocket/meters/2015-01.csv";
        assert_eq!(hash64(d), hash64(d));
        assert_ne!(hash64_seeded(d, 1), hash64_seeded(d, 2));
        assert_ne!(hash64(b"a"), hash64(b"b"));
    }

    #[test]
    fn length_extension_differs() {
        assert_ne!(hash64(b""), hash64(b"\0"));
        assert_ne!(hash64(b"ab"), hash64(b"ab\0"));
    }

    #[test]
    fn fingerprint_is_32_hex_chars() {
        let fp = fingerprint_hex(b"hello world");
        assert_eq!(fp.len(), 32);
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(fp, fingerprint_hex(b"hello worlD"));
    }

    #[test]
    fn streaming_matches_itself_regardless_of_chunking() {
        let data: Vec<u8> = (0..1000u32).flat_map(|v| v.to_le_bytes()).collect();
        let mut whole = Hasher64::default();
        whole.update(&data);
        for chunk_size in [1usize, 3, 7, 8, 13, 64, 999] {
            let mut h = Hasher64::default();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finish(), whole.finish(), "chunk size {chunk_size}");
        }
    }

    /// Uniformity smoke test: hashing object names into 64 buckets should not
    /// leave any bucket pathologically empty or overloaded.
    #[test]
    fn distribution_over_buckets_is_roughly_uniform() {
        const BUCKETS: usize = 64;
        const N: usize = 64_000;
        let mut counts = [0usize; BUCKETS];
        for i in 0..N {
            let name = format!("AUTH_test/container/object-{i}");
            counts[(hash64(name.as_bytes()) % BUCKETS as u64) as usize] += 1;
        }
        let expected = N / BUCKETS;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "bucket {b} has {c} items (expected ~{expected})"
            );
        }
    }
}
