//! Plain-text table rendering for the reproduction harness.
//!
//! The `repro` binary prints the same rows/series the paper reports; aligned
//! ASCII tables keep that output diffable and readable in CI logs.

/// A simple column-aligned text table builder.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given header cells.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a data row. Rows shorter than the header are padded with "".
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `prec` decimals, trimming to a compact form.
pub fn fnum(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["query", "S_Q"]);
        t.row(vec!["ShowDay", "18.7"]);
        t.row(vec!["ShowMapCons", "4.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("query"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Column 2 starts at the same offset in every data row.
        let off = lines[2].find("18.7").unwrap();
        assert_eq!(lines[3].find("4.1").unwrap(), off);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(2.71999, 2), "2.72");
        assert_eq!(fnum(30.0, 1), "30.0");
    }
}
