//! Chunked byte streams — the unit of data flow across the workspace.
//!
//! Object GET/PUT bodies, storlet input/output and compute-side ingestion all
//! move data as a stream of [`bytes::Bytes`] chunks so that a pushdown filter
//! can transform a multi-gigabyte object without materializing it, exactly as
//! the Storlets framework streams request bodies through `invoke()`.

use crate::error::Result;
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A boxed, fallible, sendable stream of byte chunks.
pub type ByteStream = Box<dyn Iterator<Item = Result<Bytes>> + Send>;

/// Default chunk size for streams fabricated from contiguous buffers.
/// 64 KiB mirrors Swift's default disk chunk size.
pub const DEFAULT_CHUNK: usize = 64 * 1024;

/// Create an empty stream.
pub fn empty() -> ByteStream {
    Box::new(std::iter::empty())
}

/// Create a single-chunk stream from one buffer.
pub fn once(data: Bytes) -> ByteStream {
    if data.is_empty() {
        empty()
    } else {
        Box::new(std::iter::once(Ok(data)))
    }
}

/// Create a stream that yields `data` in chunks of `chunk_size` bytes.
pub fn chunked(data: Bytes, chunk_size: usize) -> ByteStream {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut offset = 0usize;
    Box::new(std::iter::from_fn(move || {
        if offset >= data.len() {
            return None;
        }
        let end = (offset + chunk_size).min(data.len());
        let chunk = data.slice(offset..end);
        offset = end;
        Some(Ok(chunk))
    }))
}

/// Create a stream yielding the given chunks in order.
pub fn from_chunks(chunks: Vec<Bytes>) -> ByteStream {
    Box::new(chunks.into_iter().filter(|c| !c.is_empty()).map(Ok))
}

/// Create a stream that immediately fails with `err`.
pub fn error(err: crate::ScoopError) -> ByteStream {
    Box::new(std::iter::once(Err(err)))
}

/// Drain a stream into one contiguous buffer.
pub fn collect(stream: ByteStream) -> Result<Bytes> {
    let mut out: Vec<u8> = Vec::new();
    for chunk in stream {
        out.extend_from_slice(&chunk?);
    }
    Ok(Bytes::from(out))
}

/// Wrap a stream so that ending before `expected` bytes have been delivered
/// becomes a retryable I/O error instead of a silent truncation.
///
/// Object servers report `content-length` before streaming the body; a
/// backend fault (or an injected chaos fault) can still cut the stream short.
/// Consumers that stop pulling early never trigger the check — it fires only
/// when the producer claims a natural end too soon. Excess bytes beyond
/// `expected` fail too, as soon as they appear.
pub fn enforce_length(inner: ByteStream, expected: u64) -> ByteStream {
    let mut seen = 0u64;
    let mut finished = false;
    let mut inner = inner;
    Box::new(std::iter::from_fn(move || {
        if finished {
            return None;
        }
        match inner.next() {
            Some(Ok(chunk)) => {
                seen += chunk.len() as u64;
                if seen > expected {
                    finished = true;
                    return Some(Err(crate::ScoopError::Io(std::io::Error::other(
                        format!("stream overran declared length: {seen} > {expected} bytes"),
                    ))));
                }
                Some(Ok(chunk))
            }
            Some(Err(e)) => {
                finished = true;
                Some(Err(e))
            }
            None if seen < expected => {
                finished = true;
                Some(Err(crate::ScoopError::Io(std::io::Error::other(format!(
                    "truncated stream: got {seen} of {expected} bytes"
                )))))
            }
            None => {
                finished = true;
                None
            }
        }
    }))
}

/// Shared byte counter observable while a stream is being consumed elsewhere.
#[derive(Debug, Default, Clone)]
pub struct ByteCounter(Arc<AtomicU64>);

impl ByteCounter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
    /// Bytes observed so far.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
}

/// Stream adaptor that counts the bytes flowing through it.
///
/// The connector wraps every GET body in one of these so experiments can
/// report exactly how many bytes crossed the (simulated) inter-cluster link.
pub struct CountingStream {
    inner: ByteStream,
    counter: ByteCounter,
}

impl CountingStream {
    /// Wrap `inner`, reporting into `counter`.
    pub fn new(inner: ByteStream, counter: ByteCounter) -> Self {
        CountingStream { inner, counter }
    }
}

impl Iterator for CountingStream {
    type Item = Result<Bytes>;
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next();
        if let Some(Ok(chunk)) = &item {
            self.counter.add(chunk.len() as u64);
        }
        item
    }
}

/// Extension helpers on [`ByteStream`].
pub trait StreamExt {
    /// Count bytes through a fresh counter; returns (wrapped stream, counter).
    fn counted(self) -> (ByteStream, ByteCounter);
    /// Apply a per-chunk transformation.
    fn map_chunks<F>(self, f: F) -> ByteStream
    where
        F: FnMut(Bytes) -> Result<Bytes> + Send + 'static;
}

impl StreamExt for ByteStream {
    fn counted(self) -> (ByteStream, ByteCounter) {
        let counter = ByteCounter::new();
        let stream = Box::new(CountingStream::new(self, counter.clone()));
        (stream, counter)
    }

    fn map_chunks<F>(self, mut f: F) -> ByteStream
    where
        F: FnMut(Bytes) -> Result<Bytes> + Send + 'static,
    {
        Box::new(self.map(move |chunk| chunk.and_then(&mut f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScoopError;

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn chunked_roundtrip_preserves_bytes() {
        let data = payload(200_001);
        for chunk in [1usize, 7, 4096, DEFAULT_CHUNK, 1_000_000] {
            let s = chunked(data.clone(), chunk);
            assert_eq!(collect(s).unwrap(), data, "chunk={chunk}");
        }
    }

    #[test]
    fn empty_and_once() {
        assert_eq!(collect(empty()).unwrap().len(), 0);
        assert_eq!(collect(once(Bytes::new())).unwrap().len(), 0);
        assert_eq!(collect(once(Bytes::from_static(b"xyz"))).unwrap(), "xyz");
    }

    #[test]
    fn from_chunks_skips_empties() {
        let s = from_chunks(vec![
            Bytes::from_static(b"ab"),
            Bytes::new(),
            Bytes::from_static(b"cd"),
        ]);
        assert_eq!(collect(s).unwrap(), "abcd");
    }

    #[test]
    fn counting_stream_observes_all_bytes() {
        let data = payload(123_456);
        let (s, counter) = chunked(data.clone(), 1000).counted();
        assert_eq!(counter.get(), 0);
        let got = collect(s).unwrap();
        assert_eq!(got.len(), 123_456);
        assert_eq!(counter.get(), 123_456);
    }

    #[test]
    fn enforce_length_passes_exact_streams() {
        let data = payload(10_000);
        let s = enforce_length(chunked(data.clone(), 777), 10_000);
        assert_eq!(collect(s).unwrap(), data);
    }

    #[test]
    fn enforce_length_flags_truncation_as_retryable() {
        let s = enforce_length(chunked(payload(100), 30), 150);
        let err = collect(s).unwrap_err();
        assert!(err.is_retryable());
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn enforce_length_flags_overrun() {
        let s = enforce_length(chunked(payload(100), 30), 50);
        assert!(collect(s).unwrap_err().to_string().contains("overran"));
    }

    #[test]
    fn enforce_length_ignores_early_stop() {
        // A consumer that stops pulling must not see a truncation error.
        let mut s = enforce_length(chunked(payload(100), 10), 100);
        assert!(s.next().unwrap().is_ok());
        drop(s);
    }

    #[test]
    fn error_stream_propagates() {
        let s = error(ScoopError::NotFound("gone".into()));
        assert!(collect(s).is_err());
    }

    #[test]
    fn map_chunks_transforms() {
        let s = chunked(Bytes::from_static(b"abcdef"), 2);
        let upper = s.map_chunks(|c| {
            Ok(Bytes::from(
                c.iter().map(|b| b.to_ascii_uppercase()).collect::<Vec<u8>>(),
            ))
        });
        assert_eq!(collect(upper).unwrap(), "ABCDEF");
    }
}
