//! Per-block zone-map statistics for store-side data skipping.
//!
//! At PUT time the indexing storlet divides a CSV object into record-aligned
//! byte blocks and records, per block and per column, the evidence a planner
//! needs to answer "can any record in this block match the pushdown
//! predicate?": numeric min/max over fields that parse as `f64`, string
//! min/max over the raw field bytes, a NULL presence flag, and an optional
//! 64-bit bloom digest for low-cardinality string columns. The stats are
//! serialized into a compact percent-escaped text form and chunked into
//! numbered `x-object-meta-scoop-stats-*` metadata values
//! ([`crate::headers::SCOOP_STATS_PREFIX`]), so they persist, replicate
//! and survive exactly like user metadata.
//!
//! Staleness is handled by embedding the object's etag: a planner must treat
//! stats whose etag differs from the stored object's as absent and fall back
//! to a full scan. Everything here is *advisory* — a decoding failure or a
//! missing column never makes a query wrong, only slower.
//!
//! This module holds the data model and codec only; predicate pruning lives
//! next to the predicate type (`scoop_storlets::planner`), keeping
//! `scoop_common` free of CSV dependencies.

use crate::hash::hash64;
use crate::{Result, ScoopError};
use std::collections::BTreeMap;

/// Longest string literal kept verbatim in a zone map. A longer *minimum* is
/// truncated to this many bytes — a prefix is still a sound lower bound — but
/// a longer *maximum* is dropped entirely, because a prefix of the max is NOT
/// an upper bound.
pub const MAX_STRING_STAT: usize = 16;

/// Distinct-value ceiling for building a bloom digest: columns with more
/// distinct strings per block are not worth a digest (it would be saturated).
pub const BLOOM_MAX_DISTINCT: usize = 32;

/// Metadata chunk payload size. Each `x-object-meta-scoop-stats-N` value
/// stays comfortably header-sized.
pub const META_CHUNK: usize = 256;

/// Per-column statistics over one record block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnStats {
    /// Numeric `(min, max)` over fields that parse as finite-or-infinite
    /// `f64` (NaN fields are excluded: no comparison can select them).
    pub num: Option<(f64, f64)>,
    /// Smallest raw field value, possibly truncated to [`MAX_STRING_STAT`]
    /// bytes (a prefix is a sound lower bound).
    pub str_min: Option<String>,
    /// Largest raw field value; `None` when unknown *or* when the true max
    /// was too long to store (a prefix would be unsound as an upper bound).
    pub str_max: Option<String>,
    /// Any empty/absent (NULL) field in the block.
    pub has_null: bool,
    /// Any non-empty field in the block.
    pub has_value: bool,
    /// 64-bit bloom digest of the distinct field values, present only when
    /// the block stayed under [`BLOOM_MAX_DISTINCT`] distinct strings.
    pub bloom: Option<u64>,
}

/// One record-aligned byte block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockStats {
    /// First byte of the block (a record start, or 0).
    pub start: u64,
    /// One past the last byte of the block (a record end boundary).
    pub end: u64,
    /// Data records in the block (header row excluded).
    pub rows: u64,
    /// Per-column stats, parallel to [`ObjectStats::columns`].
    pub columns: Vec<ColumnStats>,
}

/// The full per-object index: schema, block layout, per-block zone maps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectStats {
    /// Etag of the object bytes the stats describe; a mismatch against the
    /// stored object means the stats are stale and must be ignored.
    pub etag: String,
    /// Whether byte 0 starts a header row (owned by block 0, not counted).
    pub has_header: bool,
    /// Column names in file order.
    pub columns: Vec<String>,
    /// Record-aligned blocks tiling `[0, object_len)` in order.
    pub blocks: Vec<BlockStats>,
}

/// The two bloom probe positions for a field value (double hashing over the
/// workspace fingerprint; 64-bit filter).
pub fn bloom_mask(value: &str) -> u64 {
    let h = hash64(value.as_bytes());
    let b1 = (h & 63) as u32;
    let b2 = ((h >> 8) & 63) as u32;
    (1u64 << b1) | (1u64 << b2)
}

impl ColumnStats {
    /// Fold one field value (raw bytes, already unquoted) into the stats.
    /// `distinct` is the builder-side scratch set for bloom construction.
    pub fn observe(&mut self, field: &str, distinct: &mut Vec<String>) {
        if field.is_empty() {
            self.has_null = true;
            return;
        }
        self.has_value = true;
        if let Ok(v) = field.parse::<f64>() {
            if !v.is_nan() {
                self.num = Some(match self.num {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        if self.str_min.as_deref().is_none_or(|m| field < m) {
            // Eager truncation is sound for the *min*: a prefix only lowers
            // the bound further.
            self.str_min = Some(truncate_prefix(field));
        }
        // The max is tracked exactly while the block is open — truncating
        // here would be unsound (a prefix is below the true max), and
        // poisoning to `None` here could be undone by a later smaller value.
        // [`Self::seal`] drops overlong maxima once the block closes.
        if self.str_max.as_deref().is_none_or(|m| field > m) {
            self.str_max = Some(field.to_string());
        }
        if distinct.len() <= BLOOM_MAX_DISTINCT && !distinct.iter().any(|d| d == field) {
            distinct.push(field.to_string());
        }
    }

    /// Close the stats for serialization: an overlong exact max becomes
    /// "unknown" (`None`) since only a prefix could be stored and a prefix
    /// of the max is not an upper bound.
    pub fn seal(&mut self) {
        if self.str_max.as_ref().is_some_and(|m| m.len() > MAX_STRING_STAT) {
            self.str_max = None;
        }
    }
}

/// Truncate to a char-boundary prefix of at most [`MAX_STRING_STAT`] bytes.
fn truncate_prefix(s: &str) -> String {
    if s.len() <= MAX_STRING_STAT {
        return s.to_string();
    }
    let mut end = MAX_STRING_STAT;
    while end > 0 && !s.is_char_boundary(end) {
        end = end.saturating_sub(1);
    }
    s.get(..end).unwrap_or("").to_string()
}

/// Incrementally builds [`ObjectStats`] as records stream through the
/// indexing storlet. Callers feed parsed records via [`Self::record`] and
/// byte positions via the record's length; block boundaries are cut at
/// record boundaries once a block exceeds `block_bytes`.
#[derive(Debug)]
pub struct StatsBuilder {
    block_bytes: u64,
    columns: Vec<String>,
    has_header: bool,
    blocks: Vec<BlockStats>,
    cur: BlockStats,
    cur_distinct: Vec<Vec<String>>,
    offset: u64,
}

impl StatsBuilder {
    /// Start a builder for an object with the given schema. `block_bytes`
    /// is the nominal block size; each block covers at least one record.
    pub fn new(columns: Vec<String>, has_header: bool, block_bytes: u64) -> StatsBuilder {
        let ncols = columns.len();
        StatsBuilder {
            block_bytes: block_bytes.max(1),
            columns,
            has_header,
            blocks: Vec::new(),
            cur: BlockStats { columns: vec![ColumnStats::default(); ncols], ..Default::default() },
            cur_distinct: vec![Vec::new(); ncols],
            offset: 0,
        }
    }

    /// Account bytes that belong to the current block but carry no data
    /// records (the header row, blank lines).
    pub fn skip_bytes(&mut self, len: u64) {
        self.offset += len;
    }

    /// Fold one data record into the current block. `fields` are the parsed
    /// field values; `len` is the record's on-disk byte length including its
    /// newline.
    pub fn record(&mut self, fields: &[&str], len: u64) {
        for (i, (col, distinct)) in self
            .cur
            .columns
            .iter_mut()
            .zip(self.cur_distinct.iter_mut())
            .enumerate()
        {
            let field = fields.get(i).copied().unwrap_or("");
            col.observe(field, distinct);
        }
        self.cur.rows += 1;
        self.offset += len;
        if self.offset.saturating_sub(self.cur.start) >= self.block_bytes {
            self.cut();
        }
    }

    /// Close the current block at the current offset.
    fn cut(&mut self) {
        if self.offset == self.cur.start {
            return;
        }
        let ncols = self.columns.len();
        let mut done = std::mem::replace(
            &mut self.cur,
            BlockStats {
                start: self.offset,
                columns: vec![ColumnStats::default(); ncols],
                ..Default::default()
            },
        );
        done.end = self.offset;
        for (col, distinct) in done.columns.iter_mut().zip(&mut self.cur_distinct) {
            col.seal();
            if !distinct.is_empty() && distinct.len() <= BLOOM_MAX_DISTINCT {
                col.bloom = Some(distinct.iter().fold(0u64, |m, v| m | bloom_mask(v)));
            }
            distinct.clear();
        }
        self.blocks.push(done);
    }

    /// Finish: close the open block and stamp the object identity.
    pub fn finish(mut self, etag: String) -> ObjectStats {
        self.cut();
        ObjectStats {
            etag,
            has_header: self.has_header,
            columns: self.columns,
            blocks: self.blocks,
        }
    }

    /// Total bytes folded so far (diagnostics).
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------
//
// Compact line-free text form (the disk backend's metadata sidecar cannot
// hold tabs or newlines, and HTTP header values should not either):
//
//   v1|<etag>|<hdr 0/1>|<col;col;...>|<block>|<block>|...
//   block := s:<start>;e:<end>;r:<rows>;<colstat>;<colstat>;...
//   colstat := [n<min>,<max>][m<str_min>][M<str_max>][u][x][b<bloom hex>]
//
// Strings are percent-escaped so the `|`, `;`, `,`, `%` structure bytes and
// any control bytes never appear raw.

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b'|' | b';' | b',' => out.push_str(&format!("%{b:02X}")),
            0x00..=0x1F | 0x7F => out.push_str(&format!("%{b:02X}")),
            _ => out.push(b as char),
        }
    }
    out
}

fn unesc(s: &str) -> Result<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b == b'%' {
            let hex = bytes
                .get(i.saturating_add(1)..i.saturating_add(3))
                .and_then(|h| std::str::from_utf8(h).ok())
                .ok_or_else(|| ScoopError::InvalidRequest("bad stats %-escape".into()))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|_| ScoopError::InvalidRequest("bad stats %-escape".into()))?;
            out.push(v);
            i = i.saturating_add(3);
        } else {
            out.push(b);
            i = i.saturating_add(1);
        }
    }
    String::from_utf8(out).map_err(|_| ScoopError::InvalidRequest("non-utf8 stats".into()))
}

/// `f64` text round-trip: Rust's shortest-repr `Display` re-parses exactly.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn parse_f64(s: &str) -> Result<f64> {
    s.parse::<f64>()
        .map_err(|_| ScoopError::InvalidRequest(format!("bad stats number '{s}'")))
}

fn parse_u64(s: &str) -> Result<u64> {
    s.parse::<u64>()
        .map_err(|_| ScoopError::InvalidRequest(format!("bad stats integer '{s}'")))
}

impl ObjectStats {
    /// Serialize into the compact single-string form.
    pub fn encode(&self) -> String {
        let mut out = String::from("v1|");
        out.push_str(&esc(&self.etag));
        out.push('|');
        out.push(if self.has_header { '1' } else { '0' });
        out.push('|');
        out.push_str(&self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(";"));
        for b in &self.blocks {
            out.push('|');
            out.push_str(&format!("s:{};e:{};r:{}", b.start, b.end, b.rows));
            for c in &b.columns {
                out.push(';');
                if let Some((lo, hi)) = c.num {
                    out.push_str(&format!("n{},{}", fmt_f64(lo), fmt_f64(hi)));
                }
                if let Some(m) = &c.str_min {
                    out.push('m');
                    out.push_str(&esc(m));
                    out.push(',');
                }
                if let Some(m) = &c.str_max {
                    out.push('M');
                    out.push_str(&esc(m));
                    out.push(',');
                }
                if c.has_null {
                    out.push('u');
                }
                if c.has_value {
                    out.push('x');
                }
                if let Some(bloom) = c.bloom {
                    out.push_str(&format!("b{bloom:x}"));
                }
            }
        }
        out
    }

    /// Decode the compact form. Total: any malformed input is an error, never
    /// a panic — the planner treats errors as "no stats".
    pub fn decode(s: &str) -> Result<ObjectStats> {
        let mut parts = s.split('|');
        let bad = |what: &str| ScoopError::InvalidRequest(format!("stats decode: {what}"));
        if parts.next() != Some("v1") {
            return Err(bad("unknown version"));
        }
        let etag = unesc(parts.next().ok_or_else(|| bad("missing etag"))?)?;
        let has_header = match parts.next() {
            Some("1") => true,
            Some("0") => false,
            _ => return Err(bad("bad header flag")),
        };
        let cols_raw = parts.next().ok_or_else(|| bad("missing columns"))?;
        let columns = cols_raw
            .split(';')
            .filter(|c| !c.is_empty())
            .map(unesc)
            .collect::<Result<Vec<String>>>()?;
        if columns.is_empty() {
            return Err(bad("empty schema"));
        }
        let mut blocks = Vec::new();
        for braw in parts {
            let mut fields = braw.split(';');
            let mut take_kv = |prefix: &str| -> Result<u64> {
                let f = fields.next().ok_or_else(|| bad("truncated block"))?;
                parse_u64(
                    f.strip_prefix(prefix)
                        .ok_or_else(|| bad("bad block field"))?,
                )
            };
            let start = take_kv("s:")?;
            let end = take_kv("e:")?;
            let rows = take_kv("r:")?;
            if end <= start {
                return Err(bad("empty block range"));
            }
            if let Some(prev) = blocks.last() {
                let prev: &BlockStats = prev;
                if prev.end != start {
                    return Err(bad("non-contiguous blocks"));
                }
            }
            let mut cstats = Vec::with_capacity(columns.len());
            for craw in fields {
                cstats.push(decode_colstat(craw)?);
            }
            if cstats.len() != columns.len() {
                return Err(bad("column count mismatch"));
            }
            blocks.push(BlockStats { start, end, rows, columns: cstats });
        }
        Ok(ObjectStats { etag, has_header, columns, blocks })
    }

    /// Split the encoded form into numbered metadata entries
    /// (`<prefix>0`, `<prefix>1`, ...), each at most [`META_CHUNK`] bytes.
    pub fn to_metadata(&self) -> Vec<(String, String)> {
        let encoded = self.encode();
        let bytes = encoded.as_bytes();
        let mut out = Vec::new();
        let mut i = 0;
        let mut n = 0;
        while i < bytes.len() {
            let end = i.saturating_add(META_CHUNK).min(bytes.len());
            // The encoded form is ASCII (escaping covers non-ASCII-safe
            // bytes? no — unescaped UTF-8 may remain); back off to a char
            // boundary so each chunk stays valid UTF-8.
            let mut cut = end;
            while cut > i && !encoded.is_char_boundary(cut) {
                cut = cut.saturating_sub(1);
            }
            if cut == i {
                break;
            }
            out.push((
                format!("{}{n}", crate::headers::SCOOP_STATS_PREFIX),
                encoded.get(i..cut).unwrap_or("").to_string(),
            ));
            i = cut;
            n += 1;
        }
        if out.is_empty() {
            out.push((format!("{}0", crate::headers::SCOOP_STATS_PREFIX), encoded));
        }
        out
    }

    /// Reassemble and decode stats from metadata key/value pairs. Returns
    /// `None` when no stats chunks are present at all; `Err` when chunks
    /// exist but do not decode (the caller falls back to a full scan).
    pub fn from_metadata<'a>(
        meta: impl Iterator<Item = (&'a str, &'a str)>,
    ) -> Result<Option<ObjectStats>> {
        let mut chunks: BTreeMap<u64, &str> = BTreeMap::new();
        for (k, v) in meta {
            if let Some(suffix) = k.strip_prefix(crate::headers::SCOOP_STATS_PREFIX) {
                let n = parse_u64(suffix)?;
                chunks.insert(n, v);
            }
        }
        if chunks.is_empty() {
            return Ok(None);
        }
        // Chunks must be gapless 0..N.
        let mut encoded = String::new();
        for (i, (n, v)) in chunks.iter().enumerate() {
            if *n != i as u64 {
                return Err(ScoopError::InvalidRequest("stats chunk gap".into()));
            }
            encoded.push_str(v);
        }
        Self::decode(&encoded).map(Some)
    }

    /// Total byte length covered by the blocks (== object size when the
    /// index is complete).
    pub fn covered_len(&self) -> u64 {
        self.blocks.last().map(|b| b.end).unwrap_or(0)
    }
}

fn decode_colstat(raw: &str) -> Result<ColumnStats> {
    let bad = |what: &str| ScoopError::InvalidRequest(format!("stats colstat: {what}"));
    let mut c = ColumnStats::default();
    let bytes = raw.as_bytes();
    let mut i = 0;
    // Fields are tagged and self-delimiting: numeric/bloom run to the next
    // tag letter boundary; strings run to their `,` terminator.
    while let Some(&tag) = bytes.get(i) {
        let rest = raw.get(i.saturating_add(1)..).unwrap_or("");
        match tag {
            b'n' => {
                let end = rest
                    .find(|ch: char| !(ch.is_ascii_digit() || "+-.,eEinfaN".contains(ch)))
                    .unwrap_or(rest.len());
                let (lo, hi) = rest
                    .get(..end)
                    .unwrap_or("")
                    .split_once(',')
                    .ok_or_else(|| bad("bad numeric range"))?;
                c.num = Some((parse_f64(lo)?, parse_f64(hi)?));
                i = i.saturating_add(1).saturating_add(end);
            }
            b'm' | b'M' => {
                let end = rest.find(',').ok_or_else(|| bad("unterminated string stat"))?;
                let s = unesc(rest.get(..end).unwrap_or(""))?;
                if tag == b'm' {
                    c.str_min = Some(s);
                } else {
                    c.str_max = Some(s);
                }
                i = i.saturating_add(2).saturating_add(end);
            }
            b'u' => {
                c.has_null = true;
                i = i.saturating_add(1);
            }
            b'x' => {
                c.has_value = true;
                i = i.saturating_add(1);
            }
            b'b' => {
                let end = rest
                    .find(|ch: char| !ch.is_ascii_hexdigit())
                    .unwrap_or(rest.len());
                c.bloom = Some(
                    u64::from_str_radix(rest.get(..end).unwrap_or(""), 16)
                        .map_err(|_| bad("bad bloom digest"))?,
                );
                i = i.saturating_add(1).saturating_add(end);
            }
            _ => return Err(bad("unknown tag")),
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObjectStats {
        let mut b = StatsBuilder::new(
            vec!["vid".into(), "index".into(), "city".into()],
            true,
            32,
        );
        b.skip_bytes(15); // header row
        b.record(&["m1", "100.5", "Rotterdam"], 20);
        b.record(&["m2", "", "Paris"], 12);
        b.record(&["m3", "50", "Utrecht"], 14);
        b.record(&["m4", "75", "a|b;c,d%e"], 16);
        b.finish("etag123".into())
    }

    #[test]
    fn builder_blocks_tile_and_count() {
        let s = sample();
        assert_eq!(s.columns.len(), 3);
        assert!(!s.blocks.is_empty());
        assert_eq!(s.blocks[0].start, 0);
        for w in s.blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start, "blocks must tile");
        }
        assert_eq!(s.covered_len(), 15 + 20 + 12 + 14 + 16);
        assert_eq!(s.blocks.iter().map(|b| b.rows).sum::<u64>(), 4);
        // Column 1 saw a NULL and numeric values.
        let col1: Vec<&ColumnStats> = s.blocks.iter().map(|b| &b.columns[1]).collect();
        assert!(col1.iter().any(|c| c.has_null));
        assert!(col1.iter().any(|c| c.num.is_some()));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sample();
        let enc = s.encode();
        assert!(!enc.contains('\t') && !enc.contains('\n'), "sidecar-safe");
        let dec = ObjectStats::decode(&enc).unwrap();
        assert_eq!(dec, s);
    }

    #[test]
    fn metadata_chunking_roundtrip() {
        let mut b = StatsBuilder::new(
            (0..8).map(|i| format!("col{i}")).collect(),
            false,
            16,
        );
        for i in 0..200u64 {
            let v = format!("value-{i}");
            let fields: Vec<&str> = (0..8).map(|_| v.as_str()).collect();
            b.record(&fields, 40);
        }
        let s = b.finish("bigetag".into());
        let meta = s.to_metadata();
        assert!(meta.len() > 1, "large stats must chunk");
        for (_, v) in &meta {
            assert!(v.len() <= META_CHUNK);
        }
        let dec = ObjectStats::from_metadata(
            meta.iter().map(|(k, v)| (k.as_str(), v.as_str())),
        )
        .unwrap()
        .unwrap();
        assert_eq!(dec, s);
        // Chunk order in the map must not matter.
        let mut rev: Vec<(&str, &str)> =
            meta.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        rev.reverse();
        assert_eq!(ObjectStats::from_metadata(rev.into_iter()).unwrap().unwrap(), s);
    }

    #[test]
    fn absent_and_corrupt_metadata() {
        assert!(ObjectStats::from_metadata(std::iter::empty()).unwrap().is_none());
        let garbage = [("x-object-meta-scoop-stats-0", "v9|zzz")];
        assert!(ObjectStats::from_metadata(garbage.iter().copied()).is_err());
        let gap = [
            ("x-object-meta-scoop-stats-0", "v1|e|0|a"),
            ("x-object-meta-scoop-stats-2", "rest"),
        ];
        assert!(ObjectStats::from_metadata(gap.iter().copied()).is_err());
        assert!(ObjectStats::decode("").is_err());
        assert!(ObjectStats::decode("v1|e|0|").is_err(), "empty schema");
        assert!(ObjectStats::decode("v1|e|2|a").is_err(), "bad header flag");
    }

    #[test]
    fn string_stat_truncation_is_one_sided() {
        let mut c = ColumnStats::default();
        let mut d = Vec::new();
        let long = "z".repeat(40);
        c.observe(&long, &mut d);
        c.observe("aa", &mut d);
        c.seal();
        // min: truncated prefix (sound lower bound); max: dropped (a prefix
        // would claim values above the true max are impossible), and a later
        // smaller value must not resurrect a bounded max.
        assert_eq!(c.str_min.as_deref(), Some("aa"));
        assert_eq!(c.str_max, None, "overlong max must stay unknown");

        let mut c = ColumnStats::default();
        c.observe("bb", &mut d);
        c.observe("cc", &mut d);
        c.seal();
        assert_eq!(c.str_max.as_deref(), Some("cc"));
    }

    #[test]
    fn bloom_digest_only_for_low_cardinality() {
        let mut b = StatsBuilder::new(vec!["city".into()], false, u64::MAX);
        for i in 0..100u64 {
            let v = format!("city-{i}");
            b.record(&[v.as_str()], 10);
        }
        let s = b.finish("e".into());
        assert_eq!(s.blocks[0].columns[0].bloom, None, "high cardinality");

        let mut b = StatsBuilder::new(vec!["city".into()], false, u64::MAX);
        for _ in 0..100u64 {
            b.record(&["Rotterdam"], 10);
            b.record(&["Paris"], 6);
        }
        let s = b.finish("e".into());
        let bloom = s.blocks[0].columns[0].bloom.expect("low cardinality digest");
        assert_eq!(bloom & bloom_mask("Rotterdam"), bloom_mask("Rotterdam"));
        assert_eq!(bloom & bloom_mask("Paris"), bloom_mask("Paris"));
    }

    #[test]
    fn numeric_stats_handle_infinities_and_nan() {
        let mut c = ColumnStats::default();
        let mut d = Vec::new();
        c.observe("inf", &mut d);
        c.observe("-inf", &mut d);
        c.observe("NaN", &mut d);
        c.observe("3.5", &mut d);
        let (lo, hi) = c.num.unwrap();
        assert_eq!(lo, f64::NEG_INFINITY);
        assert_eq!(hi, f64::INFINITY);
        // And they survive the codec.
        let s = ObjectStats {
            etag: "e".into(),
            has_header: false,
            columns: vec!["v".into()],
            blocks: vec![BlockStats { start: 0, end: 10, rows: 4, columns: vec![c] }],
        };
        assert_eq!(ObjectStats::decode(&s.encode()).unwrap(), s);
    }
}
