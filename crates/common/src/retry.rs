//! Retry with exponential backoff and deterministic jitter.
//!
//! Every layer of the ingest path retries transient failures the same way:
//! the Swift client re-dispatches whole requests, the connector resumes
//! interrupted streams with ranged GETs, and the compute scheduler re-runs
//! failed tasks. All of them share this policy so the fault-injection suite
//! can reason about one retry budget end to end.
//!
//! Jitter is drawn from a [`XorShift64`] seeded per policy, so a chaos run
//! with a fixed master seed replays byte-identically.

use crate::deadline::Deadline;
use crate::error::{Result, ScoopError};
use crate::rng::XorShift64;
use std::time::Duration;

/// How to retry a retryable operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff delay.
    pub max_delay: Duration,
    /// Seed for the jitter stream (derive with [`crate::rng::derive_seed`]).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            seed: 0x5C00_95EE_D000_0001,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (attempt once, propagate the error).
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..Default::default() }
    }

    /// Builder: set the attempt budget (clamped to at least 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Builder: set the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the backoff before the first retry.
    pub fn with_base_delay(mut self, delay: Duration) -> Self {
        self.base_delay = delay;
        self
    }

    /// Builder: set the cap on any single backoff sleep.
    pub fn with_max_delay(mut self, delay: Duration) -> Self {
        self.max_delay = delay;
        self
    }

    /// Backoff before retry number `retry` (0-based): exponential growth
    /// capped at `max_delay`, scaled by a jitter factor in `[0.5, 1.0)` so
    /// concurrent retriers spread out instead of thundering together.
    ///
    /// Computed in 128-bit nanoseconds: `base << retry` overflows a u32
    /// multiplier at retry 32 and u64 nanos soon after, and a wrapped or
    /// saturated intermediate must never escape the `max_delay` cap.
    pub fn backoff(&self, retry: u32, rng: &mut XorShift64) -> Duration {
        let base = self.base_delay.as_nanos().max(1);
        let cap = self.max_delay.as_nanos();
        let exp = if retry >= 64 {
            cap
        } else {
            base.saturating_mul(1u128 << retry).min(cap)
        };
        let capped = Duration::from_nanos(u64::try_from(exp).unwrap_or(u64::MAX));
        capped.mul_f64(0.5 + rng.next_f64() / 2.0)
    }

    /// Run `op` until it succeeds, fails non-retryably, or the attempt budget
    /// is exhausted. Returns the value plus the number of retries performed
    /// (0 when the first attempt succeeded).
    pub fn run<T>(&self, op: impl FnMut() -> Result<T>) -> Result<(T, u32)> {
        self.run_with_deadline(Deadline::none(), "retry", op)
    }

    /// Like [`RetryPolicy::run`] but bounded by `deadline`: fails with a
    /// `deadline` error before the first attempt if the budget is already
    /// gone, stops retrying (surfacing the last real error) once it expires
    /// mid-loop, and clamps every backoff sleep to the remaining budget.
    pub fn run_with_deadline<T>(
        &self,
        deadline: Deadline,
        label: &str,
        mut op: impl FnMut() -> Result<T>,
    ) -> Result<(T, u32)> {
        deadline.check(label)?;
        let mut rng = XorShift64::new(self.seed);
        let mut retries = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok((v, retries)),
                Err(e)
                    if e.is_retryable()
                        && retries + 1 < self.max_attempts
                        && !deadline.expired() =>
                {
                    std::thread::sleep(deadline.clamp_sleep(self.backoff(retries, &mut rng)));
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Like [`RetryPolicy::run`] but discards the retry count and wraps the final
/// failure with a context label.
pub fn retry<T>(
    policy: &RetryPolicy,
    label: &str,
    op: impl FnMut() -> Result<T>,
) -> Result<T> {
    policy.run(op).map(|(v, _)| v).map_err(|e| match e {
        ScoopError::Io(io) => {
            ScoopError::Io(std::io::Error::other(format!("{label}: {io}")))
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn flaky(fail_first: u32) -> impl FnMut() -> Result<u32> {
        let calls = AtomicU32::new(0);
        move || {
            let n = calls.fetch_add(1, Ordering::Relaxed);
            if n < fail_first {
                Err(ScoopError::Io(std::io::Error::other("transient")))
            } else {
                Ok(n)
            }
        }
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy::default();
        let (v, retries) = policy.run(flaky(3)).unwrap();
        assert_eq!(v, 3);
        assert_eq!(retries, 3);
    }

    #[test]
    fn exhausts_attempt_budget() {
        let policy = RetryPolicy::default().with_max_attempts(2);
        assert!(policy.run(flaky(5)).is_err());
        let (_, retries) = policy.run(flaky(1)).unwrap();
        assert_eq!(retries, 1);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let err = policy
            .run(|| -> Result<()> {
                calls += 1;
                Err(ScoopError::NotFound("gone".into()))
            })
            .unwrap_err();
        assert_eq!(err.kind(), "not_found");
        assert_eq!(calls, 1);
    }

    #[test]
    fn none_policy_attempts_once() {
        assert!(RetryPolicy::none().run(flaky(1)).is_err());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
            ..Default::default()
        };
        let mut rng = XorShift64::new(1);
        let d0 = policy.backoff(0, &mut rng);
        assert!(d0 >= Duration::from_millis(5) && d0 < Duration::from_millis(10));
        let d4 = policy.backoff(4, &mut rng);
        assert!(d4 <= Duration::from_millis(35));
        // Huge retry numbers must not overflow the shift.
        let _ = policy.backoff(63, &mut rng);
    }

    #[test]
    fn backoff_is_overflow_safe_and_capped_at_high_attempts() {
        // Regression: a u32-multiplier shift wraps at retry 32 and u64
        // nanos overflow shortly after; every high attempt count must stay
        // inside the configured cap (jitter keeps it in [cap/2, cap)).
        let policy = RetryPolicy::default()
            .with_base_delay(Duration::from_millis(3))
            .with_max_delay(Duration::from_millis(40));
        let mut rng = XorShift64::new(7);
        for retry in [32u32, 33, 63, 64, 65, 127, 128, u32::MAX] {
            let d = policy.backoff(retry, &mut rng);
            assert!(d <= Duration::from_millis(40), "retry {retry} escaped cap: {d:?}");
            assert!(d >= Duration::from_millis(20), "retry {retry} lost the backoff: {d:?}");
        }
        // A sub-nanosecond-free zero base still respects the cap.
        let zero = RetryPolicy::default()
            .with_base_delay(Duration::ZERO)
            .with_max_delay(Duration::from_millis(1));
        assert!(zero.backoff(40, &mut rng) <= Duration::from_millis(1));
    }

    #[test]
    fn expired_deadline_fails_before_first_attempt() {
        let policy = RetryPolicy::default();
        let deadline = Deadline::at(std::time::Instant::now() - Duration::from_millis(1));
        let mut calls = 0;
        let err = policy
            .run_with_deadline(deadline, "GET /c/o", || -> Result<()> {
                calls += 1;
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err.kind(), "deadline");
        assert_eq!(calls, 0, "no attempt may start after the budget is gone");
    }

    #[test]
    fn deadline_expiry_mid_loop_surfaces_the_real_error() {
        // Tiny budget: the first attempt runs, the deadline lapses, and the
        // loop returns the underlying I/O error instead of retrying on.
        let policy = RetryPolicy::default().with_max_attempts(50);
        let deadline = Deadline::within(Duration::from_millis(2));
        let err = policy
            .run_with_deadline(deadline, "GET /c/o", || -> Result<()> {
                std::thread::sleep(Duration::from_millis(3));
                Err(ScoopError::Io(std::io::Error::other("slow replica")))
            })
            .unwrap_err();
        assert_eq!(err.kind(), "io", "mid-loop expiry keeps the causal error");
    }

    #[test]
    fn retry_helper_labels_io_errors() {
        let policy = RetryPolicy::none();
        let err = retry(&policy, "GET /c/o", || -> Result<()> {
            Err(ScoopError::Io(std::io::Error::other("stalled")))
        })
        .unwrap_err();
        assert!(err.to_string().contains("GET /c/o"), "{err}");
    }
}
