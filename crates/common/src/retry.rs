//! Retry with exponential backoff and deterministic jitter.
//!
//! Every layer of the ingest path retries transient failures the same way:
//! the Swift client re-dispatches whole requests, the connector resumes
//! interrupted streams with ranged GETs, and the compute scheduler re-runs
//! failed tasks. All of them share this policy so the fault-injection suite
//! can reason about one retry budget end to end.
//!
//! Jitter is drawn from a [`XorShift64`] seeded per policy, so a chaos run
//! with a fixed master seed replays byte-identically.

use crate::error::{Result, ScoopError};
use crate::rng::XorShift64;
use std::time::Duration;

/// How to retry a retryable operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff delay.
    pub max_delay: Duration,
    /// Seed for the jitter stream (derive with [`crate::rng::derive_seed`]).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            seed: 0x5C00_95EE_D000_0001,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (attempt once, propagate the error).
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..Default::default() }
    }

    /// Builder: set the attempt budget (clamped to at least 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Builder: set the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Backoff before retry number `retry` (0-based): exponential growth
    /// capped at `max_delay`, scaled by a jitter factor in `[0.5, 1.0)` so
    /// concurrent retriers spread out instead of thundering together.
    pub fn backoff(&self, retry: u32, rng: &mut XorShift64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
            .min(self.max_delay);
        exp.mul_f64(0.5 + rng.next_f64() / 2.0)
    }

    /// Run `op` until it succeeds, fails non-retryably, or the attempt budget
    /// is exhausted. Returns the value plus the number of retries performed
    /// (0 when the first attempt succeeded).
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<(T, u32)> {
        let mut rng = XorShift64::new(self.seed);
        let mut retries = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok((v, retries)),
                Err(e) if e.is_retryable() && retries + 1 < self.max_attempts => {
                    std::thread::sleep(self.backoff(retries, &mut rng));
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Like [`RetryPolicy::run`] but discards the retry count and wraps the final
/// failure with a context label.
pub fn retry<T>(
    policy: &RetryPolicy,
    label: &str,
    op: impl FnMut() -> Result<T>,
) -> Result<T> {
    policy.run(op).map(|(v, _)| v).map_err(|e| match e {
        ScoopError::Io(io) => {
            ScoopError::Io(std::io::Error::other(format!("{label}: {io}")))
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn flaky(fail_first: u32) -> impl FnMut() -> Result<u32> {
        let calls = AtomicU32::new(0);
        move || {
            let n = calls.fetch_add(1, Ordering::Relaxed);
            if n < fail_first {
                Err(ScoopError::Io(std::io::Error::other("transient")))
            } else {
                Ok(n)
            }
        }
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy::default();
        let (v, retries) = policy.run(flaky(3)).unwrap();
        assert_eq!(v, 3);
        assert_eq!(retries, 3);
    }

    #[test]
    fn exhausts_attempt_budget() {
        let policy = RetryPolicy::default().with_max_attempts(2);
        assert!(policy.run(flaky(5)).is_err());
        let (_, retries) = policy.run(flaky(1)).unwrap();
        assert_eq!(retries, 1);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let err = policy
            .run(|| -> Result<()> {
                calls += 1;
                Err(ScoopError::NotFound("gone".into()))
            })
            .unwrap_err();
        assert_eq!(err.kind(), "not_found");
        assert_eq!(calls, 1);
    }

    #[test]
    fn none_policy_attempts_once() {
        assert!(RetryPolicy::none().run(flaky(1)).is_err());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
            ..Default::default()
        };
        let mut rng = XorShift64::new(1);
        let d0 = policy.backoff(0, &mut rng);
        assert!(d0 >= Duration::from_millis(5) && d0 < Duration::from_millis(10));
        let d4 = policy.backoff(4, &mut rng);
        assert!(d4 <= Duration::from_millis(35));
        // Huge retry numbers must not overflow the shift.
        let _ = policy.backoff(63, &mut rng);
    }

    #[test]
    fn retry_helper_labels_io_errors() {
        let policy = RetryPolicy::none();
        let err = retry(&policy, "GET /c/o", || -> Result<()> {
            Err(ScoopError::Io(std::io::Error::other("stalled")))
        })
        .unwrap_err();
        assert!(err.to_string().contains("GET /c/o"), "{err}");
    }
}
