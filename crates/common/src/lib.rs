//! Shared primitives for the Scoop workspace.
//!
//! This crate deliberately stays tiny and dependency-light: everything in the
//! workspace (object store, storlets, SQL engine, compute framework, cluster
//! simulator) builds on the types defined here.
//!
//! * [`error`] — the workspace-wide [`ScoopError`] and [`Result`] alias.
//! * [`stream`] — chunked byte streams, the unit of data flow between the
//!   object store, the storlet engine and the compute layer.
//! * [`headers`] — every Scoop-specific `x-*` HTTP header name, in one place.
//! * [`hash`] — a fast, from-scratch 64/128-bit hash used by the consistent
//!   hash ring and object path hashing.
//! * [`bytesize`] — human-friendly byte quantities.
//! * [`timeseries`] — collectd-like metric recording for the cluster simulator.
//! * [`rng`] — deterministic seed derivation so every experiment is reproducible.
//! * [`retry`] — the shared retry/backoff policy used across the ingest path.
//! * [`deadline`] — query-scoped time budgets propagated through every layer.
//! * [`table`] — plain-text table rendering for the reproduction harness.
//! * [`telemetry`] — the process-wide metrics registry (counters, gauges,
//!   latency histograms) and request-scoped tracing spans.
//! * [`zonestats`] — per-block zone-map statistics (min/max, NULLs, bloom
//!   digests) and their object-metadata codec, powering store-side data
//!   skipping.

pub mod bytesize;
pub mod deadline;
pub mod error;
pub mod hash;
pub mod headers;
pub mod retry;
pub mod rng;
pub mod stream;
pub mod table;
pub mod telemetry;
pub mod timeseries;
pub mod zonestats;

pub use bytesize::ByteSize;
pub use deadline::Deadline;
pub use error::{ErrorClass, Result, ScoopError};
pub use retry::RetryPolicy;
pub use stream::{ByteStream, CountingStream, StreamExt};
