//! Property tests for the span trailer codec (`telemetry::encode_spans` /
//! `telemetry::decode_spans`).
//!
//! The codec carries server-side spans across the TCP data plane inside the
//! `x-scoop-server-spans` chunked trailer, so it owes the wire the same
//! contract as the frame codec: `encode → decode → encode` must reproduce
//! the exact trailer bytes for every batch the types can legally express,
//! and arbitrary (possibly hostile) trailer values must decode to a clean
//! error — never a panic, never a mangled span.

use proptest::prelude::*;
use scoop_common::telemetry::{self, layers, SpanRecord};

/// A legal span detail: anything `bound_detail` would keep. The recorder
/// bounds details to [`telemetry::MAX_SPAN_DETAIL`] bytes before they reach
/// the codec, so that is the domain the round trip must cover. Details may
/// hold the codec's own metacharacters (`%`, `~`, `;`) and non-ASCII — the
/// escape layer exists exactly for those.
fn detail() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            any::<char>(),          // printable ASCII
            Just('%'),
            Just('~'),
            Just(';'),              // the codec's own metacharacters
            Just('é'),
            Just('☃'),              // multi-byte UTF-8 rides the escape layer
            Just('\n'),
            Just('\t'),             // control bytes must be escaped
        ],
        0..40,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn span() -> impl Strategy<Value = SpanRecord> {
    (
        0usize..layers::ALL.len(),
        detail(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(layer, detail, start_us, duration_us, remote)| SpanRecord {
            layer: layers::ALL[layer],
            detail,
            start_us,
            duration_us,
            remote,
        })
}

proptest! {
    /// encode → decode → encode is byte-identical for every batch small
    /// enough to fit the trailer bound (so no span is dropped on the first
    /// encode and the comparison is about fidelity, not truncation).
    #[test]
    fn span_trailer_roundtrips_byte_identically(
        spans in proptest::collection::vec(span(), 0..12)
    ) {
        let wire = telemetry::encode_spans(&spans);
        let decoded = telemetry::decode_spans(&wire).expect("encoded batch must decode");
        let rewire = telemetry::encode_spans(&decoded);
        prop_assert_eq!(&wire, &rewire, "re-encode diverged from the first encode");
        // The decoded batch is the encoded prefix of the input: same
        // layers/timing/details in order (the encoder may drop a tail to
        // honor MAX_ENCODED_SPANS; it must never reorder or alter).
        prop_assert!(decoded.len() <= spans.len());
        for (d, s) in decoded.iter().zip(&spans) {
            prop_assert_eq!(d.layer, s.layer);
            prop_assert_eq!(d.start_us, s.start_us);
            prop_assert_eq!(d.duration_us, s.duration_us);
            prop_assert_eq!(&d.detail, &s.detail);
        }
    }

    /// The encoded value always fits one trailer line and stays CTL-free —
    /// the properties the HTTP framing depends on.
    #[test]
    fn encoded_trailer_is_bounded_printable_ascii(
        spans in proptest::collection::vec(span(), 0..64)
    ) {
        let wire = telemetry::encode_spans(&spans);
        prop_assert!(wire.len() <= telemetry::MAX_ENCODED_SPANS);
        prop_assert!(
            wire.bytes().all(|b| (0x20..=0x7e).contains(&b)),
            "trailer value must be printable ASCII"
        );
    }

    /// Arbitrary trailer values never panic the decoder, and whatever it
    /// accepts re-encodes cleanly (no half-parsed state escapes).
    #[test]
    fn decoder_total_on_arbitrary_input(s in "[ -~]{0,200}") {
        if let Ok(spans) = telemetry::decode_spans(&s) {
            let _ = telemetry::encode_spans(&spans);
        }
    }
}
