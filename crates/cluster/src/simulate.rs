//! The fluid pipeline simulation.

use crate::model::CostModel;
use crate::topology::Topology;
use scoop_common::timeseries::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Execution arm being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimMode {
    /// Ingest-then-compute: every raw byte crosses the inter-cluster link.
    Vanilla,
    /// Scoop pushdown: the store filters; only surviving bytes transfer.
    Pushdown,
    /// Columnar baseline: compressed transfer; selection (and, in the
    /// paper-faithful arm, column discard) at the compute side.
    Columnar {
        /// Transferred fraction of the raw dataset. The paper's Parquet arm
        /// ingests the whole compressed file (compression ratio only); the
        /// range-pruned extension multiplies in the kept-column share.
        transfer_ratio: f64,
        /// Fraction of raw bytes materialized at compute after decoding
        /// (1.0 when Spark decodes everything and discards columns itself).
        decoded_ratio: f64,
    },
}

/// One query execution to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimJob {
    /// Raw (CSV) dataset bytes scanned by the query.
    pub dataset_bytes: u64,
    /// Fraction of raw bytes the query discards (Table I "data selectivity").
    pub data_selectivity: f64,
    /// Execution arm.
    pub mode: SimMode,
    /// Number of tasks / object requests (partition count).
    pub tasks: usize,
}

/// Which constraint bound the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The inter-cluster load-balancer link.
    Network,
    /// Storage-node CPU (scan + storlet filtering).
    StorageCpu,
    /// Compute-node CPU (parse + SQL processing).
    ComputeCpu,
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// End-to-end query time in seconds (client-perceived, as the paper
    /// measures: ingestion + processing).
    pub duration: f64,
    /// Raw-byte processing rate at steady state (bytes/s).
    pub pipeline_rate: f64,
    /// Binding constraint at steady state.
    pub bottleneck: Bottleneck,
    /// Bytes that crossed the inter-cluster link.
    pub bytes_transferred: f64,
    /// Mean compute-cluster CPU utilization (percent of all compute cores).
    pub compute_cpu_pct: f64,
    /// Mean storage-cluster CPU utilization (percent).
    pub storage_cpu_pct: f64,
    /// Peak compute memory utilization (percent of compute RAM).
    pub compute_mem_pct: f64,
    /// Mean LB transmit rate during the transfer phase (bytes/s).
    pub lb_tx_rate: f64,
    /// collectd-like series: (group, metric) → samples.
    pub series: MetricsRegistry,
}

/// Simulate one query on a topology under a cost model.
///
/// ```
/// use scoop_cluster::{simulate::simulate, CostModel, SimJob, SimMode, Topology};
/// let job = SimJob {
///     dataset_bytes: 500_000_000_000,
///     data_selectivity: 0.9,
///     mode: SimMode::Pushdown,
///     tasks: 4000,
/// };
/// let report = simulate(&job, &Topology::osic(), &CostModel::paper_default());
/// assert!(report.duration > 0.0);
/// assert!(report.bytes_transferred < 100_000_000_000.0); // 90% filtered
/// ```
pub fn simulate(job: &SimJob, topology: &Topology, model: &CostModel) -> SimReport {
    let d = job.dataset_bytes as f64;
    let sel = job.data_selectivity.clamp(0.0, 1.0);

    // Per-raw-byte coefficients by mode.
    let (transfer_ratio, storage_cost, compute_cost) = match job.mode {
        SimMode::Vanilla => {
            let t = 1.0;
            let s = model.scan_cost;
            let c = t * model.parse_cost + t * model.process_cost;
            (t, s, c)
        }
        SimMode::Pushdown => {
            let t = 1.0 - sel;
            // "The storlet reads the data directly from disk" — filtering
            // subsumes the read; the proxy-serve cost applies only to the
            // (small) filtered output.
            let s = model.filter_cost + model.scan_cost * t;
            let c = t * model.parse_cost + t * model.process_cost;
            (t, s, c)
        }
        SimMode::Columnar { transfer_ratio, decoded_ratio } => {
            let t = transfer_ratio.clamp(0.0, 1.0);
            let dec = decoded_ratio.clamp(0.0, 1.0);
            let s = model.scan_cost * t; // only stored (compressed) bytes read
            // Decode compressed bytes, then assemble/discard/process the
            // decoded data (column discard is compute work in this arm).
            let c = t * model.decode_cost + dec * (model.parse_cost / 2.0 + model.process_cost);
            (t, s, c)
        }
    };

    // Capacity constraints (rates in raw bytes/second).
    let storlet_cores = topology.storage.total_cores()
        * if matches!(job.mode, SimMode::Pushdown) {
            model.storlet_core_fraction
        } else {
            1.0
        };
    let storage_rate = storlet_cores / storage_cost.max(1e-18);
    let network_rate = if transfer_ratio > 0.0 {
        topology.lb_bandwidth / transfer_ratio
    } else {
        f64::INFINITY
    };
    let proxy_rate = if transfer_ratio > 0.0 {
        topology.proxies.count as f64 * topology.proxy_bandwidth / transfer_ratio
    } else {
        f64::INFINITY
    };
    let compute_rate = topology.compute.total_cores() / compute_cost.max(1e-18);

    let (rate, bottleneck) = [
        (network_rate.min(proxy_rate), Bottleneck::Network),
        (storage_rate, Bottleneck::StorageCpu),
        (compute_rate, Bottleneck::ComputeCpu),
    ]
    .into_iter()
    .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite rates"))
    .expect("non-empty");

    // Fixed costs: job startup + storlet dispatch (amortized over the
    // request waves that fit the compute slots).
    let slots = topology.compute.total_cores().max(1.0);
    let waves = (job.tasks as f64 / slots).ceil().max(1.0);
    let overhead = model.job_startup
        + if matches!(job.mode, SimMode::Pushdown) {
            model.storlet_invocation_overhead * waves
        } else {
            0.0
        };
    let steady = d / rate.max(1.0);
    let duration = overhead + steady;

    // Utilizations at steady state.
    let compute_cpu_pct = 100.0 * (rate * compute_cost) / topology.compute.total_cores();
    let storage_cpu_pct = 100.0 * (rate * storage_cost) / topology.storage.total_cores();
    let lb_tx_rate = rate * transfer_ratio;
    let bytes_transferred = d * transfer_ratio;
    // Memory: executor baseline + buffering proportional to what is ingested.
    let compute_mem_pct =
        100.0 * (model.mem_base_fraction + model.mem_buffer_fraction * transfer_ratio);

    // collectd-like series: ramp over startup, steady plateau, short tail.
    let mut series = MetricsRegistry::new();
    let samples = 240usize;
    let dt = (duration / samples as f64).max(1e-6);
    for i in 0..=samples {
        let t = i as f64 * dt;
        // Activity envelope: 0 during startup ramp, 1 in steady state.
        let env = if t < overhead {
            (t / overhead.max(1e-9)) * 0.2
        } else if t > duration - dt {
            0.2
        } else {
            1.0
        };
        series.record("spark_workers", "cpu_pct", t, compute_cpu_pct * env);
        series.record("storage_nodes", "cpu_pct", t, storage_cpu_pct * env);
        series.record("spark_workers", "mem_pct", t, {
            // Memory ramps up during ingestion and stays until the job ends.
            let base = 100.0 * model.mem_base_fraction;
            if t < overhead {
                base
            } else {
                base + 100.0 * model.mem_buffer_fraction * transfer_ratio
            }
        });
        series.record("load_balancer", "tx_bytes_per_sec", t, lb_tx_rate * env);
        series.record(
            "swift_proxies",
            "tx_bytes_per_sec",
            t,
            lb_tx_rate * env / topology.proxies.count as f64,
        );
    }

    SimReport {
        duration,
        pipeline_rate: rate,
        bottleneck,
        bytes_transferred,
        compute_cpu_pct,
        storage_cpu_pct,
        compute_mem_pct,
        lb_tx_rate,
        series,
    }
}

/// Convenience: the paper's query speedup `S_Q = T_no_scoop / T_scoop`.
pub fn speedup(no_scoop: &SimReport, scoop: &SimReport) -> f64 {
    no_scoop.duration / scoop.duration
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(mode: SimMode, gb: u64, sel: f64) -> SimJob {
        SimJob {
            dataset_bytes: gb * 1_000_000_000,
            data_selectivity: sel,
            mode,
            tasks: (gb as usize) * 8, // 128 MB chunks
        }
    }

    fn run(mode: SimMode, gb: u64, sel: f64) -> SimReport {
        simulate(&job(mode, gb, sel), &Topology::osic(), &CostModel::paper_default())
    }

    #[test]
    fn vanilla_is_network_bound() {
        let r = run(SimMode::Vanilla, 500, 0.9);
        assert_eq!(r.bottleneck, Bottleneck::Network);
        // LB close to saturation (paper Fig. 9c).
        assert!(r.lb_tx_rate > 1.2e9, "{}", r.lb_tx_rate);
        // 500 GB at ~1.25 GB/s ≈ 400 s.
        assert!((350.0..500.0).contains(&r.duration), "{}", r.duration);
    }

    #[test]
    fn speedup_superlinear_in_selectivity() {
        let vanilla = run(SimMode::Vanilla, 500, 0.0);
        let s80 = speedup(&vanilla, &run(SimMode::Pushdown, 500, 0.80));
        let s90 = speedup(&vanilla, &run(SimMode::Pushdown, 500, 0.90));
        let s60 = speedup(&vanilla, &run(SimMode::Pushdown, 500, 0.60));
        // Paper Fig. 5: ~5x at 80%, >10x at 90%, superlinear growth.
        assert!((3.5..6.5).contains(&s80), "s80={s80}");
        assert!(s90 > 8.0, "s90={s90}");
        assert!(s90 - s80 > s80 - s60, "superlinearity: {s60} {s80} {s90}");
    }

    #[test]
    fn bottleneck_shifts_to_storage_cpu_at_high_selectivity() {
        let low = run(SimMode::Pushdown, 3000, 0.3);
        assert_eq!(low.bottleneck, Bottleneck::Network);
        let high = run(SimMode::Pushdown, 3000, 0.99);
        assert_eq!(high.bottleneck, Bottleneck::StorageCpu);
        // Max speedup capped around the paper's ~31x.
        let vanilla = run(SimMode::Vanilla, 3000, 0.0);
        let s = speedup(&vanilla, &high);
        assert!((20.0..40.0).contains(&s), "max speedup {s}");
    }

    #[test]
    fn no_selectivity_means_no_benefit() {
        let vanilla = run(SimMode::Vanilla, 500, 0.0);
        let pushdown = run(SimMode::Pushdown, 500, 0.0);
        let s = speedup(&vanilla, &pushdown);
        // Slight penalty (storlet overhead), within a few percent — the
        // paper reports a worst-case mean penalty of 3.4%.
        assert!((0.9..=1.001).contains(&s), "S_Q at zero selectivity: {s}");
    }

    #[test]
    fn larger_datasets_speed_up_more() {
        let s50 = speedup(
            &run(SimMode::Vanilla, 50, 0.0),
            &run(SimMode::Pushdown, 50, 0.9),
        );
        let s500 = speedup(
            &run(SimMode::Vanilla, 500, 0.0),
            &run(SimMode::Pushdown, 500, 0.9),
        );
        let s3000 = speedup(
            &run(SimMode::Vanilla, 3000, 0.0),
            &run(SimMode::Pushdown, 3000, 0.9),
        );
        assert!(s50 < s500 && s500 < s3000, "{s50} {s500} {s3000}");
        // And the 500GB→3TB increase is smaller than 50GB→500GB (Fig. 6).
        assert!(s3000 - s500 < s500 - s50, "{s50} {s500} {s3000}");
    }

    #[test]
    fn resource_usage_matches_paper_proportions() {
        // ShowGraphHCHP on 3 TB, 99% selectivity (Fig. 9/10).
        let vanilla = run(SimMode::Vanilla, 3000, 0.0);
        let scoop = run(SimMode::Pushdown, 3000, 0.99);
        // Compute CPU: scoop less than half of vanilla (paper: 1.2% vs 3.1%).
        assert!(scoop.compute_cpu_pct < vanilla.compute_cpu_pct / 2.0);
        assert!((1.0..6.0).contains(&vanilla.compute_cpu_pct));
        // Storage CPU: scoop ~20-30% vs vanilla ~1-2% (paper: 23.5% vs 1.25%).
        assert!((15.0..30.0).contains(&scoop.storage_cpu_pct), "{}", scoop.storage_cpu_pct);
        assert!(vanilla.storage_cpu_pct < 3.0);
        // Network: scoop's LB rate far below saturation.
        assert!(scoop.lb_tx_rate < 0.5e9, "{}", scoop.lb_tx_rate);
        // CPU cycles (integral) saved ~95%+ (paper: 97.8%).
        let v_cycles = vanilla
            .series
            .get("spark_workers", "cpu_pct")
            .unwrap()
            .integral();
        let s_cycles = scoop
            .series
            .get("spark_workers", "cpu_pct")
            .unwrap()
            .integral();
        assert!(s_cycles / v_cycles < 0.10, "cycle ratio {}", s_cycles / v_cycles);
        // Memory held high 10x+ longer in vanilla (paper: 12–15x).
        let v_mem = vanilla.series.get("spark_workers", "mem_pct").unwrap();
        let s_mem = scoop.series.get("spark_workers", "mem_pct").unwrap();
        let base = 100.0 * CostModel::paper_default().mem_base_fraction;
        let ratio = v_mem.time_above(base + 1.0) / s_mem.time_above(base + 1.0).max(1.0);
        assert!(ratio > 8.0, "memory hold ratio {ratio}");
        // Peak memory lower with scoop.
        assert!(scoop.compute_mem_pct < vanilla.compute_mem_pct);
    }

    #[test]
    fn columnar_mode_transfers_compressed() {
        let col = run(
            SimMode::Columnar { transfer_ratio: 0.3, decoded_ratio: 1.0 },
            500,
            0.0,
        );
        let vanilla = run(SimMode::Vanilla, 500, 0.0);
        assert!(col.bytes_transferred < vanilla.bytes_transferred * 0.4);
        let s = speedup(&vanilla, &col);
        assert!(s > 1.5, "columnar speedup {s}");
    }

    #[test]
    fn series_are_well_formed() {
        let r = run(SimMode::Pushdown, 50, 0.9);
        for (g, m) in [
            ("spark_workers", "cpu_pct"),
            ("storage_nodes", "cpu_pct"),
            ("spark_workers", "mem_pct"),
            ("load_balancer", "tx_bytes_per_sec"),
            ("swift_proxies", "tx_bytes_per_sec"),
        ] {
            let s = r.series.get(g, m).unwrap_or_else(|| panic!("{g}/{m} missing"));
            assert!(s.len() > 100);
            assert!(s.end_time() <= r.duration + 1.0);
            assert!(s.v.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }
}

/// Simulate `jobs` running **concurrently** on the shared infrastructure —
/// the paper's motivating scenario: "inter-cluster network bandwidth may be
/// saturated due to parallel data ingestions from multiple analytics jobs".
///
/// Fluid fair-sharing model: all jobs stream raw bytes at a common rate `x`
/// bounded by each shared resource's capacity divided across the jobs'
/// summed per-byte demands. Per-job duration is `overhead + bytes / x`.
pub fn simulate_concurrent(
    jobs: &[SimJob],
    topology: &Topology,
    model: &CostModel,
) -> Vec<SimReport> {
    if jobs.is_empty() {
        return Vec::new();
    }
    // Per-job per-raw-byte coefficients, mirroring `simulate`.
    let coefs: Vec<(f64, f64, f64, bool)> = jobs
        .iter()
        .map(|job| {
            let sel = job.data_selectivity.clamp(0.0, 1.0);
            match job.mode {
                SimMode::Vanilla => {
                    (1.0, model.scan_cost, model.parse_cost + model.process_cost, false)
                }
                SimMode::Pushdown => {
                    let t = 1.0 - sel;
                    (
                        t,
                        model.filter_cost + model.scan_cost * t,
                        t * (model.parse_cost + model.process_cost),
                        true,
                    )
                }
                SimMode::Columnar { transfer_ratio, decoded_ratio } => {
                    let t = transfer_ratio.clamp(0.0, 1.0);
                    let dec = decoded_ratio.clamp(0.0, 1.0);
                    (
                        t,
                        model.scan_cost * t,
                        t * model.decode_cost + dec * (model.parse_cost / 2.0 + model.process_cost),
                        false,
                    )
                }
            }
        })
        .collect();

    let sum_t: f64 = coefs.iter().map(|c| c.0).sum();
    // Pushdown jobs draw from the storlet core share; others from all cores.
    let sum_s_storlet: f64 = coefs.iter().filter(|c| c.3).map(|c| c.1).sum();
    let sum_s_plain: f64 = coefs.iter().filter(|c| !c.3).map(|c| c.1).sum();
    let sum_c: f64 = coefs.iter().map(|c| c.2).sum();

    let mut rate = f64::INFINITY;
    if sum_t > 0.0 {
        rate = rate
            .min(topology.lb_bandwidth / sum_t)
            .min(topology.proxies.count as f64 * topology.proxy_bandwidth / sum_t);
    }
    if sum_s_storlet > 0.0 {
        rate = rate.min(
            topology.storage.total_cores() * model.storlet_core_fraction / sum_s_storlet,
        );
    }
    if sum_s_plain > 0.0 {
        rate = rate.min(topology.storage.total_cores() / sum_s_plain);
    }
    if sum_c > 0.0 {
        rate = rate.min(topology.compute.total_cores() / sum_c);
    }

    jobs.iter()
        .map(|job| {
            // Reuse the single-job simulation for the report structure, then
            // override the duration with the contended rate.
            let mut report = simulate(job, topology, model);
            let overhead = report.duration - job.dataset_bytes as f64 / report.pipeline_rate;
            report.duration = overhead + job.dataset_bytes as f64 / rate.max(1.0);
            report.pipeline_rate = rate;
            report
        })
        .collect()
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;
    use crate::model::CostModel;
    use crate::topology::Topology;

    fn job(mode: SimMode, sel: f64) -> SimJob {
        SimJob {
            dataset_bytes: 500_000_000_000,
            data_selectivity: sel,
            mode,
            tasks: 4000,
        }
    }

    #[test]
    fn concurrent_vanilla_jobs_contend_on_the_link() {
        let topology = Topology::osic();
        let model = CostModel::paper_default();
        let solo = simulate(&job(SimMode::Vanilla, 0.0), &topology, &model);
        for n in [2usize, 4, 8] {
            let jobs = vec![job(SimMode::Vanilla, 0.0); n];
            let reports = simulate_concurrent(&jobs, &topology, &model);
            assert_eq!(reports.len(), n);
            // Each job ~n times slower than alone (the Fig. 1 motivation).
            let ratio = reports[0].duration / solo.duration;
            assert!(
                (n as f64 * 0.8..n as f64 * 1.2).contains(&ratio),
                "n={n}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn pushdown_jobs_barely_interfere() {
        let topology = Topology::osic();
        let model = CostModel::paper_default();
        let solo = simulate(&job(SimMode::Pushdown, 0.99), &topology, &model);
        let jobs = vec![job(SimMode::Pushdown, 0.99); 4];
        let reports = simulate_concurrent(&jobs, &topology, &model);
        // Scoop jobs contend on storage CPU, not the thin link; 4 of them
        // slow each other by ~4x on that bottleneck — but remain far faster
        // than even a single vanilla job.
        let vanilla_solo = simulate(&job(SimMode::Vanilla, 0.0), &topology, &model);
        assert!(reports[0].duration < vanilla_solo.duration / 2.0);
        assert!(reports[0].duration >= solo.duration);
    }

    #[test]
    fn mixed_fleet_shares_fairly() {
        let topology = Topology::osic();
        let model = CostModel::paper_default();
        let jobs = vec![
            job(SimMode::Vanilla, 0.0),
            job(SimMode::Pushdown, 0.95),
            job(SimMode::Columnar { transfer_ratio: 0.5, decoded_ratio: 1.0 }, 0.0),
        ];
        let reports = simulate_concurrent(&jobs, &topology, &model);
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.duration.is_finite() && r.duration > 0.0);
        }
        // The pushdown job transfers the least.
        assert!(reports[1].bytes_transferred < reports[0].bytes_transferred);
        assert!(reports[1].bytes_transferred < reports[2].bytes_transferred);
    }

    #[test]
    fn empty_job_list() {
        assert!(simulate_concurrent(&[], &Topology::osic(), &CostModel::paper_default())
            .is_empty());
    }
}
