//! Cluster shapes.

use serde::{Deserialize, Serialize};

/// A homogeneous group of machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeGroup {
    /// Machines in the group.
    pub count: usize,
    /// Cores per machine.
    pub cores: usize,
    /// RAM per machine in bytes.
    pub memory: u64,
}

impl NodeGroup {
    /// Total cores in the group.
    pub fn total_cores(&self) -> f64 {
        (self.count * self.cores) as f64
    }
}

/// The disaggregated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Spark workers (compute cluster).
    pub compute: NodeGroup,
    /// Swift proxy servers.
    pub proxies: NodeGroup,
    /// Swift object servers (storage cluster).
    pub storage: NodeGroup,
    /// Inter-cluster load-balancer bandwidth in bytes/second.
    pub lb_bandwidth: f64,
    /// Per-proxy NIC bandwidth in bytes/second.
    pub proxy_bandwidth: f64,
}

impl Topology {
    /// The paper's OSIC testbed: HP DL380 Gen9, 2×12-core E5-2680 v3, 256 GB
    /// RAM; 25 Spark workers, 6 proxies, 29 object servers; the load
    /// balancer machine used a 10 Gbps link; nodes had 2×10 Gbps bonds.
    pub fn osic() -> Topology {
        let machine = NodeGroup { count: 0, cores: 24, memory: 256 * 1_000_000_000 };
        Topology {
            compute: NodeGroup { count: 25, ..machine },
            proxies: NodeGroup { count: 6, ..machine },
            storage: NodeGroup { count: 29, ..machine },
            lb_bandwidth: 1.25e9,        // 10 Gbps
            proxy_bandwidth: 2.5e9,      // 2×10 Gbps bond
        }
    }

    /// A deliberately small cluster for sensitivity tests.
    pub fn small() -> Topology {
        Topology {
            compute: NodeGroup { count: 4, cores: 8, memory: 64_000_000_000 },
            proxies: NodeGroup { count: 2, cores: 8, memory: 64_000_000_000 },
            storage: NodeGroup { count: 4, cores: 8, memory: 64_000_000_000 },
            lb_bandwidth: 1.25e9,
            proxy_bandwidth: 1.25e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osic_matches_paper() {
        let t = Topology::osic();
        assert_eq!(t.compute.count, 25);
        assert_eq!(t.proxies.count, 6);
        assert_eq!(t.storage.count, 29);
        assert_eq!(t.compute.cores, 24);
        assert_eq!(t.lb_bandwidth, 1.25e9);
        assert_eq!(t.storage.total_cores(), 29.0 * 24.0);
    }
}
