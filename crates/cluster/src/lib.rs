//! Fluid simulator of the paper's disaggregated testbed.
//!
//! The experiments in the paper ran on 63 machines (OSIC): 1 HAProxy load
//! balancer on a 10 Gbps link, 6 Swift proxies, 29 object servers and 25
//! Spark workers. We obviously cannot re-run that; instead, every experiment
//! in this repo executes the *real data path* at laptop scale (bytes truly
//! filtered by the storlet engine, queries truly computed) and uses this
//! simulator to project end-to-end times and resource series onto the
//! testbed's proportions.
//!
//! The model is a steady-state fluid pipeline: a query processes raw dataset
//! bytes at rate `x`, bounded by
//!
//! * storage CPU (scan + storlet filtering),
//! * the inter-cluster load-balancer link (transferred = unfiltered bytes),
//! * compute CPU (parse + SQL processing of transferred bytes),
//!
//! plus a fixed job-startup cost and per-request storlet overhead. This
//! directly yields the paper's observed behaviours: `S_Q ≈ 1/(1-selectivity)`
//! while the network binds (superlinear in selectivity — Fig. 5), a
//! bottleneck shift to storage CPU at high selectivity that caps speedups
//! around 30× (Fig. 6), smaller speedups on datasets too small to saturate
//! the pipeline, and the CPU/memory/network series of Figs. 9–10.
//!
//! * [`topology`] — node groups and links; [`topology::Topology::osic`] is
//!   the paper's testbed.
//! * [`model`] — per-byte cost parameters, paper-calibrated defaults, and
//!   calibration from measured throughputs of this repo's own code.
//! * [`simulate`] — run a [`simulate::SimJob`], get a [`simulate::SimReport`]
//!   with duration, bottleneck, and collectd-like time series.

pub mod model;
pub mod simulate;
pub mod topology;

pub use model::CostModel;
pub use simulate::{Bottleneck, SimJob, SimMode, SimReport};
pub use topology::Topology;
