//! Cost-model parameters.
//!
//! All `*_cost` fields are **core-seconds per byte**. The paper-calibrated
//! defaults were fitted against the resource-usage numbers the paper reports
//! (see the doc comments per field); [`CostModel::calibrated`] instead
//! derives the filter/parse costs from *measured* throughput of this repo's
//! own storlet and CSV-parse code, preserving the testbed's core counts.

use serde::{Deserialize, Serialize};

/// Per-byte and fixed costs of the pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Storage-side cost to read + serve one raw byte (core-s/B). Fitted to
    /// the paper's plain-Swift storage CPU of ~1.25% while serving ~1.25 GB/s
    /// across 29×24 cores.
    pub scan_cost: f64,
    /// Storage-side storlet filtering cost per raw byte (core-s/B). With the
    /// core fraction below, caps pushdown throughput near the paper's
    /// observed ~31× maximum speedup.
    pub filter_cost: f64,
    /// Fraction of storage cores the storlet sandbox may use (Docker cgroup
    /// limits in the original; the paper measured 23.5% average storage CPU
    /// when pushing down on the 3 TB dataset).
    pub storlet_core_fraction: f64,
    /// Compute-side CSV parse cost per transferred byte (core-s/B). Spark
    /// 1.6-era CSV parsing ran at some tens of MB/s per core.
    pub parse_cost: f64,
    /// Compute-side SQL processing cost per post-filter byte (core-s/B).
    pub process_cost: f64,
    /// Compute-side columnar decode cost per compressed byte (core-s/B).
    pub decode_cost: f64,
    /// Fixed job cost (scheduling, stage setup) in seconds.
    pub job_startup: f64,
    /// Fixed storlet cost per object request in seconds (sandbox dispatch).
    pub storlet_invocation_overhead: f64,
    /// JVM / executor baseline memory use as a fraction of node RAM.
    pub mem_base_fraction: f64,
    /// Additional memory fraction when buffering full raw partitions
    /// (vanilla ingestion); pushdown scales this by the transfer ratio.
    pub mem_buffer_fraction: f64,
}

impl CostModel {
    /// Defaults fitted to the paper's testbed observations.
    pub fn paper_default() -> CostModel {
        CostModel {
            // 1.25% of 696 cores serving 1.25 GB/s → ~7e-9 core-s/B.
            scan_cost: 7.0e-9,
            // 174 storlet cores saturating at ~39 GB/s → 4.5e-9 core-s/B.
            filter_cost: 4.5e-9,
            storlet_core_fraction: 0.25,
            // parse+process ≈ 1.5e-8 core-s/B reproduces the 3.1% compute
            // CPU while ingesting at link speed.
            parse_cost: 1.0e-8,
            process_cost: 0.5e-8,
            decode_cost: 0.7e-8,
            job_startup: 3.0,
            storlet_invocation_overhead: 0.02,
            mem_base_fraction: 0.40,
            mem_buffer_fraction: 0.15,
        }
    }

    /// Derive filter/parse costs from measured single-core throughputs
    /// (bytes/second) of this repo's own implementations, keeping everything
    /// else from the paper-fitted defaults.
    pub fn calibrated(filter_bytes_per_sec: f64, parse_bytes_per_sec: f64) -> CostModel {
        let mut m = CostModel::paper_default();
        if filter_bytes_per_sec > 0.0 {
            m.filter_cost = 1.0 / filter_bytes_per_sec;
        }
        if parse_bytes_per_sec > 0.0 {
            m.parse_cost = 1.0 / parse_bytes_per_sec;
        }
        m
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_sane() {
        let m = CostModel::paper_default();
        assert!(m.scan_cost > 0.0 && m.scan_cost < 1e-6);
        assert!(m.filter_cost > 0.0);
        assert!(m.storlet_core_fraction > 0.0 && m.storlet_core_fraction <= 1.0);
        assert!(m.job_startup > 0.0);
        // parse+process consistent with ~3% compute CPU at link speed:
        // 1.25e9 B/s × cost ≈ 18 cores of 600.
        let cores = 1.25e9 * (m.parse_cost + m.process_cost);
        assert!((10.0..30.0).contains(&cores), "{cores}");
    }

    #[test]
    fn calibration_overrides_throughputs() {
        let m = CostModel::calibrated(200e6, 50e6);
        assert!((m.filter_cost - 5e-9).abs() < 1e-12);
        assert!((m.parse_cost - 2e-8).abs() < 1e-12);
        // Zero measurements leave defaults.
        let d = CostModel::calibrated(0.0, 0.0);
        assert_eq!(d, CostModel::paper_default());
    }
}
