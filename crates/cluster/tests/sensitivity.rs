//! Sensitivity analysis of the fluid model: the qualitative conclusions must
//! respond to topology changes the way the paper's reasoning predicts.

use scoop_cluster::simulate::{simulate, speedup};
use scoop_cluster::{Bottleneck, CostModel, SimJob, SimMode, Topology};

fn job(mode: SimMode, gb: u64, sel: f64) -> SimJob {
    SimJob {
        dataset_bytes: gb * 1_000_000_000,
        data_selectivity: sel,
        mode,
        tasks: (gb as usize) * 8,
    }
}

fn s_q(topology: &Topology, model: &CostModel, gb: u64, sel: f64) -> f64 {
    speedup(
        &simulate(&job(SimMode::Vanilla, gb, 0.0), topology, model),
        &simulate(&job(SimMode::Pushdown, gb, sel), topology, model),
    )
}

#[test]
fn narrower_inter_cluster_link_means_bigger_wins() {
    let model = CostModel::paper_default();
    let fat = Topology::osic();
    let mut thin = Topology::osic();
    thin.lb_bandwidth /= 4.0; // 2.5 Gbps LB
    // Scoop's value comes from offloading the link: at 99% selectivity the
    // fat-link pushdown is already storage-bound (its cap), while the
    // thin-link vanilla arm suffers 4x more — so the thin cluster sees a far
    // larger speedup.
    let s_fat = s_q(&fat, &model, 3000, 0.99);
    let s_thin = s_q(&thin, &model, 3000, 0.99);
    assert!(
        s_thin > s_fat * 1.5,
        "thin-link speedup {s_thin} vs fat-link {s_fat}"
    );
}

#[test]
fn more_storage_cores_raise_the_speedup_cap() {
    let model = CostModel::paper_default();
    let base = Topology::osic();
    let mut big = Topology::osic();
    big.storage.count *= 2;
    // At extreme selectivity the cap is storage CPU; doubling storage nodes
    // roughly doubles the cap (until another constraint binds).
    let cap_base = s_q(&base, &model, 3000, 0.9999);
    let cap_big = s_q(&big, &model, 3000, 0.9999);
    assert!(
        cap_big > cap_base * 1.5,
        "cap {cap_base} → {cap_big} after doubling storage"
    );
}

#[test]
fn raising_the_storlet_core_share_moves_the_crossover() {
    let mut generous = CostModel::paper_default();
    generous.storlet_core_fraction = 1.0;
    let topology = Topology::osic();
    // With all storage cores available to storlets, the bottleneck at 99%
    // selectivity moves off storage CPU (the network or compute binds much
    // later), so the speedup rises.
    let stingy = s_q(&topology, &CostModel::paper_default(), 3000, 0.99);
    let rich = s_q(&topology, &generous, 3000, 0.99);
    assert!(rich > stingy, "core share 0.25 → 1.0: {stingy} → {rich}");
}

#[test]
fn slower_filters_shift_the_bottleneck_earlier() {
    // A 20x slower storlet (e.g. an interpreted filter) becomes the
    // bottleneck at much lower selectivity.
    let mut slow = CostModel::paper_default();
    slow.filter_cost *= 20.0;
    let topology = Topology::osic();
    let report = simulate(&job(SimMode::Pushdown, 500, 0.6), &topology, &slow);
    assert_eq!(report.bottleneck, Bottleneck::StorageCpu);
    let fast = simulate(
        &job(SimMode::Pushdown, 500, 0.6),
        &topology,
        &CostModel::paper_default(),
    );
    assert_eq!(fast.bottleneck, Bottleneck::Network);
    assert!(fast.duration < report.duration);
}

#[test]
fn compute_bound_regime_exists() {
    // Pathologically slow compute parsing makes the compute tier bind even
    // for vanilla ingestion.
    let mut slow_compute = CostModel::paper_default();
    slow_compute.parse_cost *= 100.0;
    let report = simulate(
        &job(SimMode::Vanilla, 500, 0.0),
        &Topology::osic(),
        &slow_compute,
    );
    assert_eq!(report.bottleneck, Bottleneck::ComputeCpu);
    // And pushing down rescues it: less data to parse.
    let pushed = simulate(
        &job(SimMode::Pushdown, 500, 0.9),
        &Topology::osic(),
        &slow_compute,
    );
    assert!(pushed.duration < report.duration / 5.0);
}

#[test]
fn small_cluster_behaves_consistently() {
    let model = CostModel::paper_default();
    let small = Topology::small();
    // Same qualitative behaviour on a 10-machine cluster: monotone in
    // selectivity. At zero selectivity the tiny storage tier cannot even
    // sustain passthrough filtering at link speed, so pushdown is a net
    // LOSS (S_Q < 1) — the regime the paper's adaptive controller exists
    // to avoid.
    let s0 = s_q(&small, &model, 50, 0.0);
    let s5 = s_q(&small, &model, 50, 0.5);
    let s9 = s_q(&small, &model, 50, 0.9);
    assert!(s0 <= 1.01, "{s0}");
    assert!(s5 > s0 && s9 > s5, "{s0} {s5} {s9}");
}

#[test]
fn calibrated_model_preserves_shapes() {
    // Calibrate with this repo's measured-order throughputs (100 MB/s filter,
    // 50 MB/s parse): absolute numbers change, shapes must not.
    let calibrated = CostModel::calibrated(100e6, 50e6);
    let topology = Topology::osic();
    let s80 = s_q(&topology, &calibrated, 500, 0.8);
    let s90 = s_q(&topology, &calibrated, 500, 0.9);
    let s99 = s_q(&topology, &calibrated, 500, 0.99);
    assert!(s80 > 2.0, "{s80}");
    assert!(s90 > s80 && s99 >= s90, "{s80} {s90} {s99}");
    // Slower filters than the paper-fitted model → lower cap.
    let paper_cap = s_q(&topology, &CostModel::paper_default(), 3000, 0.9999);
    let cal_cap = s_q(&topology, &calibrated, 3000, 0.9999);
    assert!(cal_cap < paper_cap, "{cal_cap} vs {paper_cap}");
}
