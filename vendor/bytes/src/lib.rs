//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! patches `bytes` to this minimal implementation (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It provides the subset of the real API the
//! workspace uses: `Bytes` as a cheaply cloneable, zero-copy-sliceable,
//! contiguous byte buffer backed by `Arc<[u8]>` plus an offset window.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Clones and `slice()` windows share the same allocation; no byte is copied
/// after construction.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Create an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Create from a static slice (zero-copy in the real crate; here the
    /// slice is copied once into the shared allocation).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Create by copying a slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Return a sub-view of `self` without copying.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not exceed end");
        assert!(end <= len, "range end {end} out of bounds ({len})");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes of this view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl Eq for Bytes {}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

macro_rules! eq_impls {
    ($($ty:ty => |$o:ident| $conv:expr;)*) => {$(
        impl PartialEq<$ty> for Bytes {
            fn eq(&self, $o: &$ty) -> bool {
                self.as_slice() == $conv
            }
        }
        impl PartialEq<Bytes> for $ty {
            fn eq(&self, other: &Bytes) -> bool {
                other == self
            }
        }
    )*};
}

eq_impls! {
    [u8] => |o| o;
    &[u8] => |o| *o;
    Vec<u8> => |o| o.as_slice();
    str => |o| o.as_bytes();
    &str => |o| o.as_bytes();
    String => |o| o.as_bytes();
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s, [2u8, 3, 4]);
        assert_eq!(s.slice(1..), [3u8, 4]);
        assert_eq!(b.len(), 5);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, "abc");
        assert_eq!(b, b"abc");
        assert_eq!(b, vec![b'a', b'b', b'c']);
        assert_eq!("abc", b.clone());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from_static(b"ab").slice(0..3);
    }
}
