//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API (the
//! subset this workspace uses). A poisoned std lock means a thread panicked
//! while holding it; matching parking_lot semantics, we ignore the poison and
//! hand out the guard anyway.

use std::fmt;

/// Mutual exclusion lock (non-poisoning facade over [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Reader-writer lock (non-poisoning facade over [`std::sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
