//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace declares the dependency but does not currently call into it;
//! `std::thread::scope` covers the scoped-thread use case on modern Rust.

/// Spawn scoped threads; alias for [`std::thread::scope`].
pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    Ok(std::thread::scope(f))
}
