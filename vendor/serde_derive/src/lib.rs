//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` decoratively (no
//! code actually serializes through serde), so these derives emit no code.
//! Registering `attributes(serde)` lets `#[serde(...)]` container/field
//! attributes parse without error.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
