//! Model-checked synchronization primitives: `Mutex` (parking_lot-style
//! API), sequentially-consistent atomics, and an mpsc channel whose
//! `recv_timeout` explores both the delivery and the timeout branch.

use crate::sched;
use std::sync::Condvar;
use std::sync::Mutex as StdMutex;
use std::sync::TryLockError;

pub use std::sync::Arc;

/// A mutex whose acquisitions are decision points of the explorer.
///
/// `lock` returns the guard directly (no poison `Result`), matching the
/// parking_lot API the workspace uses under `cfg(not(loom))`.
pub struct Mutex<T> {
    inner: StdMutex<T>,
    res: usize,
}

impl<T> Mutex<T> {
    /// Create an unlocked mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: StdMutex::new(value), res: sched::new_resource() }
    }

    /// Acquire the lock, scheduling other threads first if the explorer
    /// so decides.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if sched::current().is_none() {
            let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            return MutexGuard { guard: Some(g), res: self.res, in_model: false };
        }
        loop {
            sched::switch();
            match self.inner.try_lock() {
                Ok(g) => return MutexGuard { guard: Some(g), res: self.res, in_model: true },
                Err(TryLockError::Poisoned(p)) => {
                    return MutexGuard {
                        guard: Some(p.into_inner()),
                        res: self.res,
                        in_model: true,
                    }
                }
                Err(TryLockError::WouldBlock) => {
                    // Held by a descheduled thread: block until released.
                    sched::block_on_or_deadlock(self.res, "a mutex");
                }
            }
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard for [`Mutex`]; releasing wakes blocked acquirers (quietly, so it
/// is safe from `Drop` during unwinding).
pub struct MutexGuard<'a, T> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
    res: usize,
    in_model: bool,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.guard = None; // release before waking waiters
        if self.in_model {
            sched::unblock(self.res);
        }
    }
}

pub mod atomic {
    //! Sequentially-consistent model-checked atomics. `Ordering` arguments
    //! are accepted for API compatibility; every access is a decision
    //! point and executes with SC semantics (weak reorderings are not
    //! explored — see the crate docs).

    use crate::sched;
    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_int {
        ($name:ident, $ty:ty, $std:ty) => {
            /// Model-checked atomic integer.
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// Create with an initial value.
                pub const fn new(v: $ty) -> Self {
                    Self(<$std>::new(v))
                }

                /// Read the value (decision point).
                pub fn load(&self, _o: Ordering) -> $ty {
                    sched::switch();
                    self.0.load(Ordering::SeqCst)
                }

                /// Write the value (decision point).
                pub fn store(&self, v: $ty, _o: Ordering) {
                    sched::switch();
                    self.0.store(v, Ordering::SeqCst)
                }

                /// Add and return the previous value (decision point).
                pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                    sched::switch();
                    self.0.fetch_add(v, Ordering::SeqCst)
                }

                /// Subtract and return the previous value (decision point).
                pub fn fetch_sub(&self, v: $ty, _o: Ordering) -> $ty {
                    sched::switch();
                    self.0.fetch_sub(v, Ordering::SeqCst)
                }

                /// Compare-and-exchange (decision point).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    sched::switch();
                    self.0.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    atomic_int!(AtomicU32, u32, std::sync::atomic::AtomicU32);
    atomic_int!(AtomicU64, u64, std::sync::atomic::AtomicU64);
    atomic_int!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);

    /// Model-checked atomic boolean.
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// Create with an initial value.
        pub const fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        /// Read the value (decision point).
        pub fn load(&self, _o: Ordering) -> bool {
            sched::switch();
            self.0.load(Ordering::SeqCst)
        }

        /// Write the value (decision point).
        pub fn store(&self, v: bool, _o: Ordering) {
            sched::switch();
            self.0.store(v, Ordering::SeqCst)
        }

        /// Swap and return the previous value (decision point).
        pub fn swap(&self, v: bool, _o: Ordering) -> bool {
            sched::switch();
            self.0.swap(v, Ordering::SeqCst)
        }
    }
}

pub mod mpsc {
    //! Model-checked multi-producer single-consumer channel.
    //!
    //! `recv_timeout` is the interesting part: with the queue empty and
    //! senders alive, the explorer branches between *waiting* (as `recv`
    //! would) and the *timeout firing* — so every "the hedge timer beat /
    //! lost against the first replica" ordering is covered. The timeout
    //! branch is only offered once per channel state change; repeated
    //! timeouts with no intervening send would loop the search forever
    //! while adding no new behavior. When waiting would deadlock (nothing
    //! else can run), the timeout fires instead, matching a real clock.

    use super::Condvar;
    use super::StdMutex;
    use crate::sched;
    use std::collections::VecDeque;
    use std::sync::Arc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    struct Chan<T> {
        state: StdMutex<Inner<T>>,
        cv: Condvar,
        res: usize,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        /// Bumped on every send and sender-drop; lets `recv_timeout` offer
        /// its timeout branch once per state change.
        version: u64,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
        last_timeout_version: std::cell::Cell<Option<u64>>,
    }

    /// Create an unbounded channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: StdMutex::new(Inner { queue: VecDeque::new(), senders: 1, version: 0 }),
            cv: Condvar::new(),
            res: sched::new_resource(),
        });
        (
            Sender { chan: chan.clone() },
            Receiver { chan, last_timeout_version: std::cell::Cell::new(None) },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            if st.senders == 0 {
                st.version += 1;
                drop(st);
                sched::unblock(self.chan.res);
                self.chan.cv.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; fails only when the receiver is gone (not modeled
        /// — the workspace never drops receivers early).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            sched::switch();
            let mut st = self.chan.lock();
            st.queue.push_back(value);
            st.version += 1;
            drop(st);
            sched::unblock(self.chan.res);
            self.chan.cv.notify_all();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            loop {
                sched::switch();
                let mut st = self.chan.lock();
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                if sched::current().is_some() {
                    drop(st);
                    sched::block_on_or_deadlock(self.chan.res, "a channel receive");
                } else {
                    let _unused = self.chan.cv.wait(st);
                }
            }
        }

        /// Receive with a timeout. Under the model the duration is ignored
        /// and the timeout is a nondeterministic branch (see module docs).
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            if sched::current().is_none() {
                return self.recv_timeout_fallback(timeout);
            }
            loop {
                sched::switch();
                let mut st = self.chan.lock();
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let version = st.version;
                let timeout_available = self.last_timeout_version.get() != Some(version);
                drop(st);
                if timeout_available && sched::nondet(2) == 1 {
                    self.last_timeout_version.set(Some(version));
                    return Err(RecvTimeoutError::Timeout);
                }
                if !sched::block_on(self.chan.res) {
                    // Waiting would deadlock: on a real clock the timeout
                    // fires here.
                    self.last_timeout_version.set(Some(version));
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        fn recv_timeout_fallback(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, timed_out) = self
                    .chan
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if timed_out.timed_out() && st.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            sched::switch();
            let mut st = self.chan.lock();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }
}
