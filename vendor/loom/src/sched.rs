//! The schedule explorer: token-passing execution of controlled threads
//! plus depth-first search over scheduling decisions.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Hard cap on explored schedules; a run that exceeds it almost certainly
/// has an unbounded decision loop rather than a large but finite tree.
const MAX_SCHEDULES: usize = 200_000;

/// Globally unique ids for blockable resources (mutexes, channels, thread
/// joins). A plain global counter keeps ids unique even when a primitive
/// outlives one `model` run or two models run on parallel test threads.
static NEXT_RESOURCE: AtomicUsize = AtomicUsize::new(1);

pub(crate) fn new_resource() -> usize {
    NEXT_RESOURCE.fetch_add(1, Ordering::Relaxed)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Eligible to receive the token.
    Runnable,
    /// Waiting for the given resource to change state.
    Blocked(usize),
    /// Done (normally or via an aborted execution).
    Finished,
}

struct ExecState {
    status: Vec<Status>,
    /// Join resource of each controlled thread.
    join_res: Vec<usize>,
    /// Thread currently holding the token.
    current: usize,
    /// Decisions taken this run: (alternative count, chosen position).
    /// Single-alternative points are not recorded.
    history: Vec<(usize, usize)>,
    /// Chosen positions replayed from the previous run (DFS prefix).
    preplan: Vec<usize>,
    /// First failure (panic or deadlock) observed this run.
    failed: Option<String>,
}

impl ExecState {
    fn runnable(&self) -> Vec<usize> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.status.iter().all(|s| matches!(s, Status::Finished))
    }

    /// Pick a position among `n` alternatives: replay the plan prefix,
    /// then first-choice. Singleton decisions are not recorded so the
    /// history only holds genuine branch points.
    fn decide(&mut self, n: usize) -> usize {
        if n == 1 {
            return 0;
        }
        let pos = if self.history.len() < self.preplan.len() {
            self.preplan[self.history.len()].min(n - 1)
        } else {
            0
        };
        self.history.push((n, pos));
        pos
    }
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The active execution + controlled-thread id, if this OS thread is
/// running under a model.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

impl Execution {
    fn new(preplan: Vec<usize>) -> Arc<Execution> {
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                status: vec![Status::Runnable],
                join_res: vec![new_resource()],
                current: 0,
                history: Vec::new(),
                preplan,
                failed: None,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        // The explorer's own lock is never held across user code, so
        // poisoning can only come from a bug in this module; recover to
        // keep the failure report readable.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pick the next thread among `runnable` and hand it the token, then
    /// wait (if needed) until `me` is scheduled again. Call with the state
    /// locked; returns with it locked.
    fn reschedule<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, ExecState>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, ExecState> {
        let runnable = st.runnable();
        debug_assert!(!runnable.is_empty());
        let pos = st.decide(runnable.len());
        st.current = runnable[pos];
        self.cv.notify_all();
        while !(st.current == me && matches!(st.status[me], Status::Runnable))
            && st.failed.is_none()
        {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st
    }

    fn abort_if_failed(&self, st: std::sync::MutexGuard<'_, ExecState>) {
        let failed = st.failed.is_some();
        drop(st);
        if failed {
            panic!("loom: execution aborted");
        }
    }
}

/// Decision point: hand the token to any runnable thread (possibly the
/// caller) before the caller performs its next visible operation. No-op
/// outside a model.
pub(crate) fn switch() {
    if let Some((exec, me)) = current() {
        let st = exec.lock();
        if st.failed.is_some() {
            exec.abort_if_failed(st);
            return;
        }
        let st = exec.reschedule(st, me);
        exec.abort_if_failed_keep_running(st);
    }
}

impl Execution {
    /// After a wake-up, a set failure flag means some other thread
    /// panicked or a deadlock was declared: unwind out of user code.
    fn abort_if_failed_keep_running(&self, st: std::sync::MutexGuard<'_, ExecState>) {
        let failed = st.failed.is_some();
        drop(st);
        if failed {
            panic!("loom: execution aborted");
        }
    }
}

/// Nondeterministic choice among `n` alternatives (used to model timeout
/// firing). Returns 0 outside a model.
pub(crate) fn nondet(n: usize) -> usize {
    match current() {
        Some((exec, _me)) => {
            let mut st = exec.lock();
            if st.failed.is_some() {
                exec.abort_if_failed(st);
                return 0;
            }
            st.decide(n)
        }
        None => 0,
    }
}

/// Block the calling controlled thread on `resource` until another thread
/// calls [`unblock`] on it. Returns `false` (without blocking) when every
/// other thread is blocked or finished — i.e. blocking would deadlock —
/// so callers with an escape hatch (timeouts) can take it.
pub(crate) fn block_on(resource: usize) -> bool {
    let Some((exec, me)) = current() else {
        return true; // fallback paths never call this
    };
    let mut st = exec.lock();
    if st.failed.is_some() {
        exec.abort_if_failed(st);
        return false;
    }
    st.status[me] = Status::Blocked(resource);
    if st.runnable().is_empty() {
        st.status[me] = Status::Runnable;
        return false;
    }
    let st = exec.reschedule(st, me);
    exec.abort_if_failed_keep_running(st);
    true
}

/// Like [`block_on`] but a dead end is a genuine deadlock: report and
/// abort the execution.
pub(crate) fn block_on_or_deadlock(resource: usize, what: &str) {
    if !block_on(resource) {
        fail(format!("loom: deadlock — every thread is blocked while waiting for {what}"));
    }
}

/// Mark every thread blocked on `resource` runnable again. Quiet (no
/// decision point): the woken threads only run once a later decision picks
/// them, which keeps release operations usable from `Drop` during panics.
pub(crate) fn unblock(resource: usize) {
    if let Some((exec, _)) = current() {
        let mut st = exec.lock();
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(resource) {
                *s = Status::Runnable;
            }
        }
    }
}

/// Record a failure and wake everyone so the execution unwinds, then
/// panic on the calling thread.
pub(crate) fn fail(msg: String) -> ! {
    if let Some((exec, _)) = current() {
        let mut st = exec.lock();
        if st.failed.is_none() {
            st.failed = Some(msg.clone());
        }
        exec.cv.notify_all();
    }
    panic!("{msg}");
}

/// Spawn a controlled thread running `f`; returns its id and join resource.
pub(crate) fn spawn_controlled<F>(f: F) -> (usize, usize)
where
    F: FnOnce() + Send + 'static,
{
    let (exec, _me) = current().expect("loom primitives used outside a model");
    switch();
    let (id, join_res) = {
        let mut st = exec.lock();
        st.status.push(Status::Runnable);
        let join_res = new_resource();
        st.join_res.push(join_res);
        (st.status.len() - 1, join_res)
    };
    let exec2 = exec.clone();
    std::thread::spawn(move || {
        set_current(Some((exec2.clone(), id)));
        // Wait for the first token.
        {
            let mut st = exec2.lock();
            while !(st.current == id && matches!(st.status[id], Status::Runnable))
                && st.failed.is_none()
            {
                st = exec2.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.failed.is_some() {
                drop(st);
                finish_thread(&exec2, id, None);
                return;
            }
        }
        let result = catch_unwind(AssertUnwindSafe(f));
        finish_thread(&exec2, id, result.err().map(panic_message));
    });
    (id, join_res)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic in controlled thread".to_string()
    }
}

/// Mark `id` finished, record any panic, wake joiners and hand the token on.
fn finish_thread(exec: &Arc<Execution>, id: usize, panicked: Option<String>) {
    let mut st = exec.lock();
    st.status[id] = Status::Finished;
    let join_res = st.join_res[id];
    for s in st.status.iter_mut() {
        if *s == Status::Blocked(join_res) {
            *s = Status::Runnable;
        }
    }
    if let Some(msg) = panicked {
        if st.failed.is_none() && msg != "loom: execution aborted" {
            st.failed = Some(msg);
        }
        exec.cv.notify_all();
        return;
    }
    if st.failed.is_some() {
        exec.cv.notify_all();
        return;
    }
    let runnable = st.runnable();
    if runnable.is_empty() {
        if !st.all_finished() {
            let blocked: Vec<usize> = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Status::Blocked(_)))
                .map(|(i, _)| i)
                .collect();
            st.failed = Some(format!(
                "loom: deadlock — threads {blocked:?} are blocked and no thread is runnable"
            ));
        }
        exec.cv.notify_all();
    } else {
        let pos = st.decide(runnable.len());
        st.current = runnable[pos];
        exec.cv.notify_all();
    }
}

/// Is `id` finished? (Join support.)
pub(crate) fn is_finished(id: usize) -> bool {
    let (exec, _) = current().expect("join outside a model");
    let st = exec.lock();
    matches!(st.status[id], Status::Finished)
}

pub(crate) fn join_resource(id: usize) -> usize {
    let (exec, _) = current().expect("join outside a model");
    let st = exec.lock();
    st.join_res[id]
}

/// Drive the DFS over schedules.
pub(crate) fn run_model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut preplan: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        if schedules > MAX_SCHEDULES {
            panic!("loom: exceeded {MAX_SCHEDULES} schedules — unbounded decision loop?");
        }
        let exec = Execution::new(std::mem::take(&mut preplan));
        let exec_main = exec.clone();
        let fc = f.clone();
        let main = std::thread::spawn(move || {
            set_current(Some((exec_main.clone(), 0)));
            let result = catch_unwind(AssertUnwindSafe(|| fc()));
            finish_thread(&exec_main, 0, result.err().map(panic_message));
        });
        // Wait until every controlled thread has finished (normally, or by
        // unwinding out of an aborted execution).
        {
            let mut st = exec.lock();
            loop {
                if st.all_finished() {
                    break;
                }
                if st.failed.is_some() {
                    // Failure: threads parked at decision points unwind on
                    // wake-up; keep waiting for them to finish.
                    exec.cv.notify_all();
                }
                st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let _ = main.join();
        let st = exec.lock();
        if let Some(msg) = &st.failed {
            let trace: Vec<usize> = st.history.iter().map(|(_, p)| *p).collect();
            panic!("{msg}\n  failing schedule (decision positions): {trace:?}\n  schedules explored: {schedules}");
        }
        // Backtrack: advance the deepest decision with an untried
        // alternative; exploration is complete when none remains.
        let mut next: Option<Vec<usize>> = None;
        for i in (0..st.history.len()).rev() {
            let (n, pos) = st.history[i];
            if pos + 1 < n {
                let mut plan: Vec<usize> =
                    st.history[..i].iter().map(|(_, p)| *p).collect();
                plan.push(pos + 1);
                next = Some(plan);
                break;
            }
        }
        drop(st);
        match next {
            Some(p) => preplan = p,
            None => break,
        }
    }
}
