//! Offline stand-in for the [loom](https://github.com/tokio-rs/loom)
//! concurrency model checker.
//!
//! The build environment has no route to crates.io, so this crate
//! reimplements the subset of loom's API the workspace uses. Like real
//! loom it is a *stateless model checker*: [`model`] runs the test closure
//! many times, each run following one schedule of the controlled threads,
//! and a depth-first search over scheduling decisions covers every
//! interleaving of synchronization operations.
//!
//! ## How it works
//!
//! Exactly one controlled thread executes at a time; the token is handed
//! over at *decision points* — before every visible operation (mutex
//! acquire, atomic access, channel send/receive, spawn, join). At each
//! decision point the scheduler consults a replay plan: the first run
//! always picks the lowest-numbered runnable thread, and after each run
//! the deepest decision that still has an unexplored alternative is
//! advanced, until the whole tree is exhausted.
//!
//! Timeouts ([`sync::mpsc::Receiver::recv_timeout`]) are modeled as a
//! nondeterministic choice between waiting and firing, so both outcomes
//! are explored without any real clock.
//!
//! ## Differences from real loom
//!
//! * The memory model is **sequentially consistent**: `Ordering` arguments
//!   are accepted but weak-memory reorderings are *not* explored. Lost
//!   updates, deadlocks and ordering races at SC level are found; `Relaxed`
//!   vs `Acquire/Release` bugs are not.
//! * [`sync::Mutex::lock`] returns the guard directly (parking_lot style,
//!   no poison `Result`), matching how the workspace wraps its locks.
//! * Outside [`model`], every primitive falls back to its `std` behavior,
//!   so code paths shared with production binaries still run.

pub mod sched;
pub mod sync;
pub mod thread;

/// Exhaustively explore every interleaving of the controlled threads
/// spawned by `f`.
///
/// `f` is executed once per schedule; it must be deterministic apart from
/// the scheduling itself. Panics (assertion failures) and deadlocks in any
/// schedule abort the exploration and re-panic with the failure, so a
/// `#[test]` wrapping `model` fails on the first buggy interleaving.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    sched::run_model(f);
}
