//! Controlled threads: `spawn`/`join`/`yield_now` mirroring `std::thread`.

use crate::sched;
use std::sync::{Arc, Mutex};

/// Handle to a controlled (or, outside a model, a real) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Os(std::thread::JoinHandle<T>),
    Model { id: usize, result: Arc<Mutex<Option<T>>> },
}

/// Spawn a thread. Inside [`crate::model`] the thread is scheduled by the
/// explorer; outside it this is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if sched::current().is_some() {
        let result = Arc::new(Mutex::new(None));
        let slot = result.clone();
        let (id, _join_res) = sched::spawn_controlled(move || {
            let v = f();
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
        });
        JoinHandle { inner: Inner::Model { id, result } }
    } else {
        JoinHandle { inner: Inner::Os(std::thread::spawn(f)) }
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Os(h) => h.join(),
            Inner::Model { id, result } => {
                loop {
                    sched::switch();
                    if sched::is_finished(id) {
                        break;
                    }
                    sched::block_on_or_deadlock(sched::join_resource(id), "a thread join");
                }
                match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(v) => Ok(v),
                    // The joined thread panicked; the execution is failing
                    // already, but surface an error to the caller too.
                    None => Err(Box::new("joined thread panicked")),
                }
            }
        }
    }
}

/// Decision point with no side effect.
pub fn yield_now() {
    sched::switch();
}
