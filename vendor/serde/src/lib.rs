//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its wire types but never
//! routes them through a serde serializer (headers use hand-rolled encodings),
//! so marker traits and no-op derives are all that is needed.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
