//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::random_range` over integer and float ranges — the subset the
//! workload generator uses. The generator is splitmix64-seeded xorshift64*:
//! not cryptographic, but fast, portable and deterministic.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range. Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// f64 only: a second float impl would make unsuffixed literals like
// `rng.random_range(0.2..1.8)` ambiguous under this stub's simpler generics.
impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 significant bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xorshift64* over a splitmix64 seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 finalizer spreads low-entropy seeds over the state.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng { state: (z ^ (z >> 31)) | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.random_range(10usize..20);
            assert!((10..20).contains(&x));
            assert_eq!(x, b.random_range(10usize..20));
            let f = a.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            b.random_range(-2.0f64..3.0);
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(-50i64..50);
            assert!((-50..50).contains(&x));
        }
    }
}
