//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the API the workspace's benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion` with the builder methods,
//! benchmark groups, `bench_function`/`bench_with_input`, `BenchmarkId` and
//! `Throughput`. Instead of criterion's statistical sampling it times a fixed
//! number of iterations and prints the mean — enough to smoke-run benches and
//! eyeball relative performance without the plotting/analysis machinery.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver; created by `criterion_group!`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Iterations timed per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this stub always runs `sample_size` iterations.
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Accepted for API compatibility; this stub does one untimed warm-up iteration.
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, |b| f(b));
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Iterations timed per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record the per-iteration payload (printed alongside timings).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let (amount, unit) = match t {
            Throughput::Bytes(n) => (n, "B"),
            Throughput::Elements(n) => (n, "elem"),
        };
        println!("{}: throughput {amount} {unit}/iter", self.name);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, |b| f(b));
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Function name plus parameter, rendered as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the hot loop.
pub struct Bencher {
    sample_size: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { sample_size, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / sample_size as f64;
    println!("{name}: mean {:.3} ms over {sample_size} iters", mean * 1e3);
}

/// Build a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Build `main` from one or more `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
