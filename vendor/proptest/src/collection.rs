//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Permitted sizes for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max_inclusive: *r.end() }
    }
}

/// `Vec` strategy: a size drawn from `size`, elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.usize_in(self.size.min, self.size.max_inclusive + 1);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn sizes_respect_bounds() {
        let mut rng = TestRng::for_case("sizes_respect_bounds", 0);
        let s = vec(Just(7u8), 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x == 7));
        }
        assert_eq!(vec(Just(1), 3usize).generate(&mut rng).len(), 3);
    }
}
