//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace patches
//! `proptest` to this implementation (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It keeps the property-testing model — strategies compose
//! into generators, the `proptest!` macro runs each property over many
//! generated cases — but drops shrinking and the full regex engine. Cases are
//! generated from a seed derived from the test name, so runs are fully
//! deterministic and a failure reproduces by re-running the same test.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a test that runs `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::rng::TestRng::for_case(stringify!($name), u64::from(__case));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

/// Pick uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a `proptest!` body; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: `{:?}`\n right: `{:?}`",
                    ::std::format!($($fmt)+),
                    __l, __r
                ),
            ));
        }
    }};
}

/// Assert inequality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    __l
                ),
            ));
        }
    }};
}
