//! Deterministic RNG feeding strategy generation.

/// xorshift64* generator seeded from the test name and case index, so every
/// run of a given test generates the same sequence of cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed for case `case` of test `name` (FNV-1a over the name, mixed with
    /// the case index through splitmix64).
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TestRng { state: (z ^ (z >> 31)) | 1 }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`. Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = TestRng::for_case("t", 4);
        assert_ne!(a[0], other.next_u64());
    }
}
