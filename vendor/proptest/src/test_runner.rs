//! Test-run configuration and per-case error type.

use std::fmt;

/// Controls how many generated cases each property runs over.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate defaults to 256; 64 keeps offline test runs brisk
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Failure of a single generated case (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}
