//! Option strategies (`proptest::option::of`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Generate `None` about a quarter of the time, otherwise `Some` of `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Result of [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::for_case("produces_both_variants", 0);
        let s = of(0u32..10);
        let vals: Vec<Option<u32>> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().flatten().all(|v| *v < 10));
    }
}
