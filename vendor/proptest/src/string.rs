//! String strategies from a small regex subset (`proptest::string::string_regex`).
//!
//! Supported syntax: literal characters, `\`-escapes, character classes with
//! ranges (`[a-z0-9_-]`), and the quantifiers `{n}`, `{n,m}`, `{n,}` and `?`.
//! That covers the anchored character-class patterns the workspace's property
//! tests use; anything fancier (alternation, groups, `.` etc.) is rejected so
//! a typo fails loudly instead of generating the wrong language.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::fmt;
use std::iter::Peekable;
use std::str::Chars;

/// Pattern rejected by the subset parser.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// One quantified unit of the pattern: a character alphabet and a repeat count.
#[derive(Debug, Clone)]
struct Atom {
    alphabet: Vec<char>,
    min: usize,
    max_inclusive: usize,
}

/// Strategy generating strings matching the parsed pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = rng.usize_in(atom.min, atom.max_inclusive + 1);
            for _ in 0..n {
                out.push(atom.alphabet[rng.usize_in(0, atom.alphabet.len())]);
            }
        }
        out
    }
}

/// Parse `pattern` into a generator strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet = match c {
            '[' => parse_class(&mut chars)?,
            '\\' => vec![unescape(
                chars.next().ok_or_else(|| Error("dangling escape".into()))?,
            )],
            '(' | ')' | '|' | '*' | '+' | '.' | '^' | '$' | ']' | '{' | '}' => {
                return Err(Error(format!("unsupported regex construct {c:?}")));
            }
            other => vec![other],
        };
        let (min, max_inclusive) = parse_quantifier(&mut chars)?;
        atoms.push(Atom { alphabet, min, max_inclusive });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

fn parse_class(chars: &mut Peekable<Chars>) -> Result<Vec<char>, Error> {
    let mut alphabet = Vec::new();
    loop {
        let c = match chars.next() {
            None => return Err(Error("unterminated character class".into())),
            Some(']') => break,
            Some('\\') => unescape(
                chars.next().ok_or_else(|| Error("dangling escape in class".into()))?,
            ),
            Some(other) => other,
        };
        // `a-z` is a range unless `-` is the last char before `]`.
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next();
            if ahead.peek().is_some_and(|n| *n != ']') {
                chars.next(); // consume '-'
                let hi = match chars.next() {
                    Some('\\') => unescape(
                        chars.next().ok_or_else(|| Error("dangling escape in class".into()))?,
                    ),
                    Some(other) => other,
                    None => return Err(Error("unterminated character class".into())),
                };
                if c > hi {
                    return Err(Error(format!("inverted range {c}-{hi}")));
                }
                alphabet.extend(c..=hi);
                continue;
            }
        }
        alphabet.push(c);
    }
    if alphabet.is_empty() {
        return Err(Error("empty character class".into()));
    }
    Ok(alphabet)
}

fn parse_quantifier(chars: &mut Peekable<Chars>) -> Result<(usize, usize), Error> {
    match chars.peek() {
        Some('?') => {
            chars.next();
            Ok((0, 1))
        }
        Some('{') => {
            chars.next();
            let min = parse_number(chars)?;
            match chars.next() {
                Some('}') => Ok((min, min)),
                Some(',') => match chars.peek() {
                    Some('}') => {
                        chars.next();
                        Ok((min, min + 8))
                    }
                    _ => {
                        let max = parse_number(chars)?;
                        if chars.next() != Some('}') {
                            return Err(Error("unterminated quantifier".into()));
                        }
                        if max < min {
                            return Err(Error(format!("inverted quantifier {{{min},{max}}}")));
                        }
                        Ok((min, max))
                    }
                },
                _ => Err(Error("unterminated quantifier".into())),
            }
        }
        _ => Ok((1, 1)),
    }
}

fn parse_number(chars: &mut Peekable<Chars>) -> Result<usize, Error> {
    let mut digits = String::new();
    while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
        digits.push(chars.next().unwrap());
    }
    digits.parse().map_err(|_| Error(format!("bad quantifier bound {digits:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let strat = string_regex(pattern).expect("pattern should parse");
        let mut rng = TestRng::for_case(pattern, 0);
        (0..n).map(|_| strat.generate(&mut rng)).collect()
    }

    #[test]
    fn class_with_ranges_and_literals() {
        for s in gen_many("[a-zA-Z0-9 ,%]{0,16}", 300) {
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == ',' || c == '%'));
        }
    }

    #[test]
    fn class_with_escapes_and_trailing_dash() {
        // Mirrors the csvengine field pattern: quotes, newlines and `-`.
        let allowed = |c: char| {
            c.is_ascii_alphanumeric()
                || " ,\"\n\r%();=_-".contains(c)
        };
        let samples = gen_many("[a-zA-Z0-9 ,\"\n\r%();=_-]{0,12}", 500);
        assert!(samples.iter().any(|s| s.contains('-') || s.contains('\n') || s.contains('"')));
        for s in samples {
            assert!(s.len() <= 12);
            assert!(s.chars().all(allowed), "bad sample {s:?}");
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        for s in gen_many("ab[01]{3}c?", 100) {
            assert!(s.starts_with("ab"));
            let tail = &s[2..];
            assert!(tail.len() == 3 || tail.len() == 4);
            assert!(tail[..3].chars().all(|c| c == '0' || c == '1'));
        }
    }

    #[test]
    fn unsupported_constructs_rejected() {
        assert!(string_regex("(ab)+").is_err());
        assert!(string_regex("a|b").is_err());
        assert!(string_regex("[a-z").is_err());
        assert!(string_regex("a{3,1}").is_err());
    }
}
