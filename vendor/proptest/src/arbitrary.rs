//! `any::<T>()` — canonical strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy generating any value of `T` (biased toward edge values for ints).
pub struct Any<T>(PhantomData<fn() -> T>);

/// Canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                // One case in eight is an edge value; bugs cluster there.
                if rng.below(8) == 0 {
                    match rng.below(5) {
                        0 => 0,
                        1 => 1,
                        2 => <$t>::MAX,
                        3 => <$t>::MIN,
                        _ => <$t>::MAX / 2,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                // Finite values only: sign * magnitude over a wide dynamic
                // range, with occasional exact edge values.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0.0,
                        1 => 1.0,
                        2 => -1.0,
                        _ => 0.5,
                    }
                } else {
                    let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                    let exp = rng.below(25) as i32 - 12; // 1e-12 ..= 1e12
                    sign * (rng.unit_f64() as $t) * (10.0 as $t).powi(exp)
                }
            }
        }
    )*};
}

float_arbitrary!(f32, f64);

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_are_finite() {
        let mut rng = TestRng::for_case("floats_are_finite", 0);
        for _ in 0..1000 {
            assert!(f64::arbitrary_value(&mut rng).is_finite());
        }
    }

    #[test]
    fn ints_hit_edges() {
        let mut rng = TestRng::for_case("ints_hit_edges", 0);
        let vals: Vec<i64> = (0..1000).map(|_| i64::arbitrary_value(&mut rng)).collect();
        assert!(vals.contains(&0));
        assert!(vals.contains(&i64::MAX));
        assert!(vals.iter().any(|v| *v < 0));
    }
}
