//! The `Strategy` trait and core combinators.
//!
//! A strategy is a recipe for generating values of one type from the
//! deterministic [`TestRng`]. Unlike the real crate there is no shrinking:
//! `generate` returns a finished value directly.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type `Self::Value`.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f`, retrying generation otherwise.
    fn prop_filter<R, F>(self, whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), f }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

#[doc(hidden)]
pub trait ObjectStrategy<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ObjectStrategy<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ObjectStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Uniform choice between type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from one or more arms. Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = self.end().wrapping_sub(*self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String literals act as character-class regex strategies
/// (e.g. `"[a-z0-9]{0,12}"`); see [`crate::string::string_regex`].
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_case("combinators_compose", 0);
        let s = (0u32..10)
            .prop_map(|n| n * 2)
            .prop_filter("odd rejected", |n| n % 2 == 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        let u = crate::prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        for _ in 0..100 {
            assert!(matches!(u.generate(&mut rng), 1 | 2 | 5 | 6));
        }
        let t = (0i64..3, Just("x")).generate(&mut rng);
        assert!(t.0 >= 0 && t.0 < 3 && t.1 == "x");
    }

    #[test]
    fn negative_ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("negative_ranges", 0);
        for _ in 0..1000 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
